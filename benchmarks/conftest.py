"""Benchmark-suite plumbing.

Each benchmark regenerates one figure/table of the paper's evaluation,
prints its series and writes it to ``benchmarks/results/<name>.txt`` so
EXPERIMENTS.md can reference the measured numbers.

Run with::

    pytest benchmarks/ --benchmark-only

Benchmarks execute their experiment exactly once (``pedantic`` with one
round): the quantity of interest is the *simulated* outcome, not the host
wall time, which pytest-benchmark records as a bonus.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_result():
    """Persist one experiment's rendered table under benchmarks/results."""

    def _record(name: str, text: str) -> None:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n")
        print()
        print(text)

    return _record


@pytest.fixture
def once(benchmark):
    """Run a callable exactly once under pytest-benchmark."""

    def _once(fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                                  rounds=1, iterations=1)

    return _once
