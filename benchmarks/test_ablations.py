"""Bench: ablations over the design choices DESIGN.md calls out."""

from repro.experiments import ablations


def test_ablation_thresholds(once, record_result):
    result = once(ablations.thresholds)
    record_result("ablation_thresholds", result.table())

    default = result.cells["th=(10,70)"]
    lazy = result.cells["th=(10,95)"]       # higher thmax: allocates late
    eager = result.cells["th=(25,70)"]      # higher thmin: releases early
    # the paper's observation: raising thmax leads to contention on too
    # few cores -> lower throughput; the chosen thresholds dominate
    assert default.throughput >= lazy.throughput * 0.95
    assert lazy.mean_cores <= default.mean_cores
    # releasing more eagerly uses fewer cores on average
    assert eager.mean_cores <= default.mean_cores + 0.5


def test_ablation_strategies(once, record_result):
    result = once(ablations.strategies)
    record_result("ablation_strategies", result.table())

    cpu = result.cells["cpu_load"]
    useful = result.cells["useful_load"]
    # the useful-load variant sees memory saturation the busy metric
    # cannot: it settles on far fewer cores and far less traffic...
    assert useful.mean_cores < cpu.mean_cores
    assert useful.ht_rate < cpu.ht_rate
    # ...at a throughput cost (why the paper-faithful busy metric is
    # the default)
    assert useful.throughput <= cpu.throughput


def test_ablation_autonuma(once, record_result):
    result = once(ablations.autonuma)
    record_result("ablation_autonuma", result.table())

    os_cell = result.cells["OS"]
    autonuma = result.cells["OS+autonuma"]
    adaptive = result.cells["adaptive"]
    # kernel-side page migration helps the OS baseline by spreading the
    # loader-node data across banks (the related-work [24] effect)...
    assert autonuma.throughput > os_cell.throughput
    # ...while the mechanism remains the configuration with the least
    # interconnect traffic
    assert adaptive.ht_rate == min(c.ht_rate
                                   for c in result.cells.values())


def test_ablation_elastic_parallelism(once, record_result):
    result = once(ablations.elastic_parallelism)
    record_result("ablation_elastic_parallelism", result.table())

    elastic = result.cells["adaptive/elastic"]
    fixed = result.cells["adaptive/fixed-16"]
    os_cell = result.cells["OS"]
    # both controlled variants reduce interconnect traffic vs the OS
    assert elastic.ht_rate < os_cell.ht_rate
    assert fixed.ht_rate < os_cell.ht_rate * 1.05
    # the elastic-parallelism variant is the one that competes on
    # throughput (the admission effect)
    assert elastic.throughput >= fixed.throughput * 0.95
