"""Bench: extension — mixed OLAP/OLTP co-scheduling (paper §VII).

The paper's future work: let concurrent applications benefit from the
cores the mechanism leaves unallocated.  The quantified claim: point
queries from a co-located (uncgrouped) application see far lower latency
when the elastic mechanism confines the OLAP tenant, at no OLAP
throughput cost.
"""

from repro.experiments import ext_mixed_oltp


def test_ext_mixed_oltp(once, record_result):
    result = once(ext_mixed_oltp.run)
    improvement = result.oltp_latency_improvement()
    record_result("ext_mixed_oltp",
                  result.table()
                  + f"\n\nOLTP latency improvement: {improvement:.1f}x")

    os_cell = result.cell(None)
    adaptive = result.cell("adaptive")
    # the OLTP tenant gets dramatically faster...
    assert improvement > 3.0
    assert adaptive.oltp_p_high < os_cell.oltp_p_high
    # ...without sacrificing the OLAP tenant
    assert adaptive.olap_throughput >= os_cell.olap_throughput * 0.9
