"""Bench: extension — the mechanism on a morsel-driven engine (§VI)."""

from repro.experiments import ext_morsel


def test_ext_morsel(once, record_result):
    result = once(ext_morsel.run)
    record_result("ext_morsel", result.table())

    volcano = result.cell("monetdb", None)
    morsel = result.cell("morsel", None)
    governed = result.cell("morsel", "adaptive")
    # the related-work premise: NUMA-local morsel dispatch moves less
    # data over the interconnect than OS-scheduled Volcano
    assert morsel.ht_imc < volcano.ht_imc
    # the orthogonality claim: the mechanism holds the morsel engine's
    # throughput on a smaller core footprint
    assert governed.throughput >= morsel.throughput * 0.95
    assert governed.mean_cores < 16.0
