"""Bench: extension — predicate-aware worker sizing (paper §VII).

"Seek the local optimum number of cores with respect to query
predicates": at submission time the engine bounds each query's worker
pool by its predicate-shaped footprint, so selective queries stop paying
for a full machine's worth of partition administration.
"""

from repro.experiments import ext_predicate_aware


def test_ext_predicate_aware(once, record_result):
    result = once(ext_predicate_aware.run)
    record_result("ext_predicate_aware", result.table())

    adaptive = result.cells["adaptive"]
    sized = result.cells["adaptive+sizer"]
    # the sizer spawns fewer threads and dispatches fewer tasks...
    assert sized.threads_spawned < adaptive.threads_spawned
    assert sized.tasks <= adaptive.tasks * 1.02
    # ...without losing throughput
    assert sized.throughput >= adaptive.throughput * 0.95
