"""Bench: extension — SLA-governed allocation (paper §VII).

The paper's cloud scenario: allocate cores "as needed, like meeting
service level agreements (e.g., energy or data traffic)".  The governed
controller must keep the interconnect rate at or under a budget set to
half of the OS run's rate, shedding cores to do it.
"""

from repro.experiments import ext_sla


def test_ext_sla_traffic_budget(once, record_result):
    result = once(ext_sla.run, budget_fraction=0.5)
    record_result("ext_sla", result.table())

    governed = result.cells["adaptive+sla"]
    ungoverned = result.cells["adaptive"]
    # the budget is honoured (small tolerance for the control lag)
    assert governed.ht_rate <= result.traffic_budget * 1.15
    # honoured by shedding cores, not by magic
    assert governed.mean_cores < ungoverned.mean_cores
    # and the ungoverned adaptive run would have exceeded it
    assert ungoverned.ht_rate > result.traffic_budget
