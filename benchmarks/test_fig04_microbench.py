"""Bench: Fig 4 — Q6 microbenchmark vs concurrent clients (§II-B1)."""

from repro.experiments import fig04_microbench


def test_fig04_microbench(once, record_result):
    result = once(fig04_microbench.run, users=(1, 4, 16, 64),
                  repetitions=2)
    record_result("fig04_microbench", result.table())

    # paper shapes: interconnect traffic grows with concurrency, and the
    # engine moves more data over the fabric than the hand-coded kernel
    for variant in ("os/C", "os/monetdb"):
        assert result.ht_mb_per_s(variant, 64) \
            > result.ht_mb_per_s(variant, 1) * 0.5
    assert result.ht_mb_per_s("os/monetdb", 1) \
        > result.ht_mb_per_s("os/C", 1)
    # dense/C keeps the fabric quietest
    for users in (4, 16, 64):
        assert result.ht_mb_per_s("dense/C", users) \
            <= result.ht_mb_per_s("sparse/C", users)
