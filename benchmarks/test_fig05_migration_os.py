"""Bench: Fig 5 — worker migration under the plain OS (§II-B2)."""

from repro.experiments import fig05_migration_os


def test_fig05_migration_os(once, record_result):
    result = once(fig05_migration_os.run)
    record_result("fig05_migration_os", result.table())

    # paper shape: threads migrate several times and visit several nodes
    assert result.total_migrations > len(result.timelines) * 0.5
    nodes = set()
    for timeline in result.timelines:
        nodes |= timeline.nodes_visited
    assert len(nodes) >= 3
