"""Bench: Fig 6 — Tomograph of Q6's worker threads (§II-B2)."""

from repro.experiments import fig06_tomograph


def test_fig06_tomograph(once, record_result):
    result = once(fig06_tomograph.run)
    record_result("fig06_tomograph", result.table())

    # paper shape: 16 workers; the thetasubselect fans out one call per
    # worker and dominates total time; the final stages are single-call
    assert result.n_worker_threads == 16
    assert result.calls_of("algebra.thetasubselect") == 16
    assert result.calls_of("sql.resultSet") == 1
    assert result.operators[0].operator == "algebra.thetasubselect"
