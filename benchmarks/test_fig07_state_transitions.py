"""Bench: Fig 7 — state transitions and the core staircase (§III)."""

from collections import Counter

from repro.experiments import fig07_state_transitions


def test_fig07_state_transitions(once, record_result):
    result = once(fig07_state_transitions.run, repetitions=10)
    chains = Counter(result.chains())
    summary = result.table() + "\n\nchain counts: " + ", ".join(
        f"{label} x{count}" for label, count in chains.most_common())
    record_result("fig07_state_transitions", summary)

    # paper shape: all three states appear; allocation climbs from one
    # core and releases back down; stable dominates the tick mix
    assert result.states_seen() == {"Idle", "Stable", "Overload"}
    lo, hi = result.core_range()
    assert lo == 1 and hi >= 8
    assert chains["t1-Overload-t5"] >= 3
    assert chains["t0-Idle-t4"] >= 3
    assert chains["t2-Stable-t3"] >= chains["t1-Overload-t5"]
