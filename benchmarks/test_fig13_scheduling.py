"""Bench: Fig 13 — scheduling metrics vs concurrency (§V-A1)."""

from repro.experiments import fig13_scheduling


def test_fig13_scheduling(once, record_result):
    result = once(fig13_scheduling.run, users=(1, 4, 16, 64),
                  repetitions=4)
    record_result("fig13_scheduling", result.table())

    top = max(result.users)
    os_cell = result.cell(None, top)
    adaptive = result.cell("adaptive", top)
    # paper shapes at high concurrency: adaptive throughput at least
    # matches the OS; the OS steals more tasks; CPU load is comparable
    assert adaptive.throughput >= os_cell.throughput * 0.95
    assert adaptive.stolen_tasks < os_cell.stolen_tasks
    assert abs(adaptive.cpu_load - os_cell.cpu_load) < 35
