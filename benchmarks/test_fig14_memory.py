"""Bench: Fig 14 — memory metrics at high concurrency (§V-A1)."""

from repro.experiments import fig14_memory


def test_fig14_memory(once, record_result):
    result = once(fig14_memory.run, n_clients=32, repetitions=3)
    record_result("fig14_memory", result.table())

    os_cell = result.cell(None)
    adaptive = result.cell("adaptive")
    dense = result.cell("dense")
    # paper shapes: the OS scheduler moves the most interconnect data;
    # the controlled modes reduce it; total L3 misses do not explode
    assert adaptive.ht_traffic < os_cell.ht_traffic
    assert dense.ht_traffic < os_cell.ht_traffic
    assert adaptive.l3_misses_total < os_cell.l3_misses_total * 1.25
    # every socket serves some memory traffic (intermediates spread)
    assert all(rate > 0 for rate in os_cell.mem_tp_by_socket.values())
