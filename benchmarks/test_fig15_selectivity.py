"""Bench: Fig 15 — L3 misses across selectivities (§V-A2)."""

from repro.experiments import fig15_selectivity
from repro.workloads.selectivity import SELECTIVITY_LEVELS


def test_fig15_selectivity(once, record_result):
    result = once(fig15_selectivity.run, levels=SELECTIVITY_LEVELS,
                  n_clients=16)
    record_result("fig15_selectivity", result.table())

    # paper shapes: misses grow with selectivity under every policy, and
    # the controlled modes never exceed the OS's misses at 100 %
    for mode in (None, "dense", "sparse", "adaptive"):
        assert result.total(mode, 1.0) > result.total(mode, 0.02)
    os_at_full = result.total(None, 1.0)
    for mode in ("dense", "sparse", "adaptive"):
        assert result.total(mode, 1.0) <= os_at_full * 1.05
