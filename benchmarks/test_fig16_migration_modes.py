"""Bench: Fig 16 — migration maps across the four modes (§V-A3)."""

from repro.experiments import fig16_migration_modes


def test_fig16_migration_modes(once, record_result):
    result = once(fig16_migration_modes.run, repetitions=2, warmup=4)
    record_result("fig16_migration_modes", result.table())

    os_cell = result.cell(None)
    # paper shapes: the OS migrates the most and touches every node;
    # dense/adaptive confine workers to fewer nodes with fewer moves
    assert os_cell.nodes_used == 4
    for mode in ("dense", "sparse", "adaptive"):
        assert result.cell(mode).migrations < os_cell.migrations
    assert result.cell("dense").nodes_used <= 3
    assert result.cell("adaptive").nodes_used <= 3
