"""Bench: Fig 17 — CPU-load vs HT/IMC transition strategies (§V-B)."""

from repro.experiments import fig17_strategies


def test_fig17_strategies(once, record_result):
    result = once(fig17_strategies.run, repetitions=3, warmup=5)
    record_result("fig17_strategies", result.table())

    os_cell = result.cell(None)
    cpu = result.cell("adaptive", "cpu_load")
    ht = result.cell("adaptive", "ht_imc")
    # paper shapes: both strategies slash interconnect traffic vs the
    # OS; the HT/IMC strategy reacts more slowly (response time at or
    # above the CPU-load strategy's)
    assert cpu.ht_bytes < os_cell.ht_bytes
    assert ht.ht_bytes < os_cell.ht_bytes
    assert ht.response_time >= cpu.response_time * 0.9
