"""Bench: Fig 18 — stable-phases workload, both engines (§V-C1)."""

from repro.experiments import fig18_stable_phases


def test_fig18_stable_phases(once, record_result):
    result = once(fig18_stable_phases.run, n_clients=16)
    record_result("fig18_stable_phases", result.table())

    monetdb_os = result.timelines["monetdb/OS"]
    sqlserver_os = result.timelines["sqlserver/OS"]
    # paper shapes: OS/MonetDB hammers the loader socket; the NUMA-aware
    # engine spreads memory throughput across sockets
    monetdb_share = monetdb_os.socket_share()
    assert monetdb_share[0] == max(monetdb_share.values())
    assert monetdb_share[0] > 0.3
    sql_share = sqlserver_os.socket_share()
    assert max(sql_share.values()) < 0.4
    # the adaptive runs complete the same workload
    for config in ("monetdb/adaptive", "sqlserver/adaptive"):
        assert result.timelines[config].makespan > 0
