"""Bench: Fig 19 — mixed-phases per-query speedup and HT/IMC (§V-C2).

This is the paper's headline experiment: per-query speedup of the
adaptive mode over the OS scheduler and the per-query HT/IMC traffic
ratios, for MonetDB (Fig 19a) and the NUMA-aware engine (Fig 19b).
"""

from repro.experiments import fig19_mixed_phases
from repro.workloads.tpch.queries import QUERY_NAMES


def _median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2]


def test_fig19_monetdb(once, record_result):
    result = once(fig19_mixed_phases.run, engine="monetdb", n_clients=32,
                  queries_per_client=6)
    record_result("fig19_mixed_phases_monetdb", result.table())

    # paper shapes: adaptive helps on balance (geo-mean speedup >= ~1)
    # and the per-query HT/IMC ratios do not regress in the median
    assert result.mean_speedup() >= 1.0
    reductions = [result.ratio_reduction(q) for q in QUERY_NAMES
                  if result.runs["OS"].ht_imc_ratio.get(q, 0) > 0]
    assert _median(reductions) >= 0.95


def test_fig19_sqlserver(once, record_result):
    result = once(fig19_mixed_phases.run, engine="sqlserver",
                  n_clients=32, queries_per_client=6)
    record_result("fig19_mixed_phases_sqlserver", result.table())

    # paper shape: gains exist but are smaller than MonetDB's
    assert result.mean_speedup() >= 0.95
