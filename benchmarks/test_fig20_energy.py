"""Bench: Fig 20 — per-query energy, OS vs adaptive (§V-C3)."""

from repro.experiments import fig20_energy


def test_fig20_energy(once, record_result):
    result = once(fig20_energy.run, n_clients=32, queries_per_client=6)
    cpu_saving, ht_saving = result.component_savings()
    summary = (result.table()
               + f"\n\ncomponent savings: CPU {cpu_saving:.1%}, "
               f"HT {ht_saving:.1%}")
    record_result("fig20_energy", summary)

    # paper shapes: the system saves energy overall and the interconnect
    # component saves a larger fraction than the CPU component
    assert result.total_saving() > 0.0
    assert ht_saving > cpu_saving
