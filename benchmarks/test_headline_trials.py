"""Bench: the headline claim over multiple seeds.

The paper's abstract: speedups up to 1.53x (1.29x average) for MonetDB
under the adaptive mode.  A single mixed-workload run carries sampling
noise, so the headline is measured over several seeds with an error bar;
the assertion is on the multi-seed mean.
"""

from repro.experiments import fig19_mixed_phases
from repro.experiments.trials import run_trials


def test_headline_speedup_over_seeds(once, record_result):
    def measure():
        return run_trials(
            lambda seed: fig19_mixed_phases.run(
                engine="monetdb", n_clients=32, queries_per_client=4,
                seed=seed, modes=(None, "adaptive")),
            extract=lambda r: {
                "geo_mean_speedup": r.mean_speedup(),
                "os_makespan_s": r.runs["OS"].makespan,
                "adaptive_makespan_s": r.runs["adaptive"].makespan,
            },
            seeds=(7, 11, 13))

    stats = once(measure)
    record_result("headline_trials", stats.table())

    # the paper's average speedup is 1.29x; require the multi-seed mean
    # to clear parity with margin, and the best seed to show a clear win
    assert stats.mean("geo_mean_speedup") >= 1.05
    assert stats.minmax("geo_mean_speedup")[1] >= 1.15
