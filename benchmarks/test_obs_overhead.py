"""Bench: the disabled-telemetry fast path stays within noise.

The instrumentation hooks are compiled into the controller, scheduler
and engine hot paths, so there is no uninstrumented build to time
against.  The 5 % bound is established analytically instead:

* time one workload with telemetry disabled (the ``NullRecorder``
  default — instruments are shared no-op singletons);
* run the same workload with telemetry *enabled* and count every
  recording call it made (counter increments, histogram observations,
  gauge sets, spans, decisions);
* measure the per-call cost of the no-op instruments over a million
  calls;
* the disabled run's telemetry cost is then bounded by
  ``calls x per_call`` and must stay under 5 % of its runtime.
"""

import time
from types import SimpleNamespace

from repro.analysis.report import render_table
from repro.db.clients import repeat_stream
from repro.experiments.common import build_system
from repro.obs import NULL_RECORDER, Recorder
from repro.obs.live import LiveBus, install_live, uninstall_live
from repro.obs.metrics import Counter, Histogram, MetricsRegistry

WORKLOAD = dict(engine="morsel", mode="adaptive", scale=0.004,
                sim_scale=0.125)
N_CLIENTS, REPETITIONS = 4, 2
CALLS = 1_000_000


def run_workload(recorder=None) -> float:
    """One fixed workload; returns host seconds spent."""
    start = time.perf_counter()
    sut = build_system(obs=recorder, **WORKLOAD)
    sut.run_clients(N_CLIENTS, repeat_stream("q6", REPETITIONS))
    return time.perf_counter() - start


def per_call_cost(fn) -> float:
    start = time.perf_counter()
    for _ in range(CALLS):
        fn()
    return (time.perf_counter() - start) / CALLS


def recording_calls(recorder: Recorder) -> float:
    """Upper bound on recording calls an enabled run performed.

    Counter values over-count (``inc(n)`` is one call) and gauge sets
    are bounded by ticks + mask changes; the x2 margin swallows both
    approximations in the conservative direction.
    """
    metrics = recorder.metrics
    counts = 0.0
    for instrument in metrics.all():
        if isinstance(instrument, Counter):
            counts += instrument.value
        elif isinstance(instrument, Histogram):
            counts += instrument.count
    counts += 2 * len(recorder.spans.all())   # begin + end
    counts += len(recorder.decisions.all())
    return 2.0 * counts


def test_null_recorder_overhead(once, record_result):
    t_disabled = once(run_workload)          # NullRecorder default

    enabled = Recorder()
    t_enabled = run_workload(enabled)
    calls = recording_calls(enabled)

    null_metrics = NULL_RECORDER.metrics
    null_counter = null_metrics.counter("x")
    null_histogram = null_metrics.histogram("x")
    null_spans = NULL_RECORDER.spans
    per_call = max(
        per_call_cost(null_counter.inc),
        per_call_cost(lambda: null_histogram.observe(0.0)),
        per_call_cost(lambda: null_spans.add_complete("x", 0.0, 0.0)))

    bound = calls * per_call
    share = bound / t_disabled

    record_result("obs_overhead", render_table(
        ["quantity", "value"],
        [["disabled run (s)", t_disabled],
         ["enabled run (s)", t_enabled],
         ["recording calls (bound)", calls],
         ["no-op cost (ns/call)", per_call * 1e9],
         ["telemetry bound (s)", bound],
         ["share of disabled run", share]],
        title="disabled-telemetry overhead bound"))

    assert calls > 0, "enabled run recorded nothing"
    # the acceptance bound: disabled telemetry within 5 % of an
    # uninstrumented baseline
    assert share < 0.05, (
        f"null-path bound {share:.2%} of runtime exceeds 5%")


def test_live_pipeline_overhead(once, record_result):
    """The streaming bus stays under 5 % of a monitored run's time.

    Same analytic approach as the null-recorder bound: count the work
    the bus actually did during a monitored run (samples emitted,
    windows flushed), measure the per-operation cost in isolation, and
    bound the total against the unmonitored runtime.  The bound double
    counts flush-driven emissions — conservative, never optimistic.
    """
    t_enabled = once(lambda: run_workload(Recorder()))

    bus = LiveBus(window=0.05)
    install_live(bus)
    try:
        t_live = run_workload(Recorder())
    finally:
        uninstall_live()
    emits = sum(series.count for series in bus.series.values())
    windows = bus.windows
    assert emits > 0 and windows > 0, "monitored run streamed nothing"

    probe = LiveBus(window=0.05)
    emit_calls = 100_000
    start = time.perf_counter()
    for _ in range(emit_calls):
        probe.emit("x", 0.0, 1.0)
    per_emit = (time.perf_counter() - start) / emit_calls

    registry = MetricsRegistry()
    registry.counter("db.queries").inc(10)
    registry.gauge("cpuset.allowed_cores").set(4)
    registry.histogram("db.query_seconds").observe(0.1)
    flush_bus = LiveBus(window=0.05)
    flush_calls = 2_000
    start = time.perf_counter()
    for i in range(flush_calls):
        flush_bus.flush(SimpleNamespace(
            now=0.05 * i, obs=SimpleNamespace(metrics=registry)))
    per_flush = (time.perf_counter() - start) / flush_calls

    bound = emits * per_emit + windows * per_flush
    share = bound / t_enabled

    record_result("obs_live_overhead", render_table(
        ["quantity", "value"],
        [["unmonitored run (s)", t_enabled],
         ["monitored run (s)", t_live],
         ["samples emitted", emits],
         ["windows flushed", windows],
         ["emit cost (ns)", per_emit * 1e9],
         ["flush cost (us)", per_flush * 1e6],
         ["live-pipeline bound (s)", bound],
         ["share of unmonitored run", share]],
        title="live-pipeline overhead bound"))

    # the acceptance bound: streaming telemetry within 5 % of an
    # unmonitored (but recorded) run
    assert share < 0.05, (
        f"live-pipeline bound {share:.2%} of runtime exceeds 5%")


def test_null_instruments_are_shared_singletons():
    """The fast path hands out one shared no-op per instrument kind —
    binding a thousand instruments allocates nothing."""
    metrics = NULL_RECORDER.metrics
    counters = {id(metrics.counter(f"c{i}")) for i in range(1000)}
    assert len(counters) == 1
    assert NULL_RECORDER.spans.span("a") is NULL_RECORDER.spans.span("b")
