"""Bench: controller overhead — the token-flow measurements of §V.

The paper: one token flow through the 5x8 model takes 0.017-0.031 s on
the 2008 Opteron and the controller's CPU share stays below 1 %.  Our
pipeline pass is host-side Python; the CPU-share bound is the claim that
must carry over.
"""

from repro.experiments import overhead


def test_overhead_controller(once, record_result):
    result = once(overhead.run, passes=300)
    record_result("overhead_controller", result.table())

    for mode in ("dense", "sparse", "adaptive"):
        # well under one controller interval -> under 1 % CPU share
        assert result.cpu_share(mode) < 0.01
    # the adaptive mode pays for its priority-queue refresh
    assert result.per_pass["adaptive"] >= result.per_pass["dense"] * 0.5
