"""Bench: the event-core kernel — tiered queue ops and counter writes.

The simulator's hot loop is schedule/deliver on the calendar queue plus
counter-family writes from the hardware/OS models.  This bench times the
kernel primitives in isolation (no domain logic), prints a table for
``benchmarks/results/queue_kernel.txt``, and asserts the two structural
contracts the tiered refactor was built on:

* near-tier scheduling is O(1) amortised — throughput on a clustered
  (bucket-dense) workload must not collapse as the queue grows, unlike
  a binary heap's per-op ``O(log n)`` sift;
* a resolved family handle (:meth:`CounterBank.family`) beats the
  per-call name lookup (:meth:`CounterBank.add`) on batched updates.

Host-time assertions carry generous margins: the point is catching a
10x structural regression (e.g. bucket appends degrading into heap
sifts), not 10 % jitter.
"""

from __future__ import annotations

import time

from repro.analysis.report import render_table
from repro.hardware.counters import CounterBank
from repro.sim.engine import Simulator


def _noop():
    pass


def _schedule_pop_rate(n_events: int, spread: float) -> float:
    """Events/second through one schedule-all-then-drain cycle.

    ``spread`` controls clustering: small spreads collide many events
    per exact timestamp (bucket batches), large spreads scatter them
    (one bucket each, horizon advances through the far tier).
    """
    sim = Simulator()
    start = time.perf_counter()
    for i in range(n_events):
        sim.schedule((i % 97) * spread, _noop)
    sim.run_until_idle()
    elapsed = time.perf_counter() - start
    return n_events / elapsed


def _cancel_rate(n_events: int) -> float:
    """Schedule/cancel/drain cycle rate with heavy (2/3) cancellation,
    driving the lazy-cancel + compaction machinery."""
    sim = Simulator()
    start = time.perf_counter()
    events = [sim.schedule(0.001 * (i % 53), _noop)
              for i in range(n_events)]
    for i, event in enumerate(events):
        if i % 3:
            sim.cancel(event)
    sim.run_until_idle()
    elapsed = time.perf_counter() - start
    return n_events / elapsed


def _counter_rates(n_ops: int) -> tuple[float, float]:
    """(adds/s via name lookup, adds/s via family handle)."""
    bank = CounterBank()
    start = time.perf_counter()
    for i in range(n_ops):
        bank.add("busy_time", i & 15, 1.0)
    by_name = n_ops / (time.perf_counter() - start)

    bank = CounterBank()
    handle = bank.family("busy_time")
    start = time.perf_counter()
    for i in range(n_ops):
        handle.add(i & 15, 1.0)
    by_handle = n_ops / (time.perf_counter() - start)
    return by_name, by_handle


def test_queue_kernel(record_result):
    clustered_small = _schedule_pop_rate(20_000, 0.0005)
    clustered_large = _schedule_pop_rate(200_000, 0.0005)
    scattered = _schedule_pop_rate(50_000, 0.37)
    cancel_heavy = _cancel_rate(60_000)
    by_name, by_handle = _counter_rates(300_000)

    rows = [
        ("schedule+pop, clustered, 20k", f"{clustered_small:,.0f}"),
        ("schedule+pop, clustered, 200k", f"{clustered_large:,.0f}"),
        ("schedule+pop, scattered, 50k", f"{scattered:,.0f}"),
        ("schedule+cancel 2/3+drain, 60k", f"{cancel_heavy:,.0f}"),
        ("counter add via name lookup", f"{by_name:,.0f}"),
        ("counter add via family handle", f"{by_handle:,.0f}"),
    ]
    text = render_table(("operation", "ops/sec"), rows,
                        title="Event-core kernel throughput")
    record_result("queue_kernel", text)

    # O(1) amortised scheduling: a 10x bigger clustered workload keeps
    # at least a third of the small workload's throughput (a heap's
    # log-factor plus Python-level __lt__ calls loses far more)
    assert clustered_large > clustered_small / 3
    # batched bucket dispatch must actually help: clustered beats
    # scattered (every event its own bucket) on the same kernel
    assert clustered_small > scattered / 3
    # cancellation stays O(1)-ish per op under compaction churn
    assert cancel_heavy > clustered_small / 6
    # the resolved handle must not lose to the name-lookup path
    assert by_handle > by_name * 0.9
