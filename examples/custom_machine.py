#!/usr/bin/env python3
"""Beyond the paper's testbed: the mechanism on a custom NUMA machine.

Everything in the library is parameterised by :class:`MachineConfig`, so
the mechanism can be studied on machines the paper never had.  This
script builds an 8-socket x 2-core box with a small L3 and slow
interconnect (a worst case for NUMA-oblivious scheduling), loads the
TPC-H database and compares the allocation modes on a concurrent scan
workload.

Run:  python examples/custom_machine.py
"""

from repro import MachineConfig, repeat_stream
from repro.analysis.report import render_table
from repro.experiments.common import build_system
from repro.units import gb_per_s, ghz, mib

EIGHT_SOCKET = MachineConfig(
    n_sockets=8,
    cores_per_socket=2,
    frequency_hz=ghz(2.0),
    l3_bytes=mib(2),
    dram_bandwidth=gb_per_s(4.0),
    ht_link_bandwidth=gb_per_s(4.0),
    ht_aggregate_bandwidth=gb_per_s(16.0),
)


def run_one(mode: str | None) -> list:
    sut = build_system(engine="monetdb", mode=mode,
                       machine=EIGHT_SOCKET)
    sut.mark()
    result = sut.run_clients(12, repeat_stream("sel_45pct", 3))
    cores = (sut.controller.lonc.report().mean_cores
             if sut.controller else EIGHT_SOCKET.n_cores)
    return [sut.label, result.throughput, sut.ht_imc_ratio(),
            sut.delta("migrations"), cores]


def main() -> None:
    print(__doc__)
    rows = [run_one(mode) for mode in (None, "dense", "sparse",
                                       "adaptive")]
    print(render_table(
        ["config", "queries/s", "HT/IMC", "migrations", "mean cores"],
        rows,
        title=(f"45% scan, 12 clients on a "
               f"{EIGHT_SOCKET.n_sockets}x"
               f"{EIGHT_SOCKET.cores_per_socket} machine")))


if __name__ == "__main__":
    main()
