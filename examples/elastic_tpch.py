#!/usr/bin/env python3
"""The paper's mixed-phases workload: all 22 TPC-H queries, both engines.

Every client continuously draws a random query from q1..q22 (the paper's
§V-C2 protocol).  The script compares the plain OS scheduler against the
adaptive mode on both simulated engines — the OS-scheduled Volcano engine
(MonetDB role) and the NUMA-aware partitioned engine (SQL Server role) —
and prints per-query latencies for the slowest queries plus the headline
aggregates.

Run:  python examples/elastic_tpch.py [n_clients] [queries_per_client]
"""

import sys

from repro.analysis.report import render_table
from repro.experiments import fig19_mixed_phases


def main() -> None:
    n_clients = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    queries_per_client = int(sys.argv[2]) if len(sys.argv) > 2 else 4
    print(__doc__)

    for engine in ("monetdb", "sqlserver"):
        result = fig19_mixed_phases.run(
            engine=engine, n_clients=n_clients,
            queries_per_client=queries_per_client,
            modes=(None, "adaptive"))
        os_run = result.runs["OS"]
        adaptive = result.runs["adaptive"]

        slowest = sorted(os_run.mean_latency,
                         key=lambda q: -os_run.mean_latency[q])[:8]
        rows = [[q,
                 os_run.mean_latency[q],
                 adaptive.mean_latency.get(q, 0.0),
                 result.speedup(q),
                 os_run.ht_imc_ratio.get(q, 0.0),
                 adaptive.ht_imc_ratio.get(q, 0.0)]
                for q in slowest]
        print()
        print(render_table(
            ["query", "OS s", "adaptive s", "speedup", "OS HT/IMC",
             "adp HT/IMC"],
            rows, title=f"{engine}: slowest queries under the OS"))
        print(f"  geo-mean per-query speedup : "
              f"{result.mean_speedup():.2f}x")
        print(f"  workload makespan          : OS "
              f"{os_run.makespan:.2f}s vs adaptive "
              f"{adaptive.makespan:.2f}s")


if __name__ == "__main__":
    main()
