#!/usr/bin/env python3
"""Energy accounting: what the elastic mechanism saves, per query.

Reproduces the paper's §V-C3 estimation method over the mixed TPC-H
workload: CPU energy from the Opteron's Average CPU Power rating and the
measured busy time, interconnect energy from the counted HyperTransport
bytes at an energy-per-bit figure.  Prints the per-query breakdown and
the component-wise savings.

Run:  python examples/energy_report.py [n_clients]
"""

import sys

from repro.experiments import fig20_energy


def main() -> None:
    n_clients = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    print(__doc__)
    result = fig20_energy.run(n_clients=n_clients, queries_per_client=4)
    print(result.table())
    cpu_saving, ht_saving = result.component_savings()
    print()
    print(f"geo-mean per-query CPU energy saving : {cpu_saving:6.1%}")
    print(f"geo-mean per-query HT energy saving  : {ht_saving:6.1%}")
    print(f"total system energy saving           : "
          f"{result.total_saving():6.1%}")
    print()
    print("(the paper reports 22.93 % CPU / 63.20 % HT geometric means "
          "and 26.05 % total on its hardware)")


if __name__ == "__main__":
    main()
