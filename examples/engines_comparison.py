#!/usr/bin/env python3
"""Three engine architectures x the elastic mechanism.

Runs the same mixed TPC-H workload on the three simulated engines —

* ``monetdb``  — OS-scheduled Volcano (the paper's primary subject),
* ``sqlserver`` — NUMA-aware partitioned data with node-affined workers,
* ``morsel``   — HyPer-style dynamic morsel dispatch (§VI related work),

each with and without the adaptive controller, and prints the picture
that the paper's §VI discussion describes: the mechanism is orthogonal
to the engine's own thread/data placement strategy, with the largest
gains where placement is weakest.

Run:  python examples/engines_comparison.py [n_clients]
"""

import sys

from repro.analysis.report import render_table
from repro.experiments.common import build_system
from repro.workloads.phases import mixed_phases_stream


def run_one(engine: str, mode: str | None, n_clients: int) -> list:
    sut = build_system(engine=engine, mode=mode)
    sut.mark()
    result = sut.run_clients(n_clients, mixed_phases_stream(3))
    cores = (sut.controller.lonc.report().mean_cores
             if sut.controller else float(sut.os.topology.n_cores))
    return [sut.label, result.throughput, result.mean_latency(),
            sut.ht_imc_ratio(), sut.delta("migrations"), cores]


def main() -> None:
    n_clients = int(sys.argv[1]) if len(sys.argv) > 1 else 16
    print(__doc__)
    rows = []
    for engine in ("monetdb", "sqlserver", "morsel"):
        for mode in (None, "adaptive"):
            rows.append(run_one(engine, mode, n_clients))
    print(render_table(
        ["config", "queries/s", "mean lat s", "HT/IMC", "migrations",
         "mean cores"],
        rows, title=f"mixed TPC-H, {n_clients} clients"))


if __name__ == "__main__":
    main()
