#!/usr/bin/env python3
"""Future work, implemented: mixed OLAP/OLTP and an SLA traffic budget.

The paper's conclusion sketches two extensions:

1. "study extensions to DBMS schedulers to take benefit from
   under-utilized cores to concurrent applications (e.g., mixed
   OLAP/OLTP)" — here an OLTP application lives *outside* the database
   cgroup and issues index point-lookups; the elastic mechanism's
   released cores become its quiet harbour.

2. "evaluate the benefits of our strategy in the cloud computing
   context ... like meeting service level agreements (e.g., energy or
   data traffic)" — here an SLA governor wraps the CPU-load strategy
   with an interconnect-traffic budget and sheds cores to honour it.

Run:  python examples/mixed_tenancy.py
"""

from repro.experiments import ext_mixed_oltp, ext_sla


def main() -> None:
    print(__doc__)

    print("--- 1. mixed OLAP/OLTP -------------------------------------")
    mixed = ext_mixed_oltp.run()
    print(mixed.table())
    improvement = mixed.oltp_latency_improvement()
    print(f"\nthe co-located OLTP tenant answers point queries "
          f"{improvement:.1f}x faster once the mechanism")
    print("confines the OLAP tenant — at no OLAP throughput cost.\n")

    print("--- 2. traffic SLA -----------------------------------------")
    sla = ext_sla.run(budget_fraction=0.5)
    print(sla.table())
    governed = sla.cells["adaptive+sla"]
    print(f"\nthe governor held the interconnect at "
          f"{governed.ht_rate / 1e9:.2f} GB/s against a "
          f"{sla.traffic_budget / 1e9:.2f} GB/s budget")
    print(f"by running on {governed.mean_cores:.1f} cores on average.")


if __name__ == "__main__":
    main()
