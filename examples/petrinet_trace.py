#!/usr/bin/env python3
"""Watching the PetriNet breathe: the Fig 7 experiment, narrated.

A single client runs TPC-H Q6 ten times under the adaptive controller.
The script prints the controller's tick-by-tick trace — which transition
chain fired (``t1-Overload-t5`` allocates a core, ``t0-Idle-t4`` releases
one, ``t2-Stable-t3`` holds) — and then renders the allocated-core
staircase as ASCII.

It also dumps the model's symbolic incidence matrix (the paper's Fig 8),
computed from the same net object that drives the simulation.

Run:  python examples/petrinet_trace.py
"""

from repro import PerformanceModel
from repro.experiments import fig07_state_transitions


def staircase(transitions, width: int = 64) -> str:
    """Render the allocated-core count over time as an ASCII staircase."""
    if not transitions:
        return "(no transitions)"
    t_end = transitions[-1][0]
    lines = []
    step = max(1, len(transitions) // width)
    for t, label, metric, cores in transitions[::step]:
        bar = "#" * cores
        lines.append(f"{t:7.3f}s |{bar:<16s}| {cores:2d} cores  "
                     f"u={metric:5.1f}  {label}")
    return "\n".join(lines)


def main() -> None:
    print(__doc__)

    print("The model's structure (incidence over places x transitions):")
    model = PerformanceModel(th_min=10, th_max=70, n_total=16)
    _, _, incidence = model.net.incidence()
    places = model.net.place_names()
    transitions = model.net.transition_names()
    header = "          " + "  ".join(f"{t:>6s}" for t in transitions)
    print(header)
    for place in places:
        cells = "  ".join(f"{str(incidence[(place, t)]):>6s}"
                          for t in transitions)
        print(f"{place:>10s}{cells}")
    print()

    result = fig07_state_transitions.run(repetitions=10)
    print(staircase(result.transitions))
    report = result.lonc
    print()
    print(f"ticks: {report.ticks}  stable: {report.stable_fraction:.0%}"
          f"  cores: {report.min_cores}..{report.max_cores}"
          f" (mean {report.mean_cores:.1f})")


if __name__ == "__main__":
    main()
