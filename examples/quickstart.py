#!/usr/bin/env python3
"""Quickstart: the elastic mechanism vs the plain OS scheduler on TPC-H Q6.

Builds two identical simulated systems — a 4-node Opteron running the
MonetDB-like engine over a synthetic TPC-H database — and runs the same
16-client Q6 workload on both.  One system exposes all 16 cores to the OS
(the baseline); the other runs the paper's adaptive-priority controller,
which hands cores to the OS one at a time based on the PetriNet
performance model and the data's NUMA placement.

Run:  python examples/quickstart.py [--telemetry DIR]

With ``--telemetry DIR`` the run records runtime telemetry and exports
it to DIR — open ``DIR/trace.json`` in Perfetto, or inspect it with
``python -m repro stats DIR`` / ``python -m repro explain DIR``.
"""

import argparse

from repro import build_system, repeat_stream
from repro.analysis.report import render_table

N_CLIENTS = 16
REPETITIONS = 3


def run_one(mode: str | None) -> dict:
    """Run the workload on one configuration and collect the headline
    counters."""
    sut = build_system(engine="monetdb", mode=mode)
    sut.mark()
    result = sut.run_clients(N_CLIENTS, repeat_stream("q6", REPETITIONS))
    row = {
        "config": sut.label,
        "throughput q/s": result.throughput,
        "mean latency s": result.mean_latency(),
        "HT/IMC ratio": sut.ht_imc_ratio(),
        "migrations": sut.delta("migrations"),
        "stolen tasks": sut.delta("stolen_tasks"),
    }
    if sut.controller is not None:
        row["mean cores"] = sut.controller.lonc.report().mean_cores
    else:
        row["mean cores"] = 16.0
    return row


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--telemetry", metavar="DIR", default=None,
                        help="record telemetry and export it to DIR")
    args = parser.parse_args()
    print(__doc__)
    if args.telemetry is not None:
        from repro.obs import Recorder, export_run, install, uninstall

        recorder = install(Recorder())
        try:
            rows = [run_one(None), run_one("adaptive")]
        finally:
            uninstall()
        for path in export_run(recorder, args.telemetry).values():
            print(f"telemetry: {path}")
    else:
        rows = [run_one(None), run_one("adaptive")]
    headers = list(rows[0])
    print(render_table(headers, [[r[h] for h in headers] for r in rows],
                       title=f"Q6, {N_CLIENTS} concurrent clients"))
    baseline, adaptive = rows
    ratio_cut = baseline["HT/IMC ratio"] / max(adaptive["HT/IMC ratio"],
                                               1e-9)
    print()
    print(f"adaptive mode moved {ratio_cut:.2f}x less data over the "
          f"interconnect per memory byte served,")
    print(f"with {baseline['migrations'] - adaptive['migrations']:.0f} "
          f"fewer thread migrations.")


if __name__ == "__main__":
    main()
