#!/usr/bin/env python3
"""Two elastic controllers governing one machine, side by side.

The control-plane decomposition turns the paper's single mechanism into
four stages behind interfaces; the actuator holds *core leases* against
a machine-wide inventory instead of writing the one cpuset directly.
This demo runs two tenants — the MonetDB-like Volcano engine and the
SQL Server-like NUMA-aware engine — each under its own controller, on
one simulated Opteron 8387, and shows:

1. the per-tenant outcome table (the inventory kept every lease
   disjoint, or the harness would have raised);
2. each controller's decision provenance, filtered by tenant — what
   ``repro explain out/ --tenant volcano`` prints for a recorded run;
3. each tenant's metric namespace — what ``repro stats out/ --tenant
   numa`` summarises.

Run:  python examples/two_controllers.py
"""

from repro.experiments import ext_multi_tenant
from repro.obs import (Recorder, explain_decision, install, stats_table,
                       uninstall)


def main() -> None:
    print(__doc__)

    recorder = Recorder()
    install(recorder)
    try:
        result = ext_multi_tenant.run()
    finally:
        uninstall()

    print(result.table())

    for tenant in ("volcano", "numa"):
        changed = [d for d in recorder.decisions.all()
                   if d.tenant == tenant and d.action is not None]
        print(f"\n--- first mask change of tenant {tenant!r} "
              f"({len(changed)} total) ---")
        if changed:
            print(explain_decision(changed[0]))

    print()
    print(stats_table(recorder.metrics, title="telemetry",
                      tenant="numa"))


if __name__ == "__main__":
    main()
