"""repro — an elastic multi-core allocation mechanism for database systems.

A from-scratch Python reproduction of Dominico et al., "An Elastic
Multi-Core Allocation Mechanism for Database Systems" (ICDE 2018),
including every substrate the paper relies on:

* a discrete-event **NUMA machine** (sockets, shared L3s, memory banks,
  HyperTransport-style interconnect, hardware counters, energy model);
* a simulated **operating system** (CFS-style scheduler with load
  balancing and task stealing, first-touch virtual memory, cpusets);
* two **database engines** over a columnar executor with real numpy
  evaluation — an OS-scheduled Volcano engine (the MonetDB role) and a
  NUMA-aware partitioned engine (the SQL Server role);
* a synthetic **TPC-H** workload suite (generator plus all 22 queries);
* the paper's contribution: a **PetriNet-based elastic controller** with
  Sparse / Dense / Adaptive-Priority allocation modes and CPU-load or
  HT/IMC transition strategies.

Quick start::

    from repro import build_system, repeat_stream

    sut = build_system(engine="monetdb", mode="adaptive")
    result = sut.run_clients(16, repeat_stream("q6", 4))
    print(result.throughput, "queries/s on", sut.label)

See ``examples/`` for full scenarios and ``benchmarks/`` for the harnesses
that regenerate every figure of the paper's evaluation.
"""

from .config import (ControllerConfig, EngineConfig, ExperimentConfig,
                     MachineConfig, SchedulerConfig)
from .core import (AdaptivePriorityMode, CpuLoadStrategy, DenseMode,
                   ElasticController, HtImcStrategy, NodePriorityQueue,
                   PerformanceModel, PetriNet, SparseMode, make_mode,
                   make_strategy)
from .db import (BAT, Catalog, ClientPool, DatabaseEngine, MonetDBLike,
                 NumaAwareEngine, Table, WorkloadResult)
from .db.clients import repeat_stream
from .errors import ReproError, VerificationError
from .experiments import SystemUnderTest, build_system
from .verify import (VerificationReport, verify_performance_model,
                     verify_source_tree)
from .hardware import EnergyModel, Machine, Topology, opteron_8387
from .opsys import CpuSet, OperatingSystem, Scheduler
from .sim import Simulator, TraceRecorder
from .workloads.tpch import build_queries, generate

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # configuration
    "MachineConfig", "SchedulerConfig", "ControllerConfig", "EngineConfig",
    "ExperimentConfig",
    # hardware / OS substrate
    "Machine", "Topology", "EnergyModel", "opteron_8387",
    "OperatingSystem", "Scheduler", "CpuSet", "Simulator", "TraceRecorder",
    # database substrate
    "BAT", "Table", "Catalog", "DatabaseEngine", "MonetDBLike",
    "NumaAwareEngine", "ClientPool", "WorkloadResult", "repeat_stream",
    # workloads
    "generate", "build_queries",
    # the mechanism
    "PetriNet", "PerformanceModel", "ElasticController",
    "SparseMode", "DenseMode", "AdaptivePriorityMode", "NodePriorityQueue",
    "CpuLoadStrategy", "HtImcStrategy", "make_mode", "make_strategy",
    # experiment harness
    "build_system", "SystemUnderTest",
    # static verification
    "VerificationReport", "verify_performance_model",
    "verify_source_tree",
    # errors
    "ReproError", "VerificationError",
]
