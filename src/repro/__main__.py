"""``python -m repro`` — the experiment-runner CLI.

The ``__name__`` guard is load-bearing: spawn-start worker processes
(``repro run --parallel``, ``repro bench --parallel``) re-import the
main module as ``__mp_main__``, and must not re-enter the CLI.
"""

import sys

from .cli import main

if __name__ == "__main__":
    sys.exit(main())
