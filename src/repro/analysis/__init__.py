"""Post-processing helpers: metrics and fixed-width report rendering."""

from .metrics import geometric_mean, percentile, ratio_reduction, speedup
from .report import render_table
from .timeline import (render_allocation_staircase, render_core_map,
                       render_node_map)

__all__ = [
    "speedup", "ratio_reduction", "geometric_mean", "percentile",
    "render_table",
    "render_node_map", "render_core_map", "render_allocation_staircase",
]
