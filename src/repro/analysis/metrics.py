"""Derived metrics used throughout the experiment harnesses."""

from __future__ import annotations

import math
from collections.abc import Iterable

from ..errors import ReproError


def speedup(baseline: float, improved: float) -> float:
    """``baseline / improved`` — how many times faster the improved run is.

    Zero or negative times are rejected (they indicate a broken run).
    """
    if baseline <= 0 or improved <= 0:
        raise ReproError("speedup needs positive durations")
    return baseline / improved


def ratio_reduction(baseline: float, improved: float) -> float:
    """How many times smaller the improved ratio is (paper's "N× smaller").

    A zero improved ratio (no remote traffic at all) reports ``inf``.
    """
    if baseline < 0 or improved < 0:
        raise ReproError("ratios cannot be negative")
    if improved == 0:
        return math.inf
    return baseline / improved


def percentile(values: Iterable[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]); 0.0 for empty input."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    if not 0.0 <= q <= 1.0:
        raise ReproError("percentile q must be within [0, 1]")
    index = min(int(q * len(ordered)), len(ordered) - 1)
    return ordered[index]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (the paper uses it for energy savings, §V-C3)."""
    items = [v for v in values]
    if not items:
        raise ReproError("geometric mean of an empty sequence")
    if any(v <= 0 for v in items):
        raise ReproError("geometric mean needs positive values")
    return math.exp(sum(math.log(v) for v in items) / len(items))
