"""Fixed-width table rendering for benchmark/experiment output.

The benchmark harnesses print the same rows the paper's tables and figure
series contain; this module keeps that output aligned and diff-friendly.
"""

from __future__ import annotations

from collections.abc import Sequence


def _fmt(value) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def render_table(headers: Sequence[str],
                 rows: Sequence[Sequence[object]],
                 title: str = "") -> str:
    """Render an aligned text table.

    Numbers are right-aligned, text left-aligned; floats get adaptive
    precision.  Returns the table as a string (callers print it).
    """
    cells = [[_fmt(v) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in cells:
        for i, cell in enumerate(row):
            if i < len(widths):
                widths[i] = max(widths[i], len(cell))

    def align(row_cells, source_row):
        parts = []
        for i, cell in enumerate(row_cells):
            if i < len(source_row) and isinstance(source_row[i],
                                                  (int, float)):
                parts.append(cell.rjust(widths[i]))
            else:
                parts.append(cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths))
                 .rstrip())
    lines.append("  ".join("-" * w for w in widths))
    for source, rendered in zip(rows, cells):
        lines.append(align(rendered, source))
    return "\n".join(lines)
