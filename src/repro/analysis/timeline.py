"""ASCII rendering of thread-placement timelines (the Fig 5/16 maps).

The paper's migration figures plot, for every worker thread, which core it
occupied over time, with colours per NUMA node.  The text equivalent here
draws one row per thread and one column per time bucket; the glyph is the
node digit, and a ``.`` marks buckets where the thread was not (yet/any
longer) placed.  Core-level detail is available through
``render_core_map``.
"""

from __future__ import annotations

from ..errors import ReproError


def _bucketise(placements, t_start: float, t_end: float,
               width: int) -> list[int | None]:
    """Latest placement value per time bucket (carry-forward)."""
    if t_end <= t_start:
        raise ReproError("timeline needs a positive time span")
    cells: list[int | None] = [None] * width
    span = t_end - t_start
    value: int | None = None
    events = iter(placements)
    pending = next(events, None)
    for bucket in range(width):
        bucket_end = t_start + span * (bucket + 1) / width
        while pending is not None and pending[0] <= bucket_end:
            value = pending[1]
            pending = next(events, None)
        cells[bucket] = value
    return cells


def render_node_map(timelines, width: int = 60,
                    title: str = "") -> str:
    """Render thread-over-node timelines.

    Parameters
    ----------
    timelines:
        Iterable of objects with ``thread_id`` and ``placements`` —
        ``(time, core, node)`` tuples — i.e.
        :class:`repro.experiments.fig05_migration_os.ThreadTimeline`.
    width:
        Character columns for the time axis.
    """
    timelines = [t for t in timelines if t.placements]
    if not timelines:
        return "(no placements recorded)"
    t_start = min(t.placements[0][0] for t in timelines)
    t_end = max(t.placements[-1][0] for t in timelines)
    if t_end <= t_start:
        t_end = t_start + 1e-6
    lines = []
    if title:
        lines.append(title)
    lines.append(f"time {t_start * 1e3:.1f} ms "
                 + "-" * max(width - 24, 1)
                 + f" {t_end * 1e3:.1f} ms   (digit = NUMA node)")
    for timeline in timelines:
        events = [(t, node) for t, _, node in timeline.placements]
        cells = _bucketise(events, t_start, t_end, width)
        row = "".join("." if c is None else str(c) for c in cells)
        lines.append(f"T{timeline.thread_id:<4d} {row}")
    return "\n".join(lines)


def render_core_map(timelines, width: int = 60,
                    title: str = "") -> str:
    """Like :func:`render_node_map` but with core ids (hex digits)."""
    timelines = [t for t in timelines if t.placements]
    if not timelines:
        return "(no placements recorded)"
    t_start = min(t.placements[0][0] for t in timelines)
    t_end = max(t.placements[-1][0] for t in timelines)
    if t_end <= t_start:
        t_end = t_start + 1e-6
    lines = []
    if title:
        lines.append(title)
    lines.append(f"time {t_start * 1e3:.1f} ms "
                 + "-" * max(width - 24, 1)
                 + f" {t_end * 1e3:.1f} ms   (hex digit = core)")
    for timeline in timelines:
        events = [(t, core) for t, core, _ in timeline.placements]
        cells = _bucketise(events, t_start, t_end, width)
        row = "".join("." if c is None else format(c, "x")
                      for c in cells)
        lines.append(f"T{timeline.thread_id:<4d} {row}")
    return "\n".join(lines)


def render_allocation_staircase(transitions, width: int = 60,
                                n_total: int = 16,
                                title: str = "") -> str:
    """Render the Fig 7 allocated-cores staircase from transition tuples
    ``(time, label, metric, cores)``."""
    if not transitions:
        return "(no transitions recorded)"
    lines = []
    if title:
        lines.append(title)
    step = max(1, len(transitions) // width)
    for t, label, metric, cores in transitions[::step]:
        bar = "#" * cores + "." * (n_total - cores)
        lines.append(f"{t:8.3f}s |{bar}| {cores:2d}  u={metric:5.1f}  "
                     f"{label}")
    return "\n".join(lines)
