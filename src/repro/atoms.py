"""Content digests for shared atoms, memoised per object.

Three layers hash the same immutable bulk values — the TPC-H column
arrays and the dataset object that owns them:

* :meth:`repro.sim.state.SimState.fingerprint` digests a capture's
  shared atoms into its cache-key identity,
* :func:`repro.runner.cache.canonical` digests array-valued task
  kwargs into result-cache keys, and
* :class:`repro.runner.shm.SharedAtomStore` content-addresses the
  shared-memory segment each atom is published into.

The scheme must stay byte-identical across all three (cache keys and
snapshot fingerprints persist on disk), so it lives here once: numpy
arrays digest as ``sha256("<dtype>:<shape>" + raw buffer)``, everything
else as the sha256 of its pickle.

Digests are memoised by object identity — the atoms are megabytes and
immutable by contract, so each is hashed once per process no matter how
many sweeps, cache lookups and publications touch it.  A weakref
callback evicts the entry when the atom is collected, so a recycled
``id()`` can never alias a stale digest; values that cannot be weakly
referenced (``bytes``, plain containers) are simply hashed each call.
"""

from __future__ import annotations

import hashlib
import pickle
import weakref
from typing import Any

#: id(atom) -> (weakref guard, digest).  The guard's callback removes
#: the entry when the atom dies; only weakly-referenceable atoms enter.
_MEMO: dict[int, tuple[Any, bytes]] = {}


def _compute(atom: Any) -> bytes:
    tobytes = getattr(atom, "tobytes", None)
    if callable(tobytes):  # numpy arrays: raw buffer + dtype + shape
        meta = f"{getattr(atom, 'dtype', '')}:{getattr(atom, 'shape', '')}"
        return hashlib.sha256(meta.encode() + tobytes()).digest()
    return hashlib.sha256(
        pickle.dumps(atom, protocol=pickle.HIGHEST_PROTOCOL)).digest()


def _evict(key: int) -> None:
    _MEMO.pop(key, None)


def atom_digest(atom: Any) -> bytes:
    """Stable 32-byte content digest of one shared atom (memoised)."""
    key = id(atom)
    hit = _MEMO.get(key)
    if hit is not None:
        return hit[1]
    value = _compute(atom)
    try:
        guard = weakref.ref(atom, lambda _ref, key=key: _evict(key))
    except TypeError:
        # bytes/containers take no weak references; hash each call
        return value
    _MEMO[key] = (guard, value)
    return value


def atom_hexdigest(atom: Any) -> str:
    """Hex form of :func:`atom_digest` (segment/key addressing)."""
    return atom_digest(atom).hex()
