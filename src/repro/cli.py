"""Command-line interface: run any experiment from the shell.

Usage::

    python -m repro list
    python -m repro run fig13 --users 4,16 --repetitions 2
    python -m repro run fig19 --engine sqlserver --n-clients 16
    python -m repro compare --workload q6 --clients 16

``run`` executes one figure/extension harness and prints its table;
``compare`` is a quick four-way mode comparison on one query.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Callable

from .analysis.report import render_table
from .db.clients import repeat_stream
from .errors import ReproError
from .experiments import (ablations, ext_mixed_oltp, ext_morsel,
                          ext_predicate_aware, ext_sla,
                          fig04_microbench, fig05_migration_os,
                          fig06_tomograph, fig07_state_transitions,
                          fig13_scheduling, fig14_memory,
                          fig15_selectivity, fig16_migration_modes,
                          fig17_strategies, fig18_stable_phases,
                          fig19_mixed_phases, fig20_energy, overhead)
from .experiments.common import build_system

#: name -> (runner, description).  Every runner returns an object with
#: ``table()``.
EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    "fig4": (fig04_microbench.run,
             "Q6 microbenchmark vs concurrent clients"),
    "fig5": (fig05_migration_os.run, "OS thread migration map"),
    "fig6": (fig06_tomograph.run, "Tomograph of Q6's workers"),
    "fig7": (fig07_state_transitions.run,
             "state transitions + core staircase"),
    "fig13": (fig13_scheduling.run, "scheduling metrics vs users"),
    "fig14": (fig14_memory.run, "memory metrics at high concurrency"),
    "fig15": (fig15_selectivity.run, "L3 misses vs selectivity"),
    "fig16": (fig16_migration_modes.run, "migration maps per mode"),
    "fig17": (fig17_strategies.run, "CPU-load vs HT/IMC strategies"),
    "fig18": (fig18_stable_phases.run, "stable-phases workload"),
    "fig19": (fig19_mixed_phases.run, "mixed-phases per-query results"),
    "fig20": (fig20_energy.run, "per-query energy accounting"),
    "overhead": (overhead.run, "controller token-flow overhead"),
    "sla": (ext_sla.run, "extension: traffic-SLA governor"),
    "oltp": (ext_mixed_oltp.run, "extension: mixed OLAP/OLTP"),
    "predicate-aware": (ext_predicate_aware.run,
                        "extension: predicate-aware worker sizing"),
    "morsel": (ext_morsel.run,
               "extension: morsel-driven engine x the mechanism"),
    "ablation-thresholds": (ablations.thresholds,
                            "ablation: threshold sweep"),
    "ablation-strategies": (ablations.strategies,
                            "ablation: strategy comparison"),
    "ablation-parallelism": (ablations.elastic_parallelism,
                             "ablation: elastic parallelism"),
    "ablation-autonuma": (ablations.autonuma,
                          "ablation: AutoNUMA page migration"),
}

#: CLI option -> runner kwarg, with a parser for the string value
_OPTION_SPECS = {
    "users": ("users", lambda s: tuple(int(v) for v in s.split(","))),
    "repetitions": ("repetitions", int),
    "n_clients": ("n_clients", int),
    "queries_per_client": ("queries_per_client", int),
    "engine": ("engine", str),
    "scale": ("scale", float),
    "sim_scale": ("sim_scale", float),
    "seed": ("seed", int),
    "budget_fraction": ("budget_fraction", float),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Elastic multi-core allocation for database "
                     "systems (ICDE 2018) - experiment runner"))
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    for option in _OPTION_SPECS:
        run.add_argument(f"--{option.replace('_', '-')}", dest=option,
                         default=None)

    compare = sub.add_parser(
        "compare", help="quick four-way mode comparison on one query")
    compare.add_argument("--workload", default="q6",
                         help="registered query name (default q6)")
    compare.add_argument("--clients", type=int, default=16)
    compare.add_argument("--repetitions", type=int, default=3)
    compare.add_argument("--engine", default="monetdb",
                         choices=("monetdb", "sqlserver", "morsel"))
    return parser


def _run_experiment(args: argparse.Namespace) -> str:
    runner, _ = EXPERIMENTS[args.experiment]
    kwargs = {}
    for option, (kwarg, parse) in _OPTION_SPECS.items():
        raw = getattr(args, option, None)
        if raw is None:
            continue
        if kwarg not in runner.__code__.co_varnames:
            raise ReproError(
                f"{args.experiment} does not accept --"
                f"{option.replace('_', '-')}")
        kwargs[kwarg] = parse(raw)
    result = runner(**kwargs)
    return result.table()


def _run_compare(args: argparse.Namespace) -> str:
    rows = []
    for mode in (None, "dense", "sparse", "adaptive"):
        sut = build_system(engine=args.engine, mode=mode)
        sut.mark()
        workload = sut.run_clients(
            args.clients, repeat_stream(args.workload, args.repetitions))
        cores = (sut.controller.lonc.report().mean_cores
                 if sut.controller else float(sut.os.topology.n_cores))
        rows.append([sut.label, workload.throughput,
                     workload.mean_latency(), sut.ht_imc_ratio(),
                     sut.delta("migrations"), cores])
    return render_table(
        ["config", "queries/s", "mean lat s", "HT/IMC", "migrations",
         "mean cores"],
        rows,
        title=(f"{args.workload}, {args.clients} clients on "
               f"{args.engine}"))


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            rows = [[name, description]
                    for name, (_, description) in sorted(
                        EXPERIMENTS.items())]
            print(render_table(["experiment", "description"], rows))
        elif args.command == "run":
            print(_run_experiment(args))
        else:
            print(_run_compare(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution path
    sys.exit(main())
