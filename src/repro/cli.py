"""Command-line interface: run any experiment from the shell.

Usage::

    python -m repro list
    python -m repro run fig13 --users 4,16 --repetitions 2
    python -m repro run fig19 --engine sqlserver --n-clients 16
    python -m repro run fig7 --telemetry out/fig7
    python -m repro monitor fig13 --port 8765 --jsonl stream.jsonl
    python -m repro stats out/fig7
    python -m repro explain out/fig7 --action-only
    python -m repro compare --workload q6 --clients 16
    python -m repro verify --json
    python -m repro cache stats

``run`` executes one figure/extension harness and prints its table; with
``--telemetry DIR`` it records metrics, spans and decision provenance
and exports them to ``DIR``.  ``stats`` summarises a recorded metrics
snapshot; ``explain`` replays the decision-provenance log — the full
causal chain (sample -> guard -> action) behind every mask change.
``compare`` is a quick four-way mode comparison on one query; ``verify``
runs the static model checks and the determinism lint (exit 0 clean,
1 on findings) — the CI gate.  ``monitor`` runs one experiment under the
live telemetry pipeline: a Prometheus ``/metrics`` + JSON ``/health``
HTTP endpoint, a terminal dashboard, controller-health analyzers and
alert rules, and an optional JSONL stream.
"""

from __future__ import annotations

import argparse
import importlib.util
import sys
from collections.abc import Callable
from pathlib import Path

from .analysis.report import render_table
from .db.clients import repeat_stream
from .errors import ReproError
from .experiments import (ablations, ext_mixed_oltp, ext_morsel,
                          ext_multi_tenant, ext_predicate_aware, ext_sla,
                          fig04_microbench, fig05_migration_os,
                          fig06_tomograph, fig07_state_transitions,
                          fig13_scheduling, fig14_memory,
                          fig15_selectivity, fig16_migration_modes,
                          fig17_strategies, fig18_stable_phases,
                          fig19_mixed_phases, fig20_energy, overhead)
from .experiments.common import build_system

#: name -> (runner, description).  Every runner returns an object with
#: ``table()``.
EXPERIMENTS: dict[str, tuple[Callable, str]] = {
    "fig4": (fig04_microbench.run,
             "Q6 microbenchmark vs concurrent clients"),
    "fig5": (fig05_migration_os.run, "OS thread migration map"),
    "fig6": (fig06_tomograph.run, "Tomograph of Q6's workers"),
    "fig7": (fig07_state_transitions.run,
             "state transitions + core staircase"),
    "fig13": (fig13_scheduling.run, "scheduling metrics vs users"),
    "fig14": (fig14_memory.run, "memory metrics at high concurrency"),
    "fig15": (fig15_selectivity.run, "L3 misses vs selectivity"),
    "fig16": (fig16_migration_modes.run, "migration maps per mode"),
    "fig17": (fig17_strategies.run, "CPU-load vs HT/IMC strategies"),
    "fig18": (fig18_stable_phases.run, "stable-phases workload"),
    "fig19": (fig19_mixed_phases.run, "mixed-phases per-query results"),
    "fig20": (fig20_energy.run, "per-query energy accounting"),
    "overhead": (overhead.run, "controller token-flow overhead"),
    "sla": (ext_sla.run, "extension: traffic-SLA governor"),
    "oltp": (ext_mixed_oltp.run, "extension: mixed OLAP/OLTP"),
    "multi-tenant": (ext_multi_tenant.run,
                     "extension: two controllers, one machine"),
    "predicate-aware": (ext_predicate_aware.run,
                        "extension: predicate-aware worker sizing"),
    "morsel": (ext_morsel.run,
               "extension: morsel-driven engine x the mechanism"),
    "ablation-thresholds": (ablations.thresholds,
                            "ablation: threshold sweep"),
    "ablation-strategies": (ablations.strategies,
                            "ablation: strategy comparison"),
    "ablation-parallelism": (ablations.elastic_parallelism,
                             "ablation: elastic parallelism"),
    "ablation-autonuma": (ablations.autonuma,
                          "ablation: AutoNUMA page migration"),
}

#: CLI option -> runner kwarg, with a parser for the string value
_OPTION_SPECS = {
    "users": ("users", lambda s: tuple(int(v) for v in s.split(","))),
    "repetitions": ("repetitions", int),
    "n_clients": ("n_clients", int),
    "queries_per_client": ("queries_per_client", int),
    "engine": ("engine", str),
    "scale": ("scale", float),
    "sim_scale": ("sim_scale", float),
    "seed": ("seed", int),
    "budget_fraction": ("budget_fraction", float),
}


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=("Elastic multi-core allocation for database "
                     "systems (ICDE 2018) - experiment runner"))
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(EXPERIMENTS))
    run.add_argument("--telemetry", metavar="DIR", default=None,
                     help="record telemetry and export it to DIR "
                          "(metrics.prom, metrics.jsonl, trace.json, "
                          "decisions.jsonl)")
    run.add_argument("--parallel", type=int, default=1, metavar="N",
                     help="fan independent experiment cells across N "
                          "worker processes (results are identical to "
                          "a serial run; experiments without a cell "
                          "plan fall back to serial)")
    run.add_argument("--profile", action="store_true",
                     help="run under cProfile: writes "
                          "profile_<experiment>.pstats and prints the "
                          "top-20 cumulative functions (forces a "
                          "serial, uncached run)")
    run.add_argument("--no-cache", action="store_true",
                     help="re-run every cell instead of replaying "
                          "cached results")
    for option in _OPTION_SPECS:
        run.add_argument(f"--{option.replace('_', '-')}", dest=option,
                         default=None)

    monitor = sub.add_parser(
        "monitor",
        help="run one experiment under live monitoring: /metrics + "
             "/health HTTP endpoints, terminal dashboard, JSONL stream")
    monitor.add_argument("experiment", choices=sorted(EXPERIMENTS))
    monitor.add_argument("--host", default="127.0.0.1",
                         help="bind address (default 127.0.0.1)")
    monitor.add_argument("--port", type=int, default=8765,
                         help="HTTP port; 0 picks a free one "
                              "(default 8765)")
    monitor.add_argument("--window", type=float, default=0.25,
                         help="flush-window length in simulated "
                              "seconds (default 0.25)")
    monitor.add_argument("--jsonl", metavar="FILE", default=None,
                         help="stream every sample/decision/window/"
                              "alert to FILE as JSON lines")
    monitor.add_argument("--rules", metavar="FILE", default=None,
                         help="alert rules JSON file (default: the "
                              "built-in rule set)")
    monitor.add_argument("--slo-latency-p95", type=float, default=None,
                         metavar="SECONDS",
                         help="SLO: windowed p95 query latency must "
                              "stay <= SECONDS")
    monitor.add_argument("--slo-throughput-min", type=float,
                         default=None, metavar="QPS",
                         help="SLO: windowed throughput must stay "
                              ">= QPS")
    monitor.add_argument("--refresh", type=float, default=1.0,
                         help="dashboard redraw interval in host "
                              "seconds (default 1.0)")
    monitor.add_argument("--no-dashboard", action="store_true",
                         help="suppress the terminal dashboard "
                              "(endpoints still serve)")
    monitor.add_argument("--serve-grace", type=float, default=0.0,
                         metavar="SECONDS",
                         help="keep serving SECONDS after the "
                              "experiment ends (for late scrapers)")
    monitor.add_argument("--fail-on-alert", action="store_true",
                         help="exit 1 if any alert is still firing "
                              "when the run ends")
    monitor.add_argument("--telemetry", metavar="DIR", default=None,
                         help="also export the batch telemetry "
                              "(metrics/trace/decisions) to DIR")
    for option in _OPTION_SPECS:
        monitor.add_argument(f"--{option.replace('_', '-')}",
                             dest=option, default=None)

    bench = sub.add_parser(
        "bench",
        help="wall-time the experiment suite and compare against the "
             "committed baseline")
    bench.add_argument("--quick", action="store_true",
                       help="the 3-experiment CI smoke subset")
    bench.add_argument("--experiments", default=None, metavar="A,B,C",
                       help="comma-separated subset of the bench suite")
    bench.add_argument("--parallel", type=int, default=0, metavar="N",
                       help="also time the suite fanned across N worker "
                            "processes and report the speedup")
    bench.add_argument("--tolerance", type=float, default=0.25,
                       help="per-experiment score-regression tolerance "
                            "vs the baseline (default 0.25 = 25%%)")
    bench.add_argument("--retries", type=int, default=2, metavar="N",
                       help="re-measure entries that trip the gate up "
                            "to N extra rounds before failing (a real "
                            "regression reproduces on every retry; "
                            "0 disables; default 2)")
    bench.add_argument("--output-dir", default=None, metavar="DIR",
                       help="where to write/read BENCH_<rev>.json "
                            "(default benchmarks/results)")
    bench.add_argument("--no-write", action="store_true",
                       help="do not write a BENCH_<rev>.json snapshot")
    bench.add_argument("--no-cache", action="store_true",
                       help="re-time every suite entry instead of "
                            "replaying cached results")
    bench.add_argument("--json", action="store_true",
                       help="machine-readable snapshot on stdout")

    cache = sub.add_parser(
        "cache",
        help="inspect or clear the content-addressed result cache")
    cache.add_argument("action", choices=("stats", "clear"))
    cache.add_argument("--dir", default=None, metavar="DIR",
                       help="cache directory (default .repro-cache/ or "
                            "$REPRO_CACHE_DIR)")

    stats = sub.add_parser(
        "stats", help="summarise a recorded telemetry directory")
    stats.add_argument("path",
                       help="telemetry directory (or a metrics.jsonl "
                            "file) written by run --telemetry")
    stats.add_argument("--tenant", default=None,
                       help="only this tenant's per-tenant instruments "
                            "(controller.*, cpuset.*, petrinet.*)")

    explain = sub.add_parser(
        "explain",
        help="replay the decision provenance of a recorded run")
    explain.add_argument("path",
                         help="telemetry directory (or a "
                              "decisions.jsonl file) written by "
                              "run --telemetry")
    explain.add_argument("--tick", type=int, default=None,
                         help="explain one controller tick only")
    explain.add_argument("--tenant", default=None,
                         help="only decisions taken by this tenant's "
                              "controller")
    explain.add_argument("--state", default=None,
                         choices=("Idle", "Stable", "Overload"),
                         help="only decisions in this performance state")
    explain.add_argument("--action-only", action="store_true",
                         help="only decisions that changed the mask")
    explain.add_argument("--limit", type=int, default=None,
                         help="show at most N decisions (from the end)")
    explain.add_argument("--json", action="store_true",
                         help="machine-readable records on stdout")

    compare = sub.add_parser(
        "compare", help="quick four-way mode comparison on one query")
    compare.add_argument("--workload", default="q6",
                         help="registered query name (default q6)")
    compare.add_argument("--clients", type=int, default=16)
    compare.add_argument("--repetitions", type=int, default=3)
    compare.add_argument("--engine", default="monetdb",
                         choices=("monetdb", "sqlserver", "morsel"))

    verify = sub.add_parser(
        "verify",
        help="static model checks + determinism lint (the CI gate)")
    verify.add_argument("--json", action="store_true",
                        help="machine-readable report on stdout")
    verify.add_argument("--strategy", default="all",
                        choices=("all", "cpu_load", "ht_imc",
                                 "useful_load"),
                        help="which strategy's thresholds to verify")
    verify.add_argument("--th-min", type=float, default=None)
    verify.add_argument("--th-max", type=float, default=None)
    verify.add_argument("--n-total", type=int, default=16,
                        help="machine core count (default 16)")
    verify.add_argument("--min-cores", type=int, default=1)
    verify.add_argument("--initial-cores", type=int, default=1)
    verify.add_argument("--grid", type=int, default=101,
                        help="uniform metric probes on top of the "
                             "breakpoints (default 101)")
    verify.add_argument("--fixture", default=None,
                        help="PATH[:FUNC] of a python file whose FUNC "
                             "(default 'build') returns the model to "
                             "verify instead of the shipped one")
    verify.add_argument("--src", default=None,
                        help="source tree to lint (default: the "
                             "installed repro package)")
    verify.add_argument("--no-lint", action="store_true",
                        help="skip the source rules")
    verify.add_argument("--no-model", action="store_true",
                        help="skip the model checks")
    verify.add_argument("--lint-only", action="store_true",
                        help="run only the source rules "
                             "(pattern + flow; skip model checks)")
    verify.add_argument("--all", action="store_true",
                        help="run everything: model checks plus every "
                             "registered source rule (overrides the "
                             "--no-*/--lint-only switches)")
    verify.add_argument("--rules", action="append", default=None,
                        metavar="ID[,ID...]",
                        help="restrict the source run to these rule "
                             "ids (repeatable, comma-separable)")
    verify.add_argument("--list-rules", action="store_true",
                        help="print the rule catalog and exit")
    verify.add_argument("--files", nargs="+", default=None,
                        metavar="FILE",
                        help="run the source rules over these files "
                             "only (the pre-commit hook; implies "
                             "--lint-only)")
    verify.add_argument("--baseline", default=None, metavar="FILE",
                        help="grandfather the findings recorded in "
                             "FILE: matches are demoted to warnings, "
                             "anything new still fails")
    verify.add_argument("--write-baseline", default=None,
                        metavar="FILE",
                        help="record the current source error findings "
                             "into FILE and exit")
    return parser


def _runner_kwargs(args: argparse.Namespace, runner: Callable) -> dict:
    """Translate the shared experiment options into runner kwargs."""
    kwargs = {}
    for option, (kwarg, parse) in _OPTION_SPECS.items():
        raw = getattr(args, option, None)
        if raw is None:
            continue
        if kwarg not in runner.__code__.co_varnames:
            raise ReproError(
                f"{args.experiment} does not accept --"
                f"{option.replace('_', '-')}")
        kwargs[kwarg] = parse(raw)
    return kwargs


def _run_experiment(args: argparse.Namespace) -> str:
    runner, _ = EXPERIMENTS[args.experiment]
    kwargs = _runner_kwargs(args, runner)
    note = ""
    parallel = getattr(args, "parallel", 1) or 1
    telemetry = getattr(args, "telemetry", None)
    profile = getattr(args, "profile", False)
    if profile and telemetry is not None:
        raise ReproError("--profile and --telemetry are mutually "
                         "exclusive")
    if parallel > 1:
        if parallel > 64:
            raise ReproError("--parallel accepts at most 64 workers")
        if telemetry is not None:
            # telemetry hooks the process-wide recorder; worker
            # processes would record into the void
            note = ("note: --telemetry records in-process; running "
                    "serially\n")
        elif "parallel" not in runner.__code__.co_varnames:
            note = (f"note: {args.experiment} has no parallel cell "
                    f"plan; running serially\n")
        else:
            kwargs["parallel"] = parallel

    from .runner import cache as cache_mod
    from .runner import pool as pool_mod

    use_cache = not getattr(args, "no_cache", False)
    if profile:
        if kwargs.pop("parallel", None):
            note += "note: --profile forces a serial run\n"
        use_cache = False
    if telemetry is not None:
        # replayed cells execute no simulation, so they would record
        # nothing — a telemetry run must simulate every cell
        use_cache = False
    cache_mod.configure(cache_mod.ResultCache() if use_cache else None)
    fanned_out = kwargs.get("parallel", 1) > 1
    if fanned_out:
        # longest-expected-first dispatch from the latest bench
        # snapshot's per-task timings (empty when none recorded)
        from .runner import bench as bench_mod
        pool_mod.configure_cost_hints(bench_mod.load_cost_hints())
    try:
        if profile:
            return note + _profile_run(args.experiment, runner, kwargs)
        if telemetry is None:
            output = note + runner(**kwargs).table()
            if fanned_out:
                output += _pool_summary(pool_mod.last_pool_stats())
            return output
        from .obs import Recorder, export_run, install, uninstall

        recorder = Recorder()
        install(recorder)
        try:
            result = runner(**kwargs)
        finally:
            uninstall()
        paths = export_run(recorder, telemetry)
        exported = "\n".join(f"  {p}" for p in paths.values())
        return (f"{note}{result.table()}\n\ntelemetry written to:\n"
                f"{exported}")
    finally:
        cache_mod.configure(None)
        pool_mod.configure_cost_hints(None)


def _pool_summary(stats) -> str:
    """One-line pool telemetry after a ``--parallel`` run."""
    if stats is None or not stats.workers:
        return ""
    line = (f"\npool (last fan-out): {stats.workers} worker(s), "
            f"utilisation {stats.mean_utilisation():.0%}, "
            f"{stats.ipc_bytes_shipped:,} B shipped over IPC, "
            f"{stats.shm_bytes:,} B shared once via shm")
    if stats.respawns:
        line += f", {stats.respawns} respawn(s)"
    return line


def _profile_run(name: str, runner: Callable, kwargs: dict) -> str:
    """Run one experiment under cProfile; dump stats, print the top-20."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    try:
        result = runner(**kwargs)
    finally:
        profiler.disable()
    out = Path(f"profile_{name}.pstats")
    profiler.dump_stats(out)
    stream = io.StringIO()
    pstats.Stats(profiler, stream=stream) \
        .sort_stats("cumulative").print_stats(20)
    return (f"{result.table()}\n\nprofile written to {out}\n"
            f"{stream.getvalue().rstrip()}")


def _run_monitor(args: argparse.Namespace) -> int:
    """``repro monitor``: one experiment under the live pipeline."""
    from .obs.alerts import load_rules
    from .obs.health import SloObjective
    from .obs.serve import run_monitor

    runner, _ = EXPERIMENTS[args.experiment]
    kwargs = _runner_kwargs(args, runner)
    # the live bus and recorder are process-wide, and the golden
    # live == post-hoc parity needs every decision in-process: force a
    # serial, cold (no warm-start forking), uncached run
    if "warm_start" in runner.__code__.co_varnames:
        kwargs["warm_start"] = False
    slos = []
    if args.slo_latency_p95 is not None:
        slos.append(SloObjective("latency_p95", "live.latency.p95",
                                 "<=", args.slo_latency_p95))
    if args.slo_throughput_min is not None:
        slos.append(SloObjective("throughput", "live.throughput",
                                 ">=", args.slo_throughput_min))
    rules = load_rules(args.rules) if args.rules is not None else None
    return run_monitor(
        runner, kwargs, title=args.experiment, host=args.host,
        port=args.port, window=args.window, rules=rules,
        slos=tuple(slos), jsonl=args.jsonl, refresh=args.refresh,
        dashboard=not args.no_dashboard, serve_grace=args.serve_grace,
        telemetry=args.telemetry, fail_on_alert=args.fail_on_alert)


def _run_bench(args: argparse.Namespace) -> int:
    from .runner import bench as bench_mod
    from .runner.cache import ResultCache

    names = None
    if args.experiments is not None:
        names = tuple(n.strip() for n in args.experiments.split(",")
                      if n.strip())
    out_dir = (Path(args.output_dir) if args.output_dir is not None
               else bench_mod.RESULTS_DIR)
    # only the per-entry wall times are cached (run_bench keys whole
    # suite entries); the experiments' inner cell fan-out stays uncached
    # so a timed run always measures real simulation work
    store = False if args.no_cache else ResultCache()
    report = bench_mod.run_bench(names=names, quick=args.quick,
                                 parallel=args.parallel, cache=store)
    baseline = bench_mod.load_baseline(out_dir, exclude_rev=report.rev)
    retried = 0
    if baseline is not None and args.retries > 0:
        # re-measure gate-tripping entries before printing or
        # persisting anything, so every output reflects final timings
        retried = bench_mod.retry_regressions(
            report, baseline, tolerance=args.tolerance,
            rounds=args.retries,
            cache=store if isinstance(store, ResultCache) else None)
    if args.json:
        import json
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(report.table())
        if retried:
            print(f"re-measured {retried} gate-tripping run(s) "
                  f"(--retries {args.retries})")
    if not args.no_write:
        if report.cached:
            if not args.json:
                print(f"snapshot not written: {len(report.cached)} "
                      f"entries replayed from the result cache "
                      f"(rerun with --no-cache to re-time)")
        else:
            path = bench_mod.write_report(report, out_dir)
            if not args.json:
                print(f"snapshot written to {path}")
    if baseline is None:
        if not args.json:
            print("no committed baseline to compare against "
                  "(this snapshot becomes the first)")
        return 0
    table, regressions = report.compare(baseline,
                                        tolerance=args.tolerance)
    if not args.json:
        print(table)
    if regressions:
        for message in regressions:
            print(f"regression: {message}", file=sys.stderr)
        return 1
    return 0


def _run_cache(args: argparse.Namespace) -> str:
    from .runner.cache import ResultCache

    store = ResultCache(directory=args.dir)
    if args.action == "clear":
        return (f"cleared {store.clear()} cached result(s) from "
                f"{store.directory}")
    counts = store.stats()
    rows = [[name, counts[name]]
            for name in ("hits", "misses", "stored", "entries", "bytes")]
    return render_table(["counter", "value"], rows,
                        title=f"result cache @ {counts['directory']}")


def _run_stats(args: argparse.Namespace) -> str:
    from .obs import METRICS_JSONL, load_metrics_jsonl, stats_table

    path = Path(args.path)
    if path.is_dir():
        path = path / METRICS_JSONL
    if not path.exists():
        raise ReproError(f"no metrics snapshot at {path}")
    return stats_table(load_metrics_jsonl(path), title=str(path),
                       tenant=args.tenant)


def _run_explain(args: argparse.Namespace) -> str:
    from .obs import DECISIONS_JSONL, explain_decision, load_decisions

    path = Path(args.path)
    if path.is_dir():
        path = path / DECISIONS_JSONL
    if not path.exists():
        raise ReproError(f"no decision log at {path}")
    decisions = load_decisions(path)
    if args.tenant is not None:
        decisions = [d for d in decisions if d.tenant == args.tenant]
    if args.tick is not None:
        decisions = [d for d in decisions if d.tick == args.tick]
        if not decisions:
            raise ReproError(f"no decision recorded for tick {args.tick}")
    if args.state is not None:
        decisions = [d for d in decisions if d.state == args.state]
    if args.action_only:
        decisions = [d for d in decisions if d.action is not None]
    total = len(decisions)
    if args.limit is not None:
        decisions = decisions[-args.limit:]
    if args.json:
        import dataclasses
        import json
        return "\n".join(json.dumps(dataclasses.asdict(d))
                         for d in decisions)
    if not decisions:
        return "(no matching decisions)"
    blocks = [explain_decision(d) for d in decisions]
    if total > len(decisions):
        blocks.insert(0, f"... {total - len(decisions)} earlier "
                         f"decisions elided (--limit)")
    return "\n\n".join(blocks)


def _run_compare(args: argparse.Namespace) -> str:
    rows = []
    for mode in (None, "dense", "sparse", "adaptive"):
        sut = build_system(engine=args.engine, mode=mode)
        sut.mark()
        workload = sut.run_clients(
            args.clients, repeat_stream(args.workload, args.repetitions))
        cores = (sut.controller.lonc.report().mean_cores
                 if sut.controller else float(sut.os.topology.n_cores))
        rows.append([sut.label, workload.throughput,
                     workload.mean_latency(), sut.ht_imc_ratio(),
                     sut.delta("migrations"), cores])
    return render_table(
        ["config", "queries/s", "mean lat s", "HT/IMC", "migrations",
         "mean cores"],
        rows,
        title=(f"{args.workload}, {args.clients} clients on "
               f"{args.engine}"))


#: strategy name -> (default th_min, default th_max, metric domain)
_VERIFY_STRATEGIES = {
    "cpu_load": (10.0, 70.0, (0.0, 100.0)),
    "useful_load": (10.0, 70.0, (0.0, 100.0)),
    "ht_imc": (0.1, 0.4, (0.0, 1.0)),
}


def _load_fixture(spec: str):
    """Load ``PATH[:FUNC]`` and call FUNC (default ``build``)."""
    path, func_name = Path(spec), "build"
    if not path.exists() and ":" in spec:
        path_text, _, func_name = spec.rpartition(":")
        path = Path(path_text)
    if not path.exists():
        raise ReproError(f"fixture file {spec!r} not found")
    module_spec = importlib.util.spec_from_file_location(
        "repro_verify_fixture", path)
    if module_spec is None or module_spec.loader is None:
        raise ReproError(f"cannot load fixture {path}")
    module = importlib.util.module_from_spec(module_spec)
    module_spec.loader.exec_module(module)
    builder = getattr(module, func_name or "build", None)
    if builder is None:
        raise ReproError(
            f"fixture {path} defines no {func_name or 'build'}()")
    return builder()


def _run_verify(args: argparse.Namespace) -> int:
    from .config import preflight_defects
    from .core.model import PerformanceModel
    from .verify import (Finding, VerificationReport, all_rules,
                         apply_baseline, load_baseline, write_baseline,
                         verify_files, verify_performance_model,
                         verify_source_tree)

    if args.list_rules:
        for entry in all_rules():
            zones = f"  zones={'/'.join(entry.zones)}" if entry.zones \
                else ""
            print(f"{entry.id}  [{entry.severity}]{zones}")
            print(f"    {entry.summary}")
            if entry.remedy:
                print(f"    fix: {entry.remedy}")
        return 0

    rules = None
    if args.rules:
        rules = [rule_id.strip() for chunk in args.rules
                 for rule_id in chunk.split(",") if rule_id.strip()]
        unknown = sorted(set(rules)
                         - {entry.id for entry in all_rules()})
        if unknown:
            print(f"error: unknown rule id(s): {', '.join(unknown)} "
                  f"(see --list-rules)", file=sys.stderr)
            return 2

    lint_only = args.lint_only or args.files is not None \
        or args.write_baseline is not None
    run_model = not args.no_model and not lint_only
    run_lint = not args.no_lint
    if args.all:
        run_model, run_lint = True, True

    reports = []
    if run_model:
        if args.fixture is not None:
            model = _load_fixture(args.fixture)
            reports.append(verify_performance_model(
                model, grid=args.grid,
                subject=f"fixture {args.fixture}"))
        else:
            names = (list(_VERIFY_STRATEGIES) if args.strategy == "all"
                     else [args.strategy])
            for name in names:
                th_min, th_max, domain = _VERIFY_STRATEGIES[name]
                if args.th_min is not None:
                    th_min, domain = args.th_min, None
                if args.th_max is not None:
                    th_max, domain = args.th_max, None
                subject = (f"{name}(th_min={th_min}, th_max={th_max}, "
                           f"n_total={args.n_total})")
                defects = preflight_defects(
                    th_min, th_max, args.min_cores, args.initial_cores,
                    args.n_total)
                if defects:
                    report = VerificationReport(subject=subject)
                    report.extend("model-config", [
                        Finding("model-config", message)
                        for message in defects])
                    reports.append(report)
                    continue
                model = PerformanceModel(
                    th_min, th_max, args.n_total,
                    n_min=args.min_cores,
                    initial_cores=args.initial_cores)
                if domain is not None:
                    model.metric_domain = domain
                reports.append(verify_performance_model(
                    model, grid=args.grid, subject=subject))
    if run_lint:
        if args.src is not None and not Path(args.src).is_dir():
            print(f"error: --src '{args.src}' is not a directory",
                  file=sys.stderr)
            return 2
        if args.files is not None:
            source_report = verify_files(args.files, root=args.src,
                                         rules=rules)
        else:
            source_report = verify_source_tree(args.src, rules=rules)
        if args.write_baseline is not None:
            count = write_baseline(source_report.findings,
                                   Path(args.write_baseline))
            print(f"wrote {count} baseline entr"
                  f"{'y' if count == 1 else 'ies'} to "
                  f"{args.write_baseline}")
            return 0
        if args.baseline is not None:
            entries = load_baseline(Path(args.baseline))
            source_report.findings = apply_baseline(
                source_report.findings, entries,
                baseline_name=args.baseline)
            if any(f.check == "baseline:stale-entry"
                   for f in source_report.findings):
                source_report.extend("baseline:stale-entry", [])
        reports.append(source_report)
    ok = all(report.ok for report in reports)
    if args.json:
        import json
        print(json.dumps(
            {"ok": ok, "reports": [r.as_dict() for r in reports]},
            indent=2))
    else:
        for report in reports:
            print(report.render())
        print(f"verification {'passed' if ok else 'FAILED'}")
    return 0 if ok else 1


def main(argv: list[str] | None = None) -> int:
    """Entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "list":
            rows = [[name, description]
                    for name, (_, description) in sorted(
                        EXPERIMENTS.items())]
            print(render_table(["experiment", "description"], rows))
        elif args.command == "run":
            print(_run_experiment(args))
        elif args.command == "monitor":
            return _run_monitor(args)
        elif args.command == "bench":
            return _run_bench(args)
        elif args.command == "cache":
            print(_run_cache(args))
        elif args.command == "stats":
            print(_run_stats(args))
        elif args.command == "explain":
            print(_run_explain(args))
        elif args.command == "verify":
            return _run_verify(args)
        else:
            print(_run_compare(args))
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


if __name__ == "__main__":  # pragma: no cover - module execution path
    sys.exit(main())
