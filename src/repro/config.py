"""Configuration dataclasses for the machine, the OS model and the mechanism.

Every tunable of the simulation lives here as a frozen dataclass so that an
experiment is fully described by plain data.  The defaults model the paper's
testbed: a 4-node Quad-Core AMD Opteron 8387 at 2.8 GHz with 6 MB of shared L3
per socket and HyperTransport 3.x interconnect (41.6 GB/s aggregate), running
a controller with CPU-load thresholds ``thmin=10`` / ``thmax=70``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import ConfigError
from .units import gb_per_s, ghz, kib, mib, msec


@dataclass(frozen=True)
class MachineConfig:
    """Static description of a NUMA machine.

    Attributes
    ----------
    n_sockets:
        Number of NUMA nodes; each node owns one memory bank and one L3.
    cores_per_socket:
        Cores per node (homogeneous).
    frequency_hz:
        Core clock; work is expressed in cycles and divided by this.
    page_bytes:
        Granularity of the memory model.  64 KiB keeps page sets small while
        still resolving the paper's locality effects (the real 4 KiB pages
        would only scale every page count by 16).
    l3_bytes:
        Shared last-level cache per socket.
    dram_bytes:
        Memory bank capacity per node.
    dram_latency:
        Seconds to service one page miss from the *local* bank.
    dram_bandwidth:
        Bytes/s one memory bank can stream to its local cores.
    remote_penalty:
        Multiplier on :attr:`dram_latency` per hop of NUMA distance.
    cache_line_bytes:
        Transfer granularity under the page model; with
        :attr:`memory_parallelism` it sets the latency-bound component of a
        page miss (``lines/page / MLP * latency``) — the part that makes a
        remote miss cost the *requesting core* more even when no link is
        saturated.
    memory_parallelism:
        Outstanding-miss overlap (MLP) of one core.
    ht_link_bandwidth:
        Bytes/s one HyperTransport link can carry in each direction.
    ht_aggregate_bandwidth:
        Bytes/s ceiling across all links (the paper's 41.6 GB/s figure).
    acp_watts:
        Average CPU Power per socket, for the energy model (paper §V-C3).
    idle_power_fraction:
        Fraction of ACP a socket burns when fully idle.
    ht_joules_per_bit:
        Energy per bit moved over the interconnect, after [Wang & Lee 2015].
    """

    n_sockets: int = 4
    cores_per_socket: int = 4
    frequency_hz: float = ghz(2.8)
    page_bytes: int = kib(64)
    l3_bytes: int = mib(6)
    dram_bytes: int = mib(16 * 1024)
    dram_latency: float = 100e-9
    dram_bandwidth: float = gb_per_s(6.4)
    remote_penalty: float = 1.6
    cache_line_bytes: int = 64
    memory_parallelism: float = 5.0
    ht_link_bandwidth: float = gb_per_s(10.4)
    ht_aggregate_bandwidth: float = gb_per_s(41.6)
    acp_watts: float = 75.0
    idle_power_fraction: float = 0.35
    ht_joules_per_bit: float = 1.4e-11

    def __post_init__(self) -> None:
        if self.n_sockets < 1:
            raise ConfigError("machine needs at least one socket")
        if self.cores_per_socket < 1:
            raise ConfigError("sockets need at least one core")
        if self.page_bytes <= 0 or self.page_bytes & (self.page_bytes - 1):
            raise ConfigError("page_bytes must be a positive power of two")
        if self.l3_bytes < self.page_bytes:
            raise ConfigError("L3 must hold at least one page")
        if self.frequency_hz <= 0:
            raise ConfigError("frequency must be positive")
        if not 0.0 <= self.idle_power_fraction <= 1.0:
            raise ConfigError("idle_power_fraction must be within [0, 1]")

    @property
    def n_cores(self) -> int:
        """Total cores in the machine (``ntotal`` in the paper)."""
        return self.n_sockets * self.cores_per_socket

    @property
    def l3_pages(self) -> int:
        """L3 capacity expressed in pages."""
        return self.l3_bytes // self.page_bytes


@dataclass(frozen=True)
class SchedulerConfig:
    """Tunables of the simulated OS scheduler (the CFS stand-in).

    Attributes
    ----------
    quantum:
        Time slice handed to the thread at the head of a run queue.
    balance_interval:
        Period of the load balancer that inspects queue lengths and steals
        tasks from the busiest core — the behaviour whose NUMA-obliviousness
        the paper exploits.
    imbalance_threshold:
        Minimum difference in queue length (busiest - idlest) that triggers
        a steal.
    migration_cost:
        Fixed overhead charged to a thread when it is moved between cores.
    minor_fault_cost:
        Kernel time charged to a thread per minor page fault (PTE setup);
        this is what makes the paper's fault-rate signal (Fig 4b) a real
        cost, not just a counter.
    context_switch_cost:
        Charged when a core dispatches a different thread than it last ran
        (register/TLB switch; cache warmth is modelled by the shared L3).
    wakeup_spread:
        When ``True`` new/woken threads are placed on the least-loaded core
        of the whole allowed mask (the kernel's spreading heuristic); when
        ``False`` they stay near their previous core.
    numa_balancing:
        Linux AutoNUMA: pages repeatedly accessed from a remote node are
        migrated to that node (off by default, like the paper's kernel
         3.16 configuration; an ablation turns it on).
    numa_migration_streak:
        Consecutive remote accesses from the same node before AutoNUMA
        moves the page.
    """

    quantum: float = msec(4)
    balance_interval: float = msec(20)
    imbalance_threshold: int = 2
    migration_cost: float = msec(0.05)
    minor_fault_cost: float = 3e-6
    context_switch_cost: float = 3e-6
    wakeup_spread: bool = True
    numa_balancing: bool = False
    numa_migration_streak: int = 3

    def __post_init__(self) -> None:
        if self.numa_migration_streak < 1:
            raise ConfigError("numa_migration_streak must be >= 1")
        if self.quantum <= 0:
            raise ConfigError("quantum must be positive")
        if self.balance_interval <= 0:
            raise ConfigError("balance_interval must be positive")
        if self.imbalance_threshold < 1:
            raise ConfigError("imbalance_threshold must be >= 1")
        if self.migration_cost < 0:
            raise ConfigError("migration_cost cannot be negative")
        if self.minor_fault_cost < 0:
            raise ConfigError("minor_fault_cost cannot be negative")
        if self.context_switch_cost < 0:
            raise ConfigError("context_switch_cost cannot be negative")


@dataclass(frozen=True)
class ControllerConfig:
    """Tunables of the elastic allocation mechanism (paper §III-IV).

    Attributes
    ----------
    interval:
        Period of the rule-condition-action pipeline; each tick samples the
        counters and fires at most one allocate/release transition.
    initial_cores:
        Cores exposed to the OS before the first tick (paper: 1).
    min_cores:
        Transition ``t7`` bound: never release below this.

    The ``thmin``/``thmax`` thresholds are *not* configured here: they
    live on the :class:`~repro.core.strategies.TransitionStrategy` (each
    strategy owns its metric's domain — percentages for CPU load, ratios
    for HT/IMC) and :func:`preflight_defects` reads them from there.
    """

    interval: float = msec(20)
    initial_cores: int = 1
    min_cores: int = 1

    def __post_init__(self) -> None:
        if self.interval <= 0:
            raise ConfigError("controller interval must be positive")
        if self.initial_cores < 1:
            raise ConfigError("initial_cores must be >= 1")
        if self.min_cores < 1:
            raise ConfigError("min_cores must be >= 1")
        if self.initial_cores < self.min_cores:
            raise ConfigError("initial_cores must be >= min_cores")


def preflight_defects(th_min: float, th_max: float, min_cores: int,
                      initial_cores: int, n_total: int) -> list[str]:
    """Name every controller-vs-machine contradiction, without raising.

    Used by the controller's pre-flight check (and ``repro verify``) so a
    defective configuration can be reported as a
    :class:`~repro.errors.ModelConfigurationError` at ``start()`` time with
    *all* defects listed, instead of failing on the first one mid-build.
    """
    defects = []
    if th_min >= th_max:
        defects.append(
            f"thresholds inverted: th_min={th_min} >= th_max={th_max}")
    if min_cores < 1:
        defects.append(f"min_cores={min_cores} must be >= 1")
    if min_cores > n_total:
        defects.append(
            f"min_cores={min_cores} exceeds the machine's "
            f"n_total={n_total}")
    if initial_cores > n_total:
        defects.append(
            f"initial_cores={initial_cores} exceeds the machine's "
            f"n_total={n_total}")
    if initial_cores < min_cores:
        defects.append(
            f"initial_cores={initial_cores} below min_cores={min_cores}")
    return defects


@dataclass(frozen=True)
class EngineConfig:
    """Behavioural knobs of the simulated DBMS engines.

    Attributes
    ----------
    workers_follow_mask:
        MonetDB spawns one worker per core it can see; under a cpuset mask
        the visible count shrinks.  Set ``False`` to always spawn one worker
        per physical core regardless of the mask.
    loader_node:
        NUMA node on which the single-threaded loader first-touches base
        table pages (MonetDB concentrates data on one node; the paper's
        Fig 18(a) shows socket S0).  ``None`` selects round-robin placement
        across nodes, which is what the NUMA-aware engine uses.
    numa_aware:
        When ``True`` workers are pinned to the node owning their data
        partition (the SQL Server model) instead of being placed by the OS.
    managed_threads:
        When ``True`` (databases) workers live in the DB cgroup and obey
        the elastic mechanism's cpuset.  ``False`` models a co-located
        application outside the cgroup (the paper's mixed OLAP/OLTP
        future-work scenario): its threads may use any core, including
        the ones the mechanism released.
    """

    workers_follow_mask: bool = True
    loader_node: int | None = 0
    numa_aware: bool = False
    managed_threads: bool = True
    #: upper bound on workers per query (None = per-core); point-query
    #: applications set 1
    max_workers: int | None = None
    #: feed-forward extension (paper §VII): size each query's worker
    #: pool to its predicate-shaped footprint instead of one-per-core
    predicate_aware: bool = False


@dataclass(frozen=True)
class ExperimentConfig:
    """Bundle of all configuration needed to run one experiment."""

    machine: MachineConfig = field(default_factory=MachineConfig)
    scheduler: SchedulerConfig = field(default_factory=SchedulerConfig)
    controller: ControllerConfig = field(default_factory=ControllerConfig)
    engine: EngineConfig = field(default_factory=EngineConfig)
    seed: int = 1729
