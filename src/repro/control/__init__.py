"""The staged control plane: Sense -> Decide -> Plan -> Actuate.

See :mod:`repro.control.stages` for the stage interfaces and default
implementations, and :mod:`repro.control.actuators` for the dry-run and
cooldown actuator decorators.  ``docs/control_plane.md`` has the full
stage diagram and the core-lease semantics.
"""

from .actuators import CooldownActuator, DryRunActuator
from .stages import (NO_CHANGE, Actuator, CoreDelta, CoreView,
                     DecisionPolicy, LeaseActuator, ModelPolicy,
                     ModePlanner, MonitorSensor, Planner, Sensor,
                     single_step)

__all__ = [
    "Actuator",
    "CooldownActuator",
    "CoreDelta",
    "CoreView",
    "DecisionPolicy",
    "DryRunActuator",
    "LeaseActuator",
    "ModelPolicy",
    "ModePlanner",
    "MonitorSensor",
    "NO_CHANGE",
    "Planner",
    "Sensor",
    "single_step",
]
