"""Actuator decorators: dry-run and cooldown behaviour for stage 4.

Both wrap the :class:`~repro.control.stages.Actuator` protocol, so they
compose with the real :class:`~repro.control.stages.LeaseActuator` and
with each other.  The controller re-syncs its PrT model to the actuator's
view after every ``apply``, which is what makes suppression safe: a
suppressed or simulated change never leaks into the model's ``Provision``
marking.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import AllocationError
from ..opsys.inventory import DEFAULT_TENANT
from .stages import NO_CHANGE, Actuator, CoreDelta

if TYPE_CHECKING:
    from ..opsys.system import OperatingSystem


class DryRunActuator:
    """What-if mode: accept every delta into a virtual holding set.

    Nothing touches the inventory, the cpusets or the trace — the
    machine keeps running unmanaged — but the controller's model, ticks
    and decisions evolve exactly as if the deltas had been applied.  The
    planned history is kept in :attr:`planned` (one entry per non-empty
    delta) for inspection.
    """

    def __init__(self, os: "OperatingSystem",
                 tenant: str = DEFAULT_TENANT):
        self.os = os
        self.tenant = tenant
        self._held: set[int] = set()
        #: every non-empty delta the controller would have applied
        self.planned: list[CoreDelta] = []

    def seed(self, cores: list[int]) -> None:
        self._held = set(cores)

    def apply(self, delta: CoreDelta) -> CoreDelta:
        # validate the whole delta before touching the holding set, so
        # a rejected delta leaves the what-if state unchanged
        for core in delta.allocate:
            if core in self._held:
                raise AllocationError(
                    f"dry-run already holds core {core}")
        for core in delta.release:
            if core not in self._held:
                raise AllocationError(
                    f"dry-run does not hold core {core}")
        if delta:
            self.planned.append(delta)
        self._held.update(delta.allocate)
        self._held.difference_update(delta.release)
        return delta

    def own(self) -> frozenset[int]:
        return frozenset(self._held)

    def foreign(self) -> frozenset[int]:
        # dry-run plans against real foreign leases so the what-if
        # staircase stays feasible on the shared machine
        return self.os.inventory.unavailable_to(self.tenant)

    @property
    def n_allocated(self) -> int:
        return len(self._held)


class CooldownActuator:
    """Hysteresis: after an applied change, hold the mask for a while.

    A non-empty delta arriving within ``cooldown_ticks`` ticks of the
    last applied change is suppressed (returned as the empty delta and
    counted in :attr:`suppressed`); the controller then re-syncs its
    model to the unchanged holdings, so the request is naturally
    re-issued on a later tick if the pressure persists.  ``apply`` must
    be called every tick — empty deltas advance the clock.
    """

    def __init__(self, inner: Actuator, cooldown_ticks: int):
        if cooldown_ticks < 0:
            raise AllocationError("cooldown_ticks must be >= 0")
        self.inner = inner
        self.cooldown_ticks = cooldown_ticks
        self._tick = 0
        self._last_change: int | None = None
        #: deltas swallowed by the cooldown window
        self.suppressed = 0

    def seed(self, cores: list[int]) -> None:
        self.inner.seed(cores)

    def apply(self, delta: CoreDelta) -> CoreDelta:
        self._tick += 1
        if (delta and self._last_change is not None
                and self._tick - self._last_change <= self.cooldown_ticks):
            self.suppressed += 1
            return NO_CHANGE
        applied = self.inner.apply(delta)
        if applied:
            self._last_change = self._tick
        return applied

    def own(self) -> frozenset[int]:
        return self.inner.own()

    def foreign(self) -> frozenset[int]:
        return self.inner.foreign()

    @property
    def n_allocated(self) -> int:
        return self.inner.n_allocated
