"""The four stages of the control plane: Sense -> Decide -> Plan -> Actuate.

The paper's rule-condition-action pipeline (§III) maps onto four small
interfaces:

``Sensor``
    *rule* — observe the machine and produce a
    :class:`~repro.core.monitor.MonitorSample`
    (:class:`MonitorSensor` wraps the mpstat/likwid stand-in).
``DecisionPolicy``
    *condition* — reduce the sample to the strategy's metric and classify
    it through the PrT net (:class:`ModelPolicy` wraps
    :class:`~repro.core.model.PerformanceModel` +
    :class:`~repro.core.strategies.TransitionStrategy`).
``Planner``
    *where* — turn the abstract ``allocate``/``release`` action into a
    concrete :class:`CoreDelta` naming cores (:class:`ModePlanner` wraps
    an :class:`~repro.core.modes.AllocationMode`).
``Actuator``
    *apply* — enact the delta against the machine
    (:class:`LeaseActuator` goes through the
    :class:`~repro.opsys.inventory.CoreInventory`; the decorators in
    :mod:`repro.control.actuators` add dry-run and cooldown behaviour).

The :class:`~repro.core.controller.ElasticController` is a thin
composition of one instance of each.  Stages communicate through values
(sample, metric, chain, delta), never by reaching into each other — which
is what lets two controllers share one machine: each one's planner sees
the cores *other* tenants hold (:meth:`CoreView.foreign`) and plans
around them, and each one's actuator edits only its own tenant's leases.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Protocol

from ..errors import AllocationError, LeaseError
from ..obs.live import live_bus
from ..opsys.inventory import DEFAULT_TENANT
from ..sim.tracing import CoreAllocation

if TYPE_CHECKING:
    from ..core.model import PerformanceModel, TransitionChain
    from ..core.modes import AllocationMode
    from ..core.monitor import Monitor, MonitorSample
    from ..core.strategies import TransitionStrategy
    from ..opsys.inventory import CoreInventory
    from ..opsys.system import OperatingSystem


@dataclass(frozen=True, slots=True)
class CoreDelta:
    """A planned (or applied) change to one tenant's core holdings."""

    allocate: tuple[int, ...] = ()
    release: tuple[int, ...] = ()

    def __bool__(self) -> bool:
        return bool(self.allocate or self.release)

    @property
    def first_core(self) -> int | None:
        """The single core a one-step delta names (``None`` when empty)."""
        if self.allocate:
            return self.allocate[0]
        if self.release:
            return self.release[0]
        return None


#: the empty delta: nothing to change this tick
NO_CHANGE = CoreDelta()


# ----------------------------------------------------------------------
# stage interfaces
# ----------------------------------------------------------------------

class Sensor(Protocol):
    """Stage 1 — observe the machine."""

    def prime(self) -> None:
        """Take initial snapshots without producing a sample."""
        ...

    def sense(self) -> "MonitorSample":
        """Observe the window since the previous call."""
        ...


class DecisionPolicy(Protocol):
    """Stage 2 — classify an observation into a transition chain."""

    def metric(self, sample: "MonitorSample") -> float:
        """Reduce a sample to the scalar the model consumes."""
        ...

    def classify(self, metric: float) -> "TransitionChain":
        """Fire the model once and report the chain."""
        ...


class Planner(Protocol):
    """Stage 3 — turn an abstract action into concrete cores."""

    def refresh(self) -> None:
        """Update placement inputs (e.g. the node priority queue)."""
        ...

    def initial_mask(self, n_cores: int) -> list[int]:
        """The cores to seed a fresh controller with."""
        ...

    def plan(self, action: str | None) -> CoreDelta:
        """Name the cores for ``"allocate"`` / ``"release"`` / ``None``."""
        ...


class CoreView(Protocol):
    """What a planner may know about core ownership."""

    def own(self) -> frozenset[int]:
        """Cores this tenant currently holds."""
        ...

    def foreign(self) -> frozenset[int]:
        """Cores held by other tenants (off-limits for planning)."""
        ...


class Actuator(Protocol):
    """Stage 4 — enact a delta (also a :class:`CoreView` for planners)."""

    def seed(self, cores: list[int]) -> None:
        """Apply the initial mask in one atomic edit."""
        ...

    def apply(self, delta: CoreDelta) -> CoreDelta:
        """Enact ``delta``; return the part that actually took effect."""
        ...

    def own(self) -> frozenset[int]: ...

    def foreign(self) -> frozenset[int]: ...

    @property
    def n_allocated(self) -> int:
        """Cores this actuator considers held."""
        ...


# ----------------------------------------------------------------------
# default implementations
# ----------------------------------------------------------------------

class MonitorSensor:
    """Stage 1 default: delegate to a :class:`~repro.core.monitor.Monitor`."""

    def __init__(self, monitor: "Monitor"):
        self.monitor = monitor

    def prime(self) -> None:
        self.monitor.prime()

    def sense(self) -> "MonitorSample":
        return self.monitor.sample()


class ModelPolicy:
    """Stage 2 default: strategy metric + PrT-net classification."""

    def __init__(self, model: "PerformanceModel",
                 strategy: "TransitionStrategy"):
        self.model = model
        self.strategy = strategy

    def metric(self, sample: "MonitorSample") -> float:
        return self.strategy.metric(sample)

    def classify(self, metric: float) -> "TransitionChain":
        return self.model.run_cycle(metric)


class ModePlanner:
    """Stage 3 default: place cores with an allocation mode.

    The planner consults a :class:`CoreView` (in practice the actuator)
    for current holdings, and — unlike the pre-refactor controller —
    feeds the mode the *union* of the tenant's own cores and everything
    foreign, so the next allocation never lands on a core another tenant
    holds.  With a single tenant the foreign set is empty and the mode
    sees exactly what it used to.
    """

    def __init__(self, mode: "AllocationMode", view: CoreView,
                 n_cores: int):
        self.mode = mode
        self.view = view
        self.n_cores = n_cores
        self._refresh_hook = None

    def set_refresh(self, hook) -> None:
        """Install the priority-queue update (adaptive mode only)."""
        self._refresh_hook = hook

    def refresh(self) -> None:
        if self._refresh_hook is not None:
            self._refresh_hook()

    def initial_mask(self, n_cores: int) -> list[int]:
        foreign = self.view.foreign()
        if not foreign:
            return self.mode.initial_mask(n_cores)
        # grow from empty, skipping foreign leases
        mask: list[int] = []
        taken = set(foreign)
        for _ in range(n_cores):
            core = self.mode.next_allocation(frozenset(taken))
            taken.add(core)
            mask.append(core)
        return mask

    def plan(self, action: str | None) -> CoreDelta:
        if action == "allocate":
            own = self.view.own()
            blocked = own | self.view.foreign()
            if len(blocked) >= self.n_cores:
                # starved: every core is held somewhere.  The model's t5
                # guard only knows this tenant's count, so under
                # contention this is a normal outcome, not an error —
                # the controller re-syncs the model to reality.
                return NO_CHANGE
            return CoreDelta(allocate=(self.mode.next_allocation(blocked),))
        if action == "release":
            return CoreDelta(
                release=(self.mode.next_release(self.view.own()),))
        return NO_CHANGE


class LeaseActuator:
    """Stage 4 default: apply deltas as core leases.

    Every edit goes through the system's
    :class:`~repro.opsys.inventory.CoreInventory`, which guarantees the
    core is not held by another tenant and updates the tenant's cpuset —
    the mask the scheduler enforces.  Each applied core emits the same
    :class:`~repro.sim.tracing.CoreAllocation` record the pre-refactor
    controller emitted, in the same order.
    """

    def __init__(self, os: "OperatingSystem", tenant: str = DEFAULT_TENANT):
        self.os = os
        self.tenant = tenant
        self.inventory: "CoreInventory" = os.inventory
        self.cpuset = self.inventory.cpuset_of(tenant)

    def seed(self, cores: list[int]) -> None:
        self.inventory.seed(self.tenant, cores)
        for core in cores:
            self._trace(core, allocated=True)
        self._emit_live()

    # The actuator's whole job is to transfer leases to the tenant, so
    # they legitimately outlive the call and cannot balance statically:
    def apply(self, delta: CoreDelta) -> CoreDelta:  # verify: allow=flow:lease-unpaired
        acquired: list[int] = []
        try:
            for core in delta.allocate:
                self.inventory.acquire(self.tenant, core)
                acquired.append(core)
                self._trace(core, allocated=True)
        except LeaseError:
            # roll back the partial acquisition so a rejected delta
            # leaves the inventory (and the trace) exactly as it was
            for core in reversed(acquired):
                self.inventory.release(self.tenant, core)
                self._trace(core, allocated=False)
            raise
        for core in delta.release:
            # a failed release keeps that core leased; the next Sense
            # re-syncs the model from the cpuset, so nothing dangles
            self.inventory.release(self.tenant, core)  # verify: allow=flow:lease-rollback
            self._trace(core, allocated=False)
        if delta:
            self._emit_live()
        return delta

    def own(self) -> frozenset[int]:
        return self.cpuset.allowed()

    def foreign(self) -> frozenset[int]:
        return self.inventory.unavailable_to(self.tenant)

    @property
    def n_allocated(self) -> int:
        return len(self.cpuset)

    def _trace(self, core: int, allocated: bool) -> None:
        self.os.tracer.emit(CoreAllocation(
            time=self.os.now, core_id=core,
            node_id=self.os.topology.node_of_core(core),
            allocated=allocated, n_allocated=len(self.cpuset)))

    def _emit_live(self) -> None:
        """Stream the tenant's new core count to a live bus, if any."""
        bus = live_bus()
        if bus is not None:
            bus.on_core_change(self.os.now, self.tenant,
                               len(self.cpuset))


def single_step(delta: CoreDelta) -> CoreDelta:
    """Guard: the pipeline plans at most one core per tick (paper §III)."""
    if len(delta.allocate) + len(delta.release) > 1:
        raise AllocationError(
            f"the control plane moves one core per tick, got {delta}")
    return delta
