"""The paper's contribution: the elastic multi-core allocation mechanism.

Layering (paper §III-IV):

* :mod:`repro.core.petrinet` — a generic Predicate/Transition net with
  valued tokens, guards and incidence matrices;
* :mod:`repro.core.model` — the concrete 5-place / 8-transition performance
  model (``Checks``, ``Idle``, ``Stable``, ``Overload``, ``Provision``;
  ``t0..t7``) built from the paper's three sub-nets;
* :mod:`repro.core.strategies` — what the ``Checks`` token carries: CPU load
  (``thmin=10, thmax=70``) or the HT/IMC traffic ratio (``0.1 / 0.4``);
* :mod:`repro.core.modes` — *where* to allocate/release: Sparse, Dense and
  Adaptive Priority (backed by :mod:`repro.core.priority`);
* :mod:`repro.core.controller` — the rule-condition-action pipeline that
  samples the monitor, fires the net and edits the cpuset.
"""

from .controller import ElasticController
from .lonc import LoncReport, LoncTracker, lonc_satisfied
from .model import PerformanceModel, TransitionChain
from .modes import (AdaptivePriorityMode, AllocationMode, DenseMode,
                    SparseMode, make_mode)
from .monitor import Monitor, MonitorSample
from .petrinet import Arc, PetriNet, Place, Transition
from .priority import NodePriorityQueue
from .feedforward import PredicateAwareSizer
from .sla import SlaGovernor
from .strategies import (CpuLoadStrategy, HtImcStrategy, TransitionStrategy,
                         make_strategy)

__all__ = [
    "Place", "Arc", "Transition", "PetriNet",
    "PerformanceModel", "TransitionChain",
    "TransitionStrategy", "CpuLoadStrategy", "HtImcStrategy",
    "make_strategy",
    "AllocationMode", "SparseMode", "DenseMode", "AdaptivePriorityMode",
    "make_mode",
    "NodePriorityQueue",
    "Monitor", "MonitorSample",
    "lonc_satisfied", "LoncTracker", "LoncReport",
    "ElasticController",
    "SlaGovernor",
    "PredicateAwareSizer",
]
