"""The elastic controller: the rule-condition-action pipeline (paper §III).

One instance supports all DBMS clients (as the paper notes in §V).  Every
``interval`` seconds of simulated time it:

1. **rule** — samples the monitor (mpstat/likwid stand-in) and extracts the
   strategy's metric;
2. **condition** — deposits the metric token into the PrT model's ``Checks``
   place and fires transitions until the token returns;
3. **action** — if ``t5`` fired, allocates one core on the node the
   allocation mode names; if ``t4`` fired, releases one; the cpuset edit is
   what the OS scheduler sees.

The controller keeps ticking while database threads are live and parks
itself otherwise (restart with :meth:`kick` when a new workload begins, or
construct with ``keepalive=True`` to tick forever until :meth:`stop`).
"""

from __future__ import annotations

from ..config import ControllerConfig, preflight_defects
from ..errors import AllocationError, ModelConfigurationError
from ..opsys.system import OperatingSystem
from ..sim.tracing import ControllerTick, CoreAllocation, TransitionRecord
from .lonc import LoncTracker
from .model import PerformanceModel, TransitionChain
from .modes import AdaptivePriorityMode, AllocationMode
from .monitor import Monitor
from .strategies import TransitionStrategy


class ElasticController:
    """The mechanism of the paper, wired to one simulated machine."""

    def __init__(self, os: OperatingSystem, mode: AllocationMode,
                 strategy: TransitionStrategy,
                 config: ControllerConfig | None = None,
                 keepalive: bool = False, verify_model: bool = False):
        self.os = os
        self.mode = mode
        self.strategy = strategy
        base = config or ControllerConfig()
        self.verify_model = verify_model
        # a contradictory configuration is held, not raised: start()
        # reports every defect at once as a ModelConfigurationError
        self._defects = preflight_defects(
            strategy.th_min, strategy.th_max, base.min_cores,
            base.initial_cores, os.topology.n_cores)
        self.model: PerformanceModel | None
        if self._defects:
            self.config = base
            self.model = None
        else:
            # thresholds live on the strategy; fold them into the copy
            self.config = ControllerConfig(
                interval=base.interval,
                th_min=strategy.th_min, th_max=strategy.th_max,
                initial_cores=base.initial_cores,
                min_cores=base.min_cores)
            self.model = PerformanceModel(
                th_min=strategy.th_min, th_max=strategy.th_max,
                n_total=os.topology.n_cores,
                n_min=self.config.min_cores,
                initial_cores=self.config.initial_cores)
        self.keepalive = keepalive
        self.monitor = Monitor(os)
        self.lonc = LoncTracker(strategy.th_min, strategy.th_max)
        self.ticks = 0
        self._started = False
        self._stopped = False
        self._tick_scheduled = False

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Apply the initial mask and schedule the first tick.

        Pre-flight: a contradictory configuration (inverted thresholds,
        ``min_cores > n_total`` ...) raises
        :class:`~repro.errors.ModelConfigurationError`; with
        ``verify_model=True`` the full static analysis of
        :func:`repro.verify.verify_performance_model` runs first and any
        finding raises a :class:`~repro.errors.VerificationError`.
        """
        if self._started:
            raise AllocationError("controller already started")
        if self._defects:
            raise ModelConfigurationError(
                "refusing to start: " + "; ".join(self._defects))
        if self.verify_model:
            # local import: repro.verify imports from repro.core
            from ..verify import raise_on_findings, verify_performance_model
            raise_on_findings(verify_performance_model(self.model))
        self._started = True
        self._refresh_priority()
        initial = self.mode.initial_mask(self.config.initial_cores)
        self.os.cpuset.set_mask(initial)
        for core in initial:
            self._trace_mask_change(core, allocated=True)
        self.monitor.prime()
        self._schedule_tick()

    def stop(self) -> None:
        """Stop ticking permanently."""
        self._stopped = True

    def kick(self) -> None:
        """Re-arm the tick loop after the controller parked itself."""
        if self._started and not self._stopped:
            self._schedule_tick()

    @property
    def n_allocated(self) -> int:
        """Cores currently handed to the OS."""
        return len(self.os.cpuset)

    # ------------------------------------------------------------------
    # the pipeline
    # ------------------------------------------------------------------

    def _schedule_tick(self) -> None:
        if not self._tick_scheduled:
            self._tick_scheduled = True
            self.os.sim.schedule(self.config.interval, self._tick)

    def _tick(self) -> None:
        self._tick_scheduled = False
        if self._stopped:
            return
        chain = self.run_pipeline_once()
        self.os.tracer.emit(ControllerTick(
            time=self.os.now, metric=chain.metric,
            state=chain.state, n_allocated=self.n_allocated))
        if self.keepalive or self.os.scheduler.live_threads() > 0:
            self._schedule_tick()

    def run_pipeline_once(self) -> TransitionChain:
        """One full rule-condition-action pass (public for tests/benches)."""
        sample = self.monitor.sample()
        metric = self.strategy.metric(sample)
        self._refresh_priority()
        chain = self.model.run_cycle(metric)
        self.lonc.record(metric, self.n_allocated)
        if chain.action == "allocate":
            self._allocate_one()
        elif chain.action == "release":
            self._release_one()
        self.ticks += 1
        self.os.tracer.emit(TransitionRecord(
            time=self.os.now, label=chain.label, state=chain.state,
            value=metric, cores_after=self.n_allocated))
        return chain

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------

    def _refresh_priority(self) -> None:
        if isinstance(self.mode, AdaptivePriorityMode):
            self.mode.queue.update(
                self.os.scheduler.threads,
                fallback=self.os.machine.memory.placement_histogram())

    def _allocate_one(self) -> None:
        allocated = self.os.cpuset.allowed()
        core = self.mode.next_allocation(allocated)
        self.os.cpuset.allow(core)
        self._sync_model()
        self._trace_mask_change(core, allocated=True)

    def _release_one(self) -> None:
        allocated = self.os.cpuset.allowed()
        core = self.mode.next_release(allocated)
        self.os.cpuset.disallow(core)
        self._sync_model()
        self._trace_mask_change(core, allocated=False)

    def _sync_model(self) -> None:
        # the PrT net's Provision token and the cpuset must agree
        if self.model.nalloc != len(self.os.cpuset):
            self.model.sync_nalloc(len(self.os.cpuset))

    def _trace_mask_change(self, core: int, allocated: bool) -> None:
        self.os.tracer.emit(CoreAllocation(
            time=self.os.now, core_id=core,
            node_id=self.os.topology.node_of_core(core),
            allocated=allocated, n_allocated=self.n_allocated))
