"""The elastic controller: the rule-condition-action pipeline (paper §III).

One instance governs one tenant (one DBMS cgroup).  Every ``interval``
seconds of simulated time it runs the staged control plane of
:mod:`repro.control`:

1. **Sense** — the :class:`~repro.control.MonitorSensor` samples the
   monitor (mpstat/likwid stand-in);
2. **Decide** — the :class:`~repro.control.ModelPolicy` extracts the
   strategy's metric, deposits it into the PrT model's ``Checks`` place
   and fires transitions until the token returns;
3. **Plan** — the :class:`~repro.control.ModePlanner` turns the fired
   ``t5``/``t4`` action into a concrete
   :class:`~repro.control.CoreDelta` on the node the allocation mode
   names, avoiding cores other tenants hold;
4. **Actuate** — the :class:`~repro.control.LeaseActuator` applies the
   delta through the system's core-lease inventory; the cpuset edit is
   what the OS scheduler sees.  ``dry_run=True`` swaps in a
   :class:`~repro.control.DryRunActuator` (plans recorded, machine
   untouched) and ``cooldown_ticks`` wraps the actuator in a
   :class:`~repro.control.CooldownActuator` (hysteresis after a change).

The controller keeps ticking while database threads are live and parks
itself otherwise (restart with :meth:`kick` when a new workload begins, or
construct with ``keepalive=True`` to tick forever until :meth:`stop`).
Lifecycle is an explicit state machine: ``new -> running -> stopped``.
"""

from __future__ import annotations

from ..config import ControllerConfig, preflight_defects
from ..control.actuators import CooldownActuator, DryRunActuator
from ..control.stages import (Actuator, DecisionPolicy, LeaseActuator,
                              ModelPolicy, ModePlanner, MonitorSensor,
                              Planner, Sensor, single_step)
from ..errors import AllocationError, ModelConfigurationError
from ..obs.live import live_bus
from ..obs.metrics import VALUE_BUCKETS
from ..obs.provenance import Decision
from ..opsys.inventory import DEFAULT_TENANT
from ..opsys.system import OperatingSystem
from ..sim.tracing import ControllerTick, TransitionRecord
from .lonc import LoncTracker
from .model import PerformanceModel, TransitionChain
from .modes import AdaptivePriorityMode, AllocationMode
from .monitor import Monitor
from .strategies import TransitionStrategy


class ElasticController:
    """The mechanism of the paper, wired to one tenant of one machine."""

    def __init__(self, os: OperatingSystem, mode: AllocationMode,
                 strategy: TransitionStrategy,
                 config: ControllerConfig | None = None,
                 keepalive: bool = False, verify_model: bool = False,
                 tenant: str = DEFAULT_TENANT, dry_run: bool = False,
                 cooldown_ticks: int = 0,
                 sensor: Sensor | None = None,
                 policy: DecisionPolicy | None = None,
                 planner: Planner | None = None,
                 actuator: Actuator | None = None):
        self.os = os
        self.mode = mode
        self.strategy = strategy
        self.config = config or ControllerConfig()
        self.tenant = tenant
        self.verify_model = verify_model
        # a contradictory configuration is held, not raised: start()
        # reports every defect at once as a ModelConfigurationError
        self._defects = preflight_defects(
            strategy.th_min, strategy.th_max, self.config.min_cores,
            self.config.initial_cores, os.topology.n_cores)
        self.model: PerformanceModel | None
        if self._defects:
            self.model = None
        else:
            self.model = PerformanceModel(
                th_min=strategy.th_min, th_max=strategy.th_max,
                n_total=os.topology.n_cores,
                n_min=self.config.min_cores,
                initial_cores=self.config.initial_cores)
        self.keepalive = keepalive
        self.lonc = LoncTracker(strategy.th_min, strategy.th_max)
        self.ticks = 0
        self._lifecycle = "new"
        self._tick_scheduled = False
        # --- the four stages (injectable for tests and extensions) ---
        if actuator is None:
            if dry_run:
                actuator = DryRunActuator(os, tenant)
            else:
                actuator = LeaseActuator(os, tenant)
            if cooldown_ticks > 0:
                actuator = CooldownActuator(actuator, cooldown_ticks)
        self.actuator: Actuator = actuator
        if tenant == DEFAULT_TENANT:
            self.monitor = Monitor(os)
        else:
            self.monitor = Monitor(
                os, cpuset=os.inventory.cpuset_of(tenant), tenant=tenant)
        self.sensor: Sensor = sensor or MonitorSensor(self.monitor)
        if policy is None and self.model is not None:
            policy = ModelPolicy(self.model, strategy)
        self._policy = policy
        if planner is None:
            planner = ModePlanner(mode, self.actuator,
                                  os.topology.n_cores)
            planner.set_refresh(self._refresh_priority)
        self.planner: Planner = planner
        # telemetry: instruments bound once; all no-ops when the
        # system's recorder is the null one.  The default tenant keeps
        # the legacy names; other tenants get their own namespace.
        self.obs = os.obs
        metrics = self.obs.metrics
        infix = "" if tenant == DEFAULT_TENANT else f"{tenant}."
        self._c_ticks = metrics.counter(f"controller.{infix}ticks")
        self._c_allocations = metrics.counter(
            f"controller.{infix}allocations")
        self._c_releases = metrics.counter(f"controller.{infix}releases")
        self._g_cores = metrics.gauge(
            f"controller.{infix}cores_allocated")
        self._h_metric = metrics.histogram(f"controller.{infix}metric",
                                           VALUE_BUCKETS)
        self._c_fired = {
            name: metrics.counter(f"petrinet.{infix}fired.{name}")
            for name in ("t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7")}

    @property
    def policy(self) -> DecisionPolicy:
        """Stage 2 (absent only while the config is defective)."""
        if self._policy is None:
            raise ModelConfigurationError(
                "no decision policy: " + "; ".join(self._defects))
        return self._policy

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    @property
    def lifecycle(self) -> str:
        """``"new"``, ``"running"`` or ``"stopped"``."""
        return self._lifecycle

    def start(self) -> None:
        """Seed the initial leases and schedule the first tick.

        Pre-flight: a contradictory configuration (inverted thresholds,
        ``min_cores > n_total`` ...) raises
        :class:`~repro.errors.ModelConfigurationError`; with
        ``verify_model=True`` the full static analysis of
        :func:`repro.verify.verify_performance_model` runs first and any
        finding raises a :class:`~repro.errors.VerificationError`.
        """
        if self._lifecycle == "running":
            raise AllocationError("controller already started")
        if self._lifecycle == "stopped":
            raise AllocationError(
                "controller already stopped; construct a new one")
        if self._defects:
            raise ModelConfigurationError(
                "refusing to start: " + "; ".join(self._defects))
        if self.verify_model:
            # local import: repro.verify imports from repro.core
            from ..verify import raise_on_findings, verify_performance_model
            raise_on_findings(verify_performance_model(self.model))
        self._lifecycle = "running"
        self.planner.refresh()
        initial = self.planner.initial_mask(self.config.initial_cores)
        self.actuator.seed(initial)
        self._g_cores.set(self.n_allocated)
        self.sensor.prime()
        self._schedule_tick()

    def stop(self) -> None:
        """Stop ticking permanently (idempotent)."""
        self._lifecycle = "stopped"

    def kick(self) -> None:
        """Re-arm the tick loop after the controller parked itself.

        A no-op once stopped; calling it before :meth:`start` is a
        programming error and raises.
        """
        if self._lifecycle == "new":
            raise AllocationError("cannot kick a controller before start()")
        if self._lifecycle == "running":
            self._schedule_tick()

    @property
    def n_allocated(self) -> int:
        """Cores this tenant currently holds."""
        return self.actuator.n_allocated

    # ------------------------------------------------------------------
    # the pipeline
    # ------------------------------------------------------------------

    def _schedule_tick(self) -> None:
        if not self._tick_scheduled:
            self._tick_scheduled = True
            self.os.sim.schedule(self.config.interval, self._tick)

    def _tick(self) -> None:
        self._tick_scheduled = False
        if self._lifecycle != "running":
            return
        chain = self.run_pipeline_once()
        self.os.tracer.emit(ControllerTick(
            time=self.os.now, metric=chain.metric,
            state=chain.state, n_allocated=self.n_allocated))
        watched = (None if self.tenant == DEFAULT_TENANT else self.tenant)
        if self.keepalive or self.os.scheduler.live_threads(watched) > 0:
            self._schedule_tick()

    def run_pipeline_once(self) -> TransitionChain:
        """One full Sense -> Decide -> Plan -> Actuate pass.

        Public for tests and benchmarks.  The stages are wrapped in
        host-clock spans (``controller.sample`` -> ``evaluate`` ->
        ``fire`` -> ``plan`` -> ``apply``) and each pass leaves a
        :class:`~repro.obs.provenance.Decision` in the recorder — the
        record ``repro explain`` renders.
        """
        policy = self.policy
        spans = self.obs.spans
        with spans.span("controller.tick"):
            with spans.span("controller.sample"):
                sample = self.sensor.sense()
            with spans.span("controller.evaluate"):
                metric = policy.metric(sample)
                self.planner.refresh()
            with spans.span("controller.fire"):
                chain = policy.classify(metric)
            self.lonc.record(metric, self.n_allocated)
            cores_before = self.n_allocated
            with spans.span("controller.plan"):
                delta = single_step(self.planner.plan(chain.action))
            with spans.span("controller.apply"):
                applied = self.actuator.apply(delta)
                self._sync_model()
                if applied.allocate:
                    self._c_allocations.inc()
                elif applied.release:
                    self._c_releases.inc()
        self._c_ticks.inc()
        self._h_metric.observe(metric)
        self._g_cores.set(self.n_allocated)
        self._c_fired[chain.entry].inc()
        self._c_fired[chain.exit].inc()
        if self.obs.enabled or live_bus() is not None:
            self._record_decision(sample, chain, applied.first_core,
                                  cores_before)
        self.ticks += 1
        self.os.tracer.emit(TransitionRecord(
            time=self.os.now, label=chain.label, state=chain.state,
            value=metric, cores_after=self.n_allocated))
        return chain

    def _record_decision(self, sample, chain: TransitionChain,
                         core: int | None, cores_before: int) -> None:
        """Capture the full causal chain of one pass.

        Runs when the recorder is enabled *or* a live bus is installed:
        the same :class:`Decision` feeds the provenance log and the
        streaming health analyzers, which is what makes live values
        replayable post-hoc from ``decisions.jsonl``.
        """
        priorities = None
        if isinstance(self.mode, AdaptivePriorityMode):
            priorities = tuple(self.mode.queue.counts())
        node = (self.os.topology.node_of_core(core)
                if core is not None else None)
        assert self.model is not None
        decision = Decision(
            time=self.os.now, tick=self.ticks,
            strategy=self.strategy.name, metric=chain.metric,
            th_min=self.strategy.th_min, th_max=self.strategy.th_max,
            state=chain.state, entry=chain.entry,
            entry_guard=self.model.guard_text(chain.entry),
            exit=chain.exit,
            exit_guard=self.model.guard_text(chain.exit)
            or "none (always enabled)",
            action=chain.action, mode=self.mode.name, core=core,
            node=node, cores_before=cores_before,
            cores_after=self.n_allocated,
            sample={
                "cpu_load": sample.cpu_load,
                "ht_bytes": sample.ht_bytes,
                "imc_bytes": sample.imc_bytes,
                "ht_imc_ratio": sample.ht_imc_ratio,
                "runnable_threads": float(sample.runnable_threads),
                "window": sample.window,
            },
            priorities=priorities,
            tenant=self.tenant)
        if self.obs.enabled:
            self.obs.decisions.record(decision)
        bus = live_bus()
        if bus is not None:
            bus.on_decision(decision)

    # ------------------------------------------------------------------
    # model/placement upkeep
    # ------------------------------------------------------------------

    def _refresh_priority(self) -> None:
        if isinstance(self.mode, AdaptivePriorityMode):
            self.mode.queue.update(
                self.os.scheduler.threads,
                fallback=self.os.machine.memory.placement_histogram())

    def _sync_model(self) -> None:
        # the PrT net's Provision token and the actuator's holdings must
        # agree — also after a suppressed (cooldown) or starved (no free
        # core) tick, where the fired transition moved the token but the
        # machine did not change
        assert self.model is not None
        if self.model.nalloc != self.actuator.n_allocated:
            self.model.sync_nalloc(self.actuator.n_allocated)
