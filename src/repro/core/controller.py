"""The elastic controller: the rule-condition-action pipeline (paper §III).

One instance supports all DBMS clients (as the paper notes in §V).  Every
``interval`` seconds of simulated time it:

1. **rule** — samples the monitor (mpstat/likwid stand-in) and extracts the
   strategy's metric;
2. **condition** — deposits the metric token into the PrT model's ``Checks``
   place and fires transitions until the token returns;
3. **action** — if ``t5`` fired, allocates one core on the node the
   allocation mode names; if ``t4`` fired, releases one; the cpuset edit is
   what the OS scheduler sees.

The controller keeps ticking while database threads are live and parks
itself otherwise (restart with :meth:`kick` when a new workload begins, or
construct with ``keepalive=True`` to tick forever until :meth:`stop`).
"""

from __future__ import annotations

from ..config import ControllerConfig, preflight_defects
from ..errors import AllocationError, ModelConfigurationError
from ..obs.metrics import VALUE_BUCKETS
from ..obs.provenance import Decision
from ..opsys.system import OperatingSystem
from ..sim.tracing import ControllerTick, CoreAllocation, TransitionRecord
from .lonc import LoncTracker
from .model import PerformanceModel, TransitionChain
from .modes import AdaptivePriorityMode, AllocationMode
from .monitor import Monitor
from .strategies import TransitionStrategy


class ElasticController:
    """The mechanism of the paper, wired to one simulated machine."""

    def __init__(self, os: OperatingSystem, mode: AllocationMode,
                 strategy: TransitionStrategy,
                 config: ControllerConfig | None = None,
                 keepalive: bool = False, verify_model: bool = False):
        self.os = os
        self.mode = mode
        self.strategy = strategy
        base = config or ControllerConfig()
        self.verify_model = verify_model
        # a contradictory configuration is held, not raised: start()
        # reports every defect at once as a ModelConfigurationError
        self._defects = preflight_defects(
            strategy.th_min, strategy.th_max, base.min_cores,
            base.initial_cores, os.topology.n_cores)
        self.model: PerformanceModel | None
        if self._defects:
            self.config = base
            self.model = None
        else:
            # thresholds live on the strategy; fold them into the copy
            self.config = ControllerConfig(
                interval=base.interval,
                th_min=strategy.th_min, th_max=strategy.th_max,
                initial_cores=base.initial_cores,
                min_cores=base.min_cores)
            self.model = PerformanceModel(
                th_min=strategy.th_min, th_max=strategy.th_max,
                n_total=os.topology.n_cores,
                n_min=self.config.min_cores,
                initial_cores=self.config.initial_cores)
        self.keepalive = keepalive
        self.monitor = Monitor(os)
        self.lonc = LoncTracker(strategy.th_min, strategy.th_max)
        self.ticks = 0
        self._started = False
        self._stopped = False
        self._tick_scheduled = False
        # telemetry: instruments bound once; all no-ops when the
        # system's recorder is the null one
        self.obs = os.obs
        metrics = self.obs.metrics
        self._c_ticks = metrics.counter("controller.ticks")
        self._c_allocations = metrics.counter("controller.allocations")
        self._c_releases = metrics.counter("controller.releases")
        self._g_cores = metrics.gauge("controller.cores_allocated")
        self._h_metric = metrics.histogram("controller.metric",
                                           VALUE_BUCKETS)
        self._c_fired = {
            name: metrics.counter(f"petrinet.fired.{name}")
            for name in ("t0", "t1", "t2", "t3", "t4", "t5", "t6", "t7")}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Apply the initial mask and schedule the first tick.

        Pre-flight: a contradictory configuration (inverted thresholds,
        ``min_cores > n_total`` ...) raises
        :class:`~repro.errors.ModelConfigurationError`; with
        ``verify_model=True`` the full static analysis of
        :func:`repro.verify.verify_performance_model` runs first and any
        finding raises a :class:`~repro.errors.VerificationError`.
        """
        if self._started:
            raise AllocationError("controller already started")
        if self._defects:
            raise ModelConfigurationError(
                "refusing to start: " + "; ".join(self._defects))
        if self.verify_model:
            # local import: repro.verify imports from repro.core
            from ..verify import raise_on_findings, verify_performance_model
            raise_on_findings(verify_performance_model(self.model))
        self._started = True
        self._refresh_priority()
        initial = self.mode.initial_mask(self.config.initial_cores)
        self.os.cpuset.set_mask(initial)
        for core in initial:
            self._trace_mask_change(core, allocated=True)
        self._g_cores.set(self.n_allocated)
        self.monitor.prime()
        self._schedule_tick()

    def stop(self) -> None:
        """Stop ticking permanently."""
        self._stopped = True

    def kick(self) -> None:
        """Re-arm the tick loop after the controller parked itself."""
        if self._started and not self._stopped:
            self._schedule_tick()

    @property
    def n_allocated(self) -> int:
        """Cores currently handed to the OS."""
        return len(self.os.cpuset)

    # ------------------------------------------------------------------
    # the pipeline
    # ------------------------------------------------------------------

    def _schedule_tick(self) -> None:
        if not self._tick_scheduled:
            self._tick_scheduled = True
            self.os.sim.schedule(self.config.interval, self._tick)

    def _tick(self) -> None:
        self._tick_scheduled = False
        if self._stopped:
            return
        chain = self.run_pipeline_once()
        self.os.tracer.emit(ControllerTick(
            time=self.os.now, metric=chain.metric,
            state=chain.state, n_allocated=self.n_allocated))
        if self.keepalive or self.os.scheduler.live_threads() > 0:
            self._schedule_tick()

    def run_pipeline_once(self) -> TransitionChain:
        """One full rule-condition-action pass (public for tests/benches).

        The four pipeline stages are wrapped in host-clock spans
        (``controller.sample`` -> ``evaluate`` -> ``fire`` -> ``apply``)
        and each pass leaves a :class:`~repro.obs.provenance.Decision`
        in the recorder — the record ``repro explain`` renders.
        """
        spans = self.obs.spans
        with spans.span("controller.tick"):
            with spans.span("controller.sample"):
                sample = self.monitor.sample()
            with spans.span("controller.evaluate"):
                metric = self.strategy.metric(sample)
                self._refresh_priority()
            with spans.span("controller.fire"):
                chain = self.model.run_cycle(metric)
            self.lonc.record(metric, self.n_allocated)
            cores_before = self.n_allocated
            with spans.span("controller.apply"):
                core: int | None = None
                if chain.action == "allocate":
                    core = self._allocate_one()
                    self._c_allocations.inc()
                elif chain.action == "release":
                    core = self._release_one()
                    self._c_releases.inc()
        self._c_ticks.inc()
        self._h_metric.observe(metric)
        self._g_cores.set(self.n_allocated)
        self._c_fired[chain.entry].inc()
        self._c_fired[chain.exit].inc()
        if self.obs.enabled:
            self._record_decision(sample, chain, core, cores_before)
        self.ticks += 1
        self.os.tracer.emit(TransitionRecord(
            time=self.os.now, label=chain.label, state=chain.state,
            value=metric, cores_after=self.n_allocated))
        return chain

    def _record_decision(self, sample, chain: TransitionChain,
                         core: int | None, cores_before: int) -> None:
        """Capture the full causal chain of one pass (enabled path only)."""
        priorities = None
        if isinstance(self.mode, AdaptivePriorityMode):
            priorities = tuple(self.mode.queue.counts())
        node = (self.os.topology.node_of_core(core)
                if core is not None else None)
        self.obs.decisions.record(Decision(
            time=self.os.now, tick=self.ticks,
            strategy=self.strategy.name, metric=chain.metric,
            th_min=self.strategy.th_min, th_max=self.strategy.th_max,
            state=chain.state, entry=chain.entry,
            entry_guard=self.model.guard_text(chain.entry),
            exit=chain.exit,
            exit_guard=self.model.guard_text(chain.exit)
            or "none (always enabled)",
            action=chain.action, mode=self.mode.name, core=core,
            node=node, cores_before=cores_before,
            cores_after=self.n_allocated,
            sample={
                "cpu_load": sample.cpu_load,
                "ht_bytes": sample.ht_bytes,
                "imc_bytes": sample.imc_bytes,
                "ht_imc_ratio": sample.ht_imc_ratio,
                "runnable_threads": float(sample.runnable_threads),
                "window": sample.window,
            },
            priorities=priorities))

    # ------------------------------------------------------------------
    # actions
    # ------------------------------------------------------------------

    def _refresh_priority(self) -> None:
        if isinstance(self.mode, AdaptivePriorityMode):
            self.mode.queue.update(
                self.os.scheduler.threads,
                fallback=self.os.machine.memory.placement_histogram())

    def _allocate_one(self) -> int:
        allocated = self.os.cpuset.allowed()
        core = self.mode.next_allocation(allocated)
        self.os.cpuset.allow(core)
        self._sync_model()
        self._trace_mask_change(core, allocated=True)
        return core

    def _release_one(self) -> int:
        allocated = self.os.cpuset.allowed()
        core = self.mode.next_release(allocated)
        self.os.cpuset.disallow(core)
        self._sync_model()
        self._trace_mask_change(core, allocated=False)
        return core

    def _sync_model(self) -> None:
        # the PrT net's Provision token and the cpuset must agree
        if self.model.nalloc != len(self.os.cpuset):
            self.model.sync_nalloc(len(self.os.cpuset))

    def _trace_mask_change(self, core: int, allocated: bool) -> None:
        self.os.tracer.emit(CoreAllocation(
            time=self.os.now, core_id=core,
            node_id=self.os.topology.node_of_core(core),
            allocated=allocated, n_allocated=self.n_allocated))
