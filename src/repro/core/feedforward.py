"""Predicate-aware worker sizing (paper §VII future work).

The paper's conclusion proposes improving the model "to seek for the
local optimum number of cores with respect to query predicates".  The
controller's feedback loop reacts *after* load materialises; this module
adds the feed-forward half: at submission time the engine already holds
the query's profile — input footprint and compute, both shaped by the
query's predicates — so it can size the worker pool to the work instead
of blindly spawning one worker per visible core.

The sizer is deliberately simple and explainable:

* every worker should have at least ``bytes_per_worker`` of input to
  stream (below that, the per-partition administration overhead exceeds
  the parallelism gain — the quantity the cost model's
  ``partition_overhead_cycles`` describes), and
* at least ``cycles_per_worker`` of compute to retire.

The suggestion is clamped to the mechanism's visible mask, so the
elastic controller remains the outer authority.
"""

from __future__ import annotations

import math

from ..errors import ConfigError


class PredicateAwareSizer:
    """Suggest a worker count from a query profile."""

    def __init__(self, bytes_per_worker: float = 8e6,
                 cycles_per_worker: float = 2e7):
        if bytes_per_worker <= 0 or cycles_per_worker <= 0:
            raise ConfigError("sizer targets must be positive")
        self.bytes_per_worker = bytes_per_worker
        self.cycles_per_worker = cycles_per_worker

    def workers_for(self, profile, visible: int) -> int:
        """Workers for ``profile`` given ``visible`` cores.

        The demand is the larger of the footprint-driven and the
        compute-driven estimates; tiny queries get one worker, big scans
        get the full mask.
        """
        if visible < 1:
            raise ConfigError("at least one core must be visible")
        by_bytes = math.ceil(profile.input_sim_bytes
                             / self.bytes_per_worker)
        by_cycles = math.ceil(profile.total_cycles
                              / self.cycles_per_worker)
        demand = max(by_bytes, by_cycles, 1)
        return min(demand, visible)
