"""The Local Optimum Number of Cores (LONC), paper §IV-A, Eq. 1.

    for every workload w there is an nalloc such that
        thmin < u < thmax   and   p(nalloc) >= p(ntotal)

i.e. a core count keeping the per-core load inside the stable band while
performing at least as well as exposing all cores.  The controller *seeks*
the LONC by construction (it allocates on Overload and releases on Idle);
:class:`LoncTracker` measures how well it succeeds — the fraction of
monitoring windows spent in each state and the allocated-core trajectory —
and is used by tests and the Fig 7 harness.
"""

from __future__ import annotations

from dataclasses import dataclass, field


def lonc_satisfied(metric: float, th_min: float, th_max: float) -> bool:
    """Whether a metric value sits strictly inside the stable band."""
    return th_min < metric < th_max


@dataclass
class LoncReport:
    """Summary of a controller run's stability behaviour."""

    ticks: int
    stable_ticks: int
    idle_ticks: int
    overload_ticks: int
    min_cores: int
    max_cores: int
    mean_cores: float

    @property
    def stable_fraction(self) -> float:
        """Fraction of windows inside the stable band."""
        return self.stable_ticks / self.ticks if self.ticks else 0.0


@dataclass
class LoncTracker:
    """Accumulates per-tick state classifications and core counts."""

    th_min: float
    th_max: float
    _states: list[str] = field(default_factory=list)
    _cores: list[int] = field(default_factory=list)

    def record(self, metric: float, n_cores: int) -> None:
        """Register one monitoring tick."""
        if metric <= self.th_min:
            state = "Idle"
        elif metric >= self.th_max:
            state = "Overload"
        else:
            state = "Stable"
        self._states.append(state)
        self._cores.append(n_cores)

    @property
    def history(self) -> list[tuple[str, int]]:
        """(state, cores) per tick."""
        return list(zip(self._states, self._cores))

    def report(self) -> LoncReport:
        """Summarise the run."""
        ticks = len(self._states)
        cores = self._cores or [0]
        return LoncReport(
            ticks=ticks,
            stable_ticks=self._states.count("Stable"),
            idle_ticks=self._states.count("Idle"),
            overload_ticks=self._states.count("Overload"),
            min_cores=min(cores),
            max_cores=max(cores),
            mean_cores=sum(cores) / len(cores),
        )
