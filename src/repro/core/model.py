"""The paper's performance-state PrT model (§III-B, Figs 8-11).

Places
    ``Checks`` (current resource-usage token ``u``), ``Provision`` (the
    allocated-core count ``na``), and the three performance states
    ``Idle``, ``Stable``, ``Overload``.

Transitions
    ========  ===========================  ==========================
    name      guard                        effect
    ========  ===========================  ==========================
    ``t0``    ``u <= thmin``               Checks+Provision -> Idle
    ``t1``    ``u >= thmax``               Checks+Provision -> Overload
    ``t2``    ``thmin < u < thmax``        Checks -> Stable
    ``t3``    (none)                       Stable -> Checks
    ``t4``    ``na > nmin``                Idle -> Provision(na-1)+Checks
    ``t7``    ``na == nmin``               Idle -> Provision(na)+Checks
    ``t5``    ``na < ntotal``              Overload -> Provision(na+1)+Checks
    ``t6``    ``na == ntotal``             Overload -> Provision(na)+Checks
    ========  ===========================  ==========================

One monitoring tick = one :meth:`PerformanceModel.run_cycle`: deposit the
fresh ``u`` token into ``Checks``, fire until the token returns.  The fired
pair is reported as the paper's Fig 7 labels (``t1-Overload-t5`` ...), and
``t5``/``t4`` carry the allocate/release action the controller executes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PetriNetError
from .petrinet import Arc, OutputArc, PetriNet, Transition

#: performance-state place reached by each entry transition
_STATE_OF = {"t0": "Idle", "t1": "Overload", "t2": "Stable"}

#: action carried by each exit transition
_ACTION_OF = {"t4": "release", "t5": "allocate"}


@dataclass(frozen=True)
class TransitionChain:
    """One fired entry/exit pair, e.g. ``t1-Overload-t5``."""

    entry: str
    state: str
    exit: str
    metric: float
    nalloc_after: int

    @property
    def label(self) -> str:
        """The Fig 7 display label."""
        return f"{self.entry}-{self.state}-{self.exit}"

    @property
    def action(self) -> str | None:
        """``"allocate"``, ``"release"`` or ``None``."""
        return _ACTION_OF.get(self.exit)


class PerformanceModel:
    """The concrete 5-place / 8-transition net, parameterised by thresholds.

    Parameters
    ----------
    th_min / th_max:
        The strategy's thresholds (CPU-load percentages or HT/IMC ratios).
    n_total:
        Hardware core count (``ntotal``); bounds ``t5``.
    n_min:
        Lower bound enforced by ``t7`` (paper: 1).
    initial_cores:
        Initial ``Provision`` marking (paper: 1).
    """

    def __init__(self, th_min: float, th_max: float, n_total: int,
                 n_min: int = 1, initial_cores: int = 1):
        if th_min >= th_max:
            raise PetriNetError("th_min must be below th_max")
        if not 1 <= n_min <= initial_cores <= n_total:
            raise PetriNetError(
                "need 1 <= n_min <= initial_cores <= n_total")
        self.th_min = th_min
        self.th_max = th_max
        self.n_total = n_total
        self.n_min = n_min
        self.net = self._build(initial_cores)
        self.chains: list[TransitionChain] = []

    # ------------------------------------------------------------------

    def _build(self, initial_cores: int) -> PetriNet:
        net = PetriNet()
        for place in ("Checks", "Idle", "Stable", "Overload", "Provision"):
            net.add_place(place)
        th_min, th_max = self.th_min, self.th_max
        n_total, n_min = self.n_total, self.n_min

        # entry transitions: classify the fresh u token
        net.add_transition(Transition(
            "t0", guard=lambda b: b["u"] <= th_min,
            guard_text=f"u <= {th_min}",
            inputs=[Arc("Checks", ("u",), "u"),
                    Arc("Provision", ("na",), "na")],
            outputs=[OutputArc("Idle", lambda b: (b["u"], b["na"]), "na")]))
        net.add_transition(Transition(
            "t1", guard=lambda b: b["u"] >= th_max,
            guard_text=f"u >= {th_max}",
            inputs=[Arc("Checks", ("u",), "u"),
                    Arc("Provision", ("na",), "na")],
            outputs=[OutputArc("Overload",
                               lambda b: (b["u"], b["na"]), "na")]))
        net.add_transition(Transition(
            "t2", guard=lambda b: th_min < b["u"] < th_max,
            guard_text=f"{th_min} < u < {th_max}",
            inputs=[Arc("Checks", ("u",), "u")],
            outputs=[OutputArc("Stable", lambda b: (b["u"],), "u")]))

        # exit transitions: act and return the token to Checks
        net.add_transition(Transition(
            "t4", guard=lambda b: b["na"] > n_min,
            guard_text=f"nalloc > {n_min}",
            inputs=[Arc("Idle", ("u", "na"), "na")],
            outputs=[OutputArc("Provision", lambda b: (b["na"] - 1,), "na"),
                     OutputArc("Checks", lambda b: (b["u"],), "u")]))
        net.add_transition(Transition(
            "t7", guard=lambda b: b["na"] == n_min,
            guard_text=f"nalloc == {n_min}",
            inputs=[Arc("Idle", ("u", "na"), "na")],
            outputs=[OutputArc("Provision", lambda b: (b["na"],), "na"),
                     OutputArc("Checks", lambda b: (b["u"],), "u")]))
        net.add_transition(Transition(
            "t5", guard=lambda b: b["na"] < n_total,
            guard_text=f"nalloc < {n_total}",
            inputs=[Arc("Overload", ("u", "na"), "na")],
            outputs=[OutputArc("Provision", lambda b: (b["na"] + 1,), "na"),
                     OutputArc("Checks", lambda b: (b["u"],), "u")]))
        net.add_transition(Transition(
            "t6", guard=lambda b: b["na"] == n_total,
            guard_text=f"nalloc == {n_total}",
            inputs=[Arc("Overload", ("u", "na"), "na")],
            outputs=[OutputArc("Provision", lambda b: (b["na"],), "na"),
                     OutputArc("Checks", lambda b: (b["u"],), "u")]))
        net.add_transition(Transition(
            "t3", inputs=[Arc("Stable", ("u",), "u")],
            outputs=[OutputArc("Checks", lambda b: (b["u"],), "u")]))

        net.set_token("Provision", (initial_cores,))
        return net

    # ------------------------------------------------------------------

    @property
    def nalloc(self) -> int:
        """Current allocated-core count held by ``Provision``."""
        token = self.net.place("Provision").peek()
        if token is None:
            raise PetriNetError("Provision lost its token")
        return int(token[0])

    def guard_text(self, name: str) -> str:
        """The guard formula of transition ``name`` (``"u >= 70.0"``...),
        as instantiated with this model's thresholds and bounds.  Empty
        for the unguarded ``t3``.  Decision provenance records carry
        these so ``repro explain`` can show the exact condition that
        held."""
        return self.net.transition(name).guard_text

    def state_of(self, metric: float) -> str:
        """Which performance state a metric value classifies into."""
        if metric <= self.th_min:
            return "Idle"
        if metric >= self.th_max:
            return "Overload"
        return "Stable"

    def run_cycle(self, metric: float) -> TransitionChain:
        """One monitoring tick: deposit ``metric``, fire to completion."""
        self.net.set_token("Checks", (metric,))
        fired: list[str] = []
        while not fired or len(self.net.place("Checks")) == 0:
            name = self.net.step()
            if name is None:
                raise PetriNetError(
                    f"model deadlocked after firing {fired}")
            fired.append(name)
        if len(fired) != 2:
            raise PetriNetError(f"unexpected firing chain {fired}")
        entry, exit_ = fired
        chain = TransitionChain(
            entry=entry, state=_STATE_OF[entry], exit=exit_,
            metric=metric, nalloc_after=self.nalloc)
        self.chains.append(chain)
        return chain

    def sync_nalloc(self, nalloc: int) -> None:
        """Force the ``Provision`` marking (when the controller could not
        apply an action, e.g. no free core on the preferred node)."""
        if not self.n_min <= nalloc <= self.n_total:
            raise PetriNetError(f"nalloc {nalloc} out of range")
        self.net.set_token("Provision", (nalloc,))
