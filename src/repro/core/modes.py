"""Allocation modes: *where* the next core is allocated or released.

The paper defines three (§IV-B), all over the mapping
``core(i, j) = d*i + j`` for node ``i``, local index ``j`` on a ``d``-ary
machine:

* **Sparse** — iterate ``j`` outer, ``i`` inner: one core at a time on a
  *different* node (round-robin across nodes);
* **Dense** — iterate ``i`` outer, ``j`` inner: fill a node before moving
  to the next;
* **Adaptive Priority** — allocate in the node with the *most* resident
  pages of the database address space, release from the node with the
  *fewest* (backed by :class:`~repro.core.priority.NodePriorityQueue`).

Modes are pure policies: they look at the current mask (and, for adaptive,
the priority queue) and name a core; the controller performs the change.
"""

from __future__ import annotations

from ..errors import AllocationError
from ..hardware.topology import Topology
from .priority import NodePriorityQueue


class AllocationMode:
    """Interface for allocation/release placement policies."""

    name = "abstract"

    def __init__(self, topology: Topology):
        self.topology = topology

    def allocation_order(self) -> list[int]:
        """Static modes define a full ordering; adaptive has none."""
        raise NotImplementedError

    def next_allocation(self, allocated: frozenset[int]) -> int:
        """Core to allocate next, given the current mask."""
        for core in self.allocation_order():
            if core not in allocated:
                return core
        raise AllocationError("all cores are already allocated")

    def next_release(self, allocated: frozenset[int]) -> int:
        """Core to release next, given the current mask."""
        for core in reversed(self.allocation_order()):
            if core in allocated:
                return core
        raise AllocationError("no core to release")

    def initial_mask(self, n_cores: int) -> list[int]:
        """The first ``n_cores`` cores this mode would allocate."""
        mask: list[int] = []
        allocated: set[int] = set()
        for _ in range(n_cores):
            core = self.next_allocation(frozenset(allocated))
            allocated.add(core)
            mask.append(core)
        return mask


class SparseMode(AllocationMode):
    """One core at a time on a different node (paper Fig 12a)."""

    name = "sparse"

    def allocation_order(self) -> list[int]:
        topo = self.topology
        return [topo.core(i, j)
                for j in range(topo.cores_per_socket)
                for i in range(topo.n_sockets)]


class DenseMode(AllocationMode):
    """Fill each node before moving to the next (paper Fig 12b)."""

    name = "dense"

    def allocation_order(self) -> list[int]:
        topo = self.topology
        return [topo.core(i, j)
                for i in range(topo.n_sockets)
                for j in range(topo.cores_per_socket)]


class AdaptivePriorityMode(AllocationMode):
    """Allocate near the data, release far from it (paper §IV-B2)."""

    name = "adaptive"

    def __init__(self, topology: Topology, queue: NodePriorityQueue):
        super().__init__(topology)
        if queue.n_nodes != topology.n_sockets:
            raise AllocationError("queue size does not match the topology")
        self.queue = queue

    def allocation_order(self) -> list[int]:
        """Snapshot ordering under the *current* priorities: nodes by
        priority, cores in order within each node."""
        order: list[int] = []
        for node in self.queue.by_priority():
            order.extend(self.topology.cores_of_node(node))
        return order

    def next_allocation(self, allocated: frozenset[int]) -> int:
        for node in self.queue.by_priority():
            for core in self.topology.cores_of_node(node):
                if core not in allocated:
                    return core
        raise AllocationError("all cores are already allocated")

    def next_release(self, allocated: frozenset[int]) -> int:
        for node in reversed(self.queue.by_priority()):
            for core in reversed(self.topology.cores_of_node(node)):
                if core in allocated:
                    return core
        raise AllocationError("no core to release")


def make_mode(name: str, topology: Topology,
              queue: NodePriorityQueue | None = None) -> AllocationMode:
    """Factory: ``"sparse"``, ``"dense"`` or ``"adaptive"``."""
    if name == "sparse":
        return SparseMode(topology)
    if name == "dense":
        return DenseMode(topology)
    if name == "adaptive":
        return AdaptivePriorityMode(
            topology, queue or NodePriorityQueue(topology.n_sockets))
    raise AllocationError(f"unknown allocation mode {name!r}")
