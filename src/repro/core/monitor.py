"""The monitoring half of the rule-condition-action pipeline.

Plays the role of the paper's mpstat/likwid loop: every controller tick it
produces a :class:`MonitorSample` with the window's CPU-load picture and the
counter deltas the strategies need (HT bytes, IMC bytes, L3 misses).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.counters import CounterSnapshot
from ..opsys.cpuset import CpuSet
from ..opsys.loadstats import LoadSample, LoadSampler
from ..opsys.system import OperatingSystem


@dataclass(frozen=True)
class MonitorSample:
    """One monitoring window's observations."""

    time: float
    window: float
    load: LoadSample
    ht_bytes: float
    imc_bytes: float
    l3_misses: float
    runnable_threads: int = 0
    n_allocated: int = 0

    @property
    def queue_pressure(self) -> bool:
        """More runnable threads than allocated cores (demand queued)."""
        return self.runnable_threads > self.n_allocated

    @property
    def cpu_load(self) -> float:
        """Average load of the allocated cores (the paper's ``u``), %."""
        return self.load.average_allocated

    @property
    def ht_imc_ratio(self) -> float:
        """Interconnect bytes over memory-controller bytes this window.

        The paper's NUMA-friendliness signal (§V-B): low means data is
        served locally, high means it travels between nodes first.
        """
        if self.imc_bytes <= 0:
            return 0.0
        return self.ht_bytes / self.imc_bytes


class Monitor:
    """Stateful sampler; one per controller instance.

    By default it observes the whole machine through the system's shared
    :class:`~repro.opsys.loadstats.LoadSampler` (the single-tenant
    legacy path).  Given a tenant's ``cpuset`` (and name), the monitor
    owns a *private* sampler over that mask and counts only that
    tenant's runnable threads, so two concurrent controllers never
    corrupt each other's monitoring windows.  Counter deltas (HT, IMC,
    L3) remain machine-wide either way — likwid reads sockets, not
    cgroups.
    """

    def __init__(self, os: OperatingSystem, cpuset: CpuSet | None = None,
                 tenant: str | None = None):
        self.os = os
        self.tenant = tenant
        if cpuset is None:
            self._cpuset = os.cpuset
            self._sampler = os.load_sampler
        else:
            self._cpuset = cpuset
            self._sampler = LoadSampler(os.machine, cpuset)
        self._previous: CounterSnapshot | None = None

    def prime(self) -> None:
        """Take the initial snapshots without producing a sample."""
        self._sampler.prime(self.os.now)
        self._previous = self.os.counters.snapshot(self.os.now)

    def sample(self) -> MonitorSample:
        """Observe the window since the previous call."""
        now = self.os.now
        load = self._sampler.sample(now)
        current = self.os.counters.snapshot(now)
        previous = self._previous
        self._previous = current
        if previous is None:
            ht = imc = l3 = 0.0
        else:
            ht = current.delta_total(previous, "ht_tx_bytes")
            imc = current.delta_total(previous, "imc_bytes")
            l3 = current.delta_total(previous, "l3_miss")
        return MonitorSample(
            time=now, window=load.window, load=load,
            ht_bytes=ht, imc_bytes=imc, l3_misses=l3,
            runnable_threads=self.os.scheduler.runnable_threads(
                self.tenant),
            n_allocated=len(self._cpuset))
