"""Generic Predicate/Transition (PrT) nets with valued tokens.

The paper models database performance states as a PrT net (§III): places
hold *valued* tokens (a CPU-load percentage, an allocated-core count),
transitions carry first-order guards over the variables bound by their
input arcs, and the net structure is summarised by ``Pre``/``Post``
incidence matrices (Fig 8-11).

This module implements that formalism directly:

* a :class:`Place` holds an ordered list of tokens (tuples of numbers);
* an input :class:`Arc` consumes one token and binds its components to
  variable names; an output arc produces a token computed from the binding;
* a :class:`Transition` is enabled when every input place has a token and
  its guard holds over the binding;
* :meth:`PetriNet.incidence` renders the symbolic ``Pre``, ``Post`` and
  ``A^T = Post - Pre`` matrices, so tests can compare them against the
  paper's figures.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from ..errors import PetriNetError

Token = tuple[float, ...]
Binding = dict[str, float]


class Place:
    """A named place holding an ordered multiset of valued tokens."""

    def __init__(self, name: str):
        if not name:
            raise PetriNetError("places need a name")
        self.name = name
        self.tokens: list[Token] = []

    def put(self, token: Sequence[float]) -> None:
        """Deposit a token."""
        self.tokens.append(tuple(float(v) for v in token))

    def take(self) -> Token:
        """Remove and return the oldest token."""
        if not self.tokens:
            raise PetriNetError(f"place {self.name!r} is empty")
        return self.tokens.pop(0)

    def peek(self) -> Token | None:
        """The oldest token without removing it, or ``None``."""
        return self.tokens[0] if self.tokens else None

    def clear(self) -> None:
        """Drop all tokens."""
        self.tokens.clear()

    def __len__(self) -> int:
        return len(self.tokens)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Place {self.name} tokens={self.tokens}>"


class Arc:
    """An input arc: consumes one token, binding components to variables.

    ``variables`` names the token components in order; the same names are
    used in guard formulas and output expressions.  The symbolic ``label``
    (e.g. ``"u"`` or ``"na"``) is what appears in the incidence matrices.
    """

    def __init__(self, place: str, variables: Sequence[str],
                 label: str | None = None):
        if not variables:
            raise PetriNetError("arcs must bind at least one variable")
        self.place = place
        self.variables = tuple(variables)
        self.label = label if label is not None else ",".join(variables)


class OutputArc:
    """An output arc: produces a token from the binding."""

    def __init__(self, place: str,
                 produce: Callable[[Binding], Sequence[float]],
                 label: str = ""):
        self.place = place
        self.produce = produce
        self.label = label


class Transition:
    """A guarded transition between places."""

    def __init__(self, name: str,
                 guard: Callable[[Binding], bool] | None = None,
                 inputs: Sequence[Arc] = (),
                 outputs: Sequence[OutputArc] = (),
                 guard_text: str = ""):
        self.name = name
        self.guard = guard
        self.inputs = list(inputs)
        self.outputs = list(outputs)
        self.guard_text = guard_text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Transition {self.name} [{self.guard_text}]>"


class PetriNet:
    """A PrT net instance: structure plus current marking."""

    def __init__(self) -> None:
        self._places: dict[str, Place] = {}
        self._transitions: dict[str, Transition] = {}
        self._order: list[str] = []
        self.fired_log: list[str] = []

    # ------------------------------------------------------------------
    # construction
    # ------------------------------------------------------------------

    def add_place(self, name: str) -> Place:
        """Create (or return the existing) place ``name``."""
        if name not in self._places:
            self._places[name] = Place(name)
        return self._places[name]

    def add_transition(self, transition: Transition) -> Transition:
        """Register a transition; input/output places must already exist."""
        if transition.name in self._transitions:
            raise PetriNetError(
                f"duplicate transition {transition.name!r}")
        for arc in transition.inputs:
            if arc.place not in self._places:
                raise PetriNetError(f"unknown place {arc.place!r}")
        for arc in transition.outputs:
            if arc.place not in self._places:
                raise PetriNetError(f"unknown place {arc.place!r}")
        self._transitions[transition.name] = transition
        self._order.append(transition.name)
        return transition

    # ------------------------------------------------------------------
    # marking access
    # ------------------------------------------------------------------

    def place(self, name: str) -> Place:
        """Look up a place."""
        if name not in self._places:
            raise PetriNetError(f"unknown place {name!r}")
        return self._places[name]

    def place_names(self) -> list[str]:
        """All place names in creation order."""
        return list(self._places)

    def transition_names(self) -> list[str]:
        """All transition names in registration order."""
        return list(self._order)

    def transition(self, name: str) -> Transition:
        """Look up a transition."""
        if name not in self._transitions:
            raise PetriNetError(f"unknown transition {name!r}")
        return self._transitions[name]

    def set_token(self, place: str, token: Sequence[float]) -> None:
        """Replace the marking of ``place`` with a single token."""
        p = self.place(place)
        p.clear()
        p.put(token)

    def marking(self) -> dict[str, list[Token]]:
        """The full marking, place name -> tokens."""
        return {name: list(p.tokens) for name, p in self._places.items()}

    def total_tokens(self) -> int:
        """Token count over all places (conservation checks)."""
        return sum(len(p) for p in self._places.values())

    # ------------------------------------------------------------------
    # semantics
    # ------------------------------------------------------------------

    def binding_of(self, transition: Transition) -> Binding | None:
        """Bind the transition's input arcs against the current marking.

        Returns ``None`` when some input place is empty.  Conflicting
        bindings (same variable bound to different values by two arcs) make
        the transition disabled, per PrT unification semantics.
        """
        binding: Binding = {}
        for arc in transition.inputs:
            token = self.place(arc.place).peek()
            if token is None:
                return None
            if len(token) != len(arc.variables):
                raise PetriNetError(
                    f"arity mismatch on arc {arc.place}->{transition.name}")
            for var, value in zip(arc.variables, token):
                if var in binding and binding[var] != value:
                    return None
                binding[var] = value
        return binding

    def is_enabled(self, name: str) -> bool:
        """Whether ``name`` can fire under the current marking."""
        transition = self.transition(name)
        binding = self.binding_of(transition)
        if binding is None:
            return False
        if transition.guard is not None and not transition.guard(binding):
            return False
        return True

    def fire(self, name: str) -> Binding:
        """Fire ``name``: consume input tokens, produce output tokens."""
        transition = self.transition(name)
        binding = self.binding_of(transition)
        if binding is None:
            raise PetriNetError(f"{name} has no enabled binding")
        if transition.guard is not None and not transition.guard(binding):
            raise PetriNetError(f"guard of {name} rejects {binding}")
        for arc in transition.inputs:
            self.place(arc.place).take()
        for arc in transition.outputs:
            self.place(arc.place).put(arc.produce(binding))
        self.fired_log.append(name)
        return binding

    def step(self) -> str | None:
        """Fire the first enabled transition (registration order)."""
        for name in self._order:
            if self.is_enabled(name):
                self.fire(name)
                return name
        return None

    # ------------------------------------------------------------------
    # incidence matrices (paper Figs 8-11)
    # ------------------------------------------------------------------

    def incidence(self) -> tuple[dict, dict, dict]:
        """Symbolic ``(Pre, Post, A^T)`` over (place, transition) pairs.

        Entries are arc labels (``"u"``, ``"na"``...) or ``0``; ``A^T``
        entries are ``-label`` / ``+label`` strings showing the token flow
        direction, mirroring the paper's presentation.
        """
        pre: dict[tuple[str, str], str | int] = {}
        post: dict[tuple[str, str], str | int] = {}
        for place in self._places:
            for tname in self._order:
                pre[(place, tname)] = 0
                post[(place, tname)] = 0
        for tname in self._order:
            transition = self._transitions[tname]
            for arc in transition.inputs:
                pre[(arc.place, tname)] = arc.label
            for arc in transition.outputs:
                post[(arc.place, tname)] = arc.label or "tok"
        incidence: dict[tuple[str, str], str | int] = {}
        for key in pre:
            p, q = pre[key], post[key]
            if p == 0 and q == 0:
                incidence[key] = 0
            elif p == 0:
                incidence[key] = f"+{q}"
            elif q == 0:
                incidence[key] = f"-{p}"
            else:
                incidence[key] = f"-{p}+{q}" if p != q else "0*"
        return pre, post, incidence
