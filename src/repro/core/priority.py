"""The adaptive mode's priority queue over NUMA nodes (paper §IV-B2).

Each entry of the paper's queue holds a database thread's PID, its address
space and its page count per NUMA node; the node with the largest aggregate
count has the highest priority (next core is allocated there) and the node
with the smallest count the lowest (next core is released there).

Here the per-thread histograms come from the VM layer
(:attr:`repro.opsys.thread.SimThread.pages_by_node`), and when no database
thread is live (between queries) the queue falls back to the machine-wide
page placement histogram — the resident database itself.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..opsys.thread import SimThread


class NodePriorityQueue:
    """Aggregated page counts per node, with priority ordering."""

    def __init__(self, n_nodes: int):
        self.n_nodes = n_nodes
        self._counts = [0.0] * n_nodes

    def update(self, threads: Iterable[SimThread],
               fallback: list[int] | None = None) -> None:
        """Recompute node counts from the live threads' address spaces.

        ``fallback`` (typically the memory system's placement histogram) is
        used when no thread contributes any pages.
        """
        counts = [0.0] * self.n_nodes
        any_pages = False
        for thread in threads:
            for node, pages in thread.pages_by_node.items():
                if 0 <= node < self.n_nodes and pages > 0:
                    counts[node] += pages
                    any_pages = True
        if not any_pages and fallback is not None:
            counts = [float(v) for v in fallback[:self.n_nodes]]
        self._counts = counts

    def counts(self) -> list[float]:
        """Current aggregate counts, indexed by node."""
        return list(self._counts)

    def count_of(self, node: int) -> float:
        """Aggregate count of one node."""
        return self._counts[node]

    def by_priority(self) -> list[int]:
        """Node ids from highest to lowest priority.

        Ties break toward lower node ids, so behaviour is deterministic.
        """
        return sorted(range(self.n_nodes),
                      key=lambda n: (-self._counts[n], n))

    def hottest(self) -> int:
        """The highest-priority node (most pages)."""
        return self.by_priority()[0]

    def coldest(self) -> int:
        """The lowest-priority node (fewest pages)."""
        return self.by_priority()[-1]
