"""SLA-governed transition strategies (paper §VII future work).

The paper's closing sketch: in a cloud setting, cores would be "accessed
as needed, like meeting service level agreements (e.g., energy or data
traffic)".  :class:`SlaGovernor` implements that idea as a *wrapper*
around any base strategy: the base strategy drives the PrT model as
usual, but when the governed quantity exceeds its budget the governor
overrides the metric to the Idle region — the model then fires
``t0-Idle-t4`` and sheds a core, which is the lever that reduces both
interconnect traffic (fewer remote threads) and power (fewer busy
cores).  While the budget holds, allocation proceeds on demand.

Two governed quantities are provided:

* **traffic** — the interconnect byte rate over the monitoring window;
* **power** — the instantaneous machine power estimated from busy time
  and HT bytes with the same model as Fig 20.
"""

from __future__ import annotations

from ..config import MachineConfig
from ..errors import ConfigError
from .monitor import MonitorSample
from .strategies import TransitionStrategy


class SlaGovernor(TransitionStrategy):
    """Wrap a base strategy with traffic and/or power budgets."""

    name = "sla"

    def __init__(self, base: TransitionStrategy,
                 machine: MachineConfig | None = None,
                 traffic_budget: float | None = None,
                 power_budget: float | None = None,
                 headroom: float = 0.9):
        if traffic_budget is None and power_budget is None:
            raise ConfigError("an SLA governor needs at least one budget")
        if traffic_budget is not None and traffic_budget <= 0:
            raise ConfigError("traffic budget must be positive (bytes/s)")
        if power_budget is not None and power_budget <= 0:
            raise ConfigError("power budget must be positive (watts)")
        if power_budget is not None and machine is None:
            raise ConfigError("a power budget needs the machine config")
        if not 0.0 < headroom <= 1.0:
            raise ConfigError("headroom must be in (0, 1]")
        self.base = base
        self.machine = machine
        self.traffic_budget = traffic_budget
        self.power_budget = power_budget
        self.headroom = headroom
        self.th_min = base.th_min
        self.th_max = base.th_max
        self.violations = 0
        self.clamps = 0

    # ------------------------------------------------------------------

    def traffic_rate(self, sample: MonitorSample) -> float:
        """Interconnect bytes/s over the monitoring window."""
        if sample.window <= 0:
            return 0.0
        return sample.ht_bytes / sample.window

    def power_estimate(self, sample: MonitorSample) -> float:
        """Instantaneous machine power (W) from the Fig 20 model."""
        assert self.machine is not None
        config = self.machine
        idle = config.acp_watts * config.idle_power_fraction
        dynamic = config.acp_watts - idle
        if sample.window <= 0:
            busy_fraction = 0.0
        else:
            busy = sum(sample.load.per_core_busy.values())
            busy_fraction = busy / 100.0 / max(config.n_cores, 1)
        cpu_watts = config.n_sockets * (idle + dynamic * busy_fraction)
        ht_watts = (self.traffic_rate(sample) * 8.0
                    * config.ht_joules_per_bit)
        return cpu_watts + ht_watts

    def _utilisation(self, sample: MonitorSample) -> float:
        """Worst governed quantity as a fraction of its budget."""
        worst = 0.0
        if self.traffic_budget is not None:
            worst = max(worst,
                        self.traffic_rate(sample) / self.traffic_budget)
        if self.power_budget is not None:
            worst = max(worst,
                        self.power_estimate(sample) / self.power_budget)
        return worst

    # ------------------------------------------------------------------

    def metric(self, sample: MonitorSample) -> float:
        """Base metric, clamped by the SLA state.

        * over budget — force the Idle region (release a core);
        * within ``headroom`` of the budget — clamp Overload down to the
          Stable region (hold, do not grow);
        * otherwise — defer to the base strategy.
        """
        utilisation = self._utilisation(sample)
        base_metric = self.base.metric(sample)
        if utilisation >= 1.0:
            self.violations += 1
            return self.th_min
        if utilisation >= self.headroom and base_metric >= self.th_max:
            self.clamps += 1
            return (self.th_min + self.th_max) / 2.0
        return base_metric
