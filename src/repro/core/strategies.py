"""State-transition strategies: what metric drives the PrT net.

The paper demonstrates the model's flexibility by swapping the quantity the
``Checks`` token carries (§V-B):

* :class:`CpuLoadStrategy` — average CPU load of the allocated cores, with
  the rule-of-thumb thresholds ``thmin=10`` / ``thmax=70`` [17];
* :class:`HtImcStrategy` — the HT/IMC traffic ratio with empirically chosen
  ``thmin=0.1`` / ``thmax=0.4``.  Note the *polarity* is the same: a high
  ratio means threads reach across the interconnect for their data, so more
  local cores should be offered (Overload), while a negligible ratio means
  the current cores already satisfy locality (Idle candidates for release).
"""

from __future__ import annotations

from ..errors import ConfigError
from .monitor import MonitorSample


class TransitionStrategy:
    """Interface: a metric extractor plus its thresholds."""

    name = "abstract"
    th_min = 0.0
    th_max = 1.0

    def metric(self, sample: MonitorSample) -> float:
        """The value the ``Checks`` token carries this tick."""
        raise NotImplementedError


class CpuLoadStrategy(TransitionStrategy):
    """CPU-load driven transitions (the paper's primary configuration).

    ``u`` is the mpstat-style busy percentage averaged over the allocated
    cores, thresholds 10/70 from the literature's rules of thumb [17].
    """

    name = "cpu_load"

    def __init__(self, th_min: float = 10.0, th_max: float = 70.0):
        if not 0 <= th_min < th_max <= 100:
            raise ConfigError("CPU-load thresholds must satisfy "
                              "0 <= thmin < thmax <= 100")
        self.th_min = th_min
        self.th_max = th_max

    def metric(self, sample: MonitorSample) -> float:
        return sample.cpu_load


class UsefulLoadStrategy(TransitionStrategy):
    """Ablation: drive transitions by retired-work share instead of busy.

    Makes memory-bandwidth saturation visible (stalled cores stop counting
    toward ``u``) at the price of under-allocating when runnable demand is
    queued behind stalled-but-busy cores.  Exercised by the ablation
    benchmark, not used for the paper's headline configuration.
    """

    name = "useful_load"

    def __init__(self, th_min: float = 10.0, th_max: float = 70.0):
        if not 0 <= th_min < th_max <= 100:
            raise ConfigError("useful-load thresholds must satisfy "
                              "0 <= thmin < thmax <= 100")
        self.th_min = th_min
        self.th_max = th_max

    def metric(self, sample: MonitorSample) -> float:
        return sample.load.average_useful_allocated


class HtImcStrategy(TransitionStrategy):
    """HT/IMC-ratio driven transitions (paper §V-B).

    One adaptation over the paper's description: when the mask covers only
    the data's home nodes, the ratio can reach exactly zero while hundreds
    of runnable threads queue — the letter of the strategy would then
    *release* cores forever.  On the authors' testbed the ratio never hits
    zero (data and coherence traffic spread across nodes), so we treat
    "zero interconnect traffic with queued demand and a busy memory
    system" as Overload rather than Idle.  Without queued demand the plain
    ratio is used, so release behaviour is unchanged.
    """

    name = "ht_imc"

    def __init__(self, th_min: float = 0.1, th_max: float = 0.4):
        if not 0 <= th_min < th_max:
            raise ConfigError("HT/IMC thresholds must satisfy "
                              "0 <= thmin < thmax")
        self.th_min = th_min
        self.th_max = th_max

    def metric(self, sample: MonitorSample) -> float:
        ratio = sample.ht_imc_ratio
        saturated_locally = (sample.imc_bytes > 0
                             and ratio <= self.th_min)
        demand = sample.queue_pressure or sample.cpu_load >= 70.0
        if saturated_locally and demand:
            return self.th_max
        return ratio


def make_strategy(name: str, **kwargs) -> TransitionStrategy:
    """Factory: ``"cpu_load"``, ``"ht_imc"`` or ``"useful_load"``."""
    if name == "cpu_load":
        return CpuLoadStrategy(**kwargs)
    if name == "ht_imc":
        return HtImcStrategy(**kwargs)
    if name == "useful_load":
        return UsefulLoadStrategy(**kwargs)
    raise ConfigError(f"unknown strategy {name!r}")
