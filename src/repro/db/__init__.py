"""Columnar database substrate: storage, operators, plans, engines.

Two engines are provided, mirroring the paper's two systems:

* :class:`~repro.db.engine.MonetDBLike` — Volcano-style horizontal
  parallelism, one worker per *visible* core per operator, thread placement
  left entirely to the OS, base data first-touched by a single loader;
* :class:`~repro.db.numa_aware.NumaAwareEngine` — the SQL Server stand-in:
  base data partitioned round-robin across nodes, workers pinned to the node
  owning their partition.

Queries are logical operator trees (:mod:`repro.db.operators`) that are
**really executed** on numpy data for correctness and for measuring true
intermediate sizes, then **compiled into staged work items**
(:mod:`repro.db.cost`) that run on the simulated machine.
"""

from .bat import BAT
from .catalog import Catalog, Table
from .clients import ClientPool, WorkloadResult
from .engine import DatabaseEngine, MonetDBLike
from .expressions import (And, Between, Case, Col, Const, InList, Not, Or,
                          add, div, eq, ge, gt, le, lt, mul, ne, sub)
from .morsel import MorselEngine, MorselQueryExecution
from .numa_aware import NumaAwareEngine
from .operators import (Aggregate, Distinct, Filter, Join, Limit, OrderBy,
                        Project, Scan)
from .plan import QueryProfile, StageProfile
from .volcano import QueryExecution

__all__ = [
    "BAT", "Table", "Catalog",
    "Col", "Const", "Case", "And", "Or", "Not", "Between", "InList",
    "eq", "ne", "lt", "le", "gt", "ge", "add", "sub", "mul", "div",
    "Scan", "Filter", "Project", "Join", "Aggregate", "Distinct",
    "OrderBy", "Limit",
    "QueryProfile", "StageProfile",
    "QueryExecution",
    "DatabaseEngine", "MonetDBLike", "NumaAwareEngine",
    "MorselEngine", "MorselQueryExecution",
    "ClientPool", "WorkloadResult",
]
