"""Binary Association Tables: MonetDB-style columns bound to simulated pages.

A :class:`BAT` couples the *real* numpy values of a column (used by the
oracle executor and to measure true selectivities) with the *simulated*
footprint of the same column at the paper's scale.  The two are decoupled by
``byte_scale``: data is generated at a small scale factor for speed, while
the simulated page count corresponds to the full 1 GB database, so cache
pressure and interconnect traffic behave like the paper's testbed.
"""

from __future__ import annotations

import numpy as np

from ..errors import DatabaseError
from ..hardware.memory import MemorySystem


class BAT:
    """One column: real values plus a simulated page range."""

    def __init__(self, name: str, values: np.ndarray,
                 byte_scale: float = 1.0):
        if values.ndim != 1:
            raise DatabaseError(f"BAT {name!r} must be one-dimensional")
        if byte_scale <= 0:
            raise DatabaseError("byte_scale must be positive")
        self.name = name
        self.values = values
        self.byte_scale = byte_scale
        self._pages: range | None = None

    @property
    def n_rows(self) -> int:
        """Real row count of the generated data."""
        return len(self.values)

    @property
    def real_bytes(self) -> int:
        """Bytes of the in-memory numpy payload."""
        return self.values.nbytes

    @property
    def sim_bytes(self) -> int:
        """Bytes the column occupies in the *simulated* machine."""
        return int(self.real_bytes * self.byte_scale)

    @property
    def loaded(self) -> bool:
        """Whether simulated pages have been assigned."""
        return self._pages is not None

    @property
    def pages(self) -> range:
        """Simulated page ids backing this column."""
        if self._pages is None:
            raise DatabaseError(f"BAT {self.name!r} not loaded into memory")
        return self._pages

    def assign_pages(self, memory: MemorySystem) -> range:
        """Reserve simulated pages for the column (once)."""
        if self._pages is not None:
            raise DatabaseError(f"BAT {self.name!r} already loaded")
        self._pages = memory.allocate_bytes(max(self.sim_bytes, 1))
        return self._pages

    def page_slice(self, part: int, n_parts: int) -> range:
        """Pages of horizontal partition ``part`` out of ``n_parts``.

        Partitions follow the row split used by the Volcano executor: the
        page range is divided into ``n_parts`` nearly equal contiguous runs.
        """
        if not 0 <= part < n_parts:
            raise DatabaseError(f"partition {part}/{n_parts} out of range")
        pages = self.pages
        n = len(pages)
        start = (n * part) // n_parts
        stop = (n * (part + 1)) // n_parts
        return range(pages.start + start, pages.start + stop)

    def row_slice(self, part: int, n_parts: int) -> slice:
        """Row interval of horizontal partition ``part``."""
        if not 0 <= part < n_parts:
            raise DatabaseError(f"partition {part}/{n_parts} out of range")
        n = self.n_rows
        return slice((n * part) // n_parts, (n * (part + 1)) // n_parts)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        loaded = f"pages={len(self._pages)}" if self._pages else "unloaded"
        return f"<BAT {self.name!r} rows={self.n_rows} {loaded}>"
