"""Tables and the catalog, including base-data placement policies.

Loading a table does two things:

* reserve simulated pages for each column (:meth:`BAT.assign_pages`);
* **first-touch** those pages through the VM layer, which fixes their home
  nodes.  Two policies model the paper's two systems:

  - ``single_node`` — a single loader thread touches everything, so the
    whole database lands on one node (MonetDB behaviour; the paper's
    Fig 18a shows the OS then hammering socket S0);
  - ``chunked`` — each column is split into ``n_sockets`` contiguous chunks
    placed round-robin (the NUMA-aware SQL Server layout).
"""

from __future__ import annotations

import numpy as np

from ..errors import DatabaseError
from ..opsys.vm import VirtualMemory
from .bat import BAT


class Table:
    """A named set of equal-length BATs."""

    def __init__(self, name: str, columns: dict[str, np.ndarray],
                 byte_scale: float = 1.0):
        if not columns:
            raise DatabaseError(f"table {name!r} needs at least one column")
        lengths = {len(v) for v in columns.values()}
        if len(lengths) != 1:
            raise DatabaseError(f"table {name!r} has ragged columns")
        self.name = name
        self.bats = {col: BAT(f"{name}.{col}", values, byte_scale)
                     for col, values in columns.items()}
        self.n_rows = lengths.pop()

    def __contains__(self, column: str) -> bool:
        return column in self.bats

    def bat(self, column: str) -> BAT:
        """The BAT backing ``column``."""
        if column not in self.bats:
            raise DatabaseError(
                f"table {self.name!r} has no column {column!r}")
        return self.bats[column]

    def env(self) -> dict[str, np.ndarray]:
        """Column name -> values mapping for expression evaluation."""
        return {col: bat.values for col, bat in self.bats.items()}

    def column_names(self) -> list[str]:
        """All column names, in definition order."""
        return list(self.bats)

    @property
    def sim_bytes(self) -> int:
        """Simulated footprint of the whole table."""
        return sum(bat.sim_bytes for bat in self.bats.values())


class Catalog:
    """All tables of one database instance."""

    def __init__(self) -> None:
        self._tables: dict[str, Table] = {}
        self._loaded = False

    def add(self, table: Table) -> None:
        """Register a table (before loading)."""
        if self._loaded:
            raise DatabaseError("catalog already loaded into memory")
        if table.name in self._tables:
            raise DatabaseError(f"duplicate table {table.name!r}")
        self._tables[table.name] = table

    def table(self, name: str) -> Table:
        """Look up a table by name."""
        if name not in self._tables:
            raise DatabaseError(f"unknown table {name!r}")
        return self._tables[name]

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def table_names(self) -> list[str]:
        """All registered table names."""
        return list(self._tables)

    @property
    def loaded(self) -> bool:
        """Whether base pages have been placed."""
        return self._loaded

    def load(self, vm: VirtualMemory, policy: str = "single_node",
             loader_node: int = 0) -> None:
        """Assign and first-touch base pages for every table.

        Parameters
        ----------
        vm:
            The OS virtual-memory layer of the target machine.
        policy:
            ``"single_node"`` or ``"chunked"`` (see module docstring).
        loader_node:
            Home node for the ``single_node`` policy.
        """
        if self._loaded:
            raise DatabaseError("catalog already loaded")
        if policy not in ("single_node", "chunked"):
            raise DatabaseError(f"unknown placement policy {policy!r}")
        n_sockets = vm.machine.topology.n_sockets
        for table in self._tables.values():
            for bat in table.bats.values():
                pages = bat.assign_pages(vm.machine.memory)
                if policy == "single_node":
                    vm.touch_pages(list(pages), loader_node)
                else:
                    for chunk in range(n_sockets):
                        n = len(pages)
                        lo = (n * chunk) // n_sockets
                        hi = (n * (chunk + 1)) // n_sockets
                        chunk_pages = list(pages)[lo:hi]
                        if chunk_pages:
                            vm.touch_pages(chunk_pages, chunk)
        self._loaded = True

    @property
    def sim_bytes(self) -> int:
        """Simulated footprint of the whole database."""
        return sum(t.sim_bytes for t in self._tables.values())
