"""Concurrent client driver: the paper's 1..256-user workloads.

Clients are closed-loop: each client submits its next query the moment the
previous one finishes (zero think time), matching the execution protocol
the paper borrows from Psaroudakis et al. [13].  A client's query sequence
comes from a *stream factory* — any callable mapping the client id to an
iterable of registered query names.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator
from dataclasses import dataclass, field

from ..errors import WorkloadError
from .engine import DatabaseEngine
from .volcano import QueryExecution


@dataclass
class WorkloadResult:
    """Aggregate outcome of one multi-client run."""

    n_clients: int
    started_at: float
    finished_at: float = 0.0
    #: (client_id, query_name, elapsed) per completed query
    completions: list[tuple[int, str, float]] = field(default_factory=list)

    @property
    def makespan(self) -> float:
        """Wall-clock from first submission to last completion."""
        return self.finished_at - self.started_at

    @property
    def queries_completed(self) -> int:
        """Total completed queries."""
        return len(self.completions)

    @property
    def throughput(self) -> float:
        """Queries per second over the makespan."""
        if self.makespan <= 0:
            return 0.0
        return self.queries_completed / self.makespan

    def latencies(self, query_name: str | None = None) -> list[float]:
        """Per-query latencies, optionally filtered by query name."""
        return [elapsed for _, name, elapsed in self.completions
                if query_name is None or name == query_name]

    def mean_latency(self, query_name: str | None = None) -> float:
        """Average latency, optionally filtered by query name."""
        values = self.latencies(query_name)
        if not values:
            return 0.0
        return sum(values) / len(values)


class ClientPool:
    """Drives ``n_clients`` closed-loop query streams against one engine."""

    def __init__(self, engine: DatabaseEngine, n_clients: int,
                 stream_factory: Callable[[int], Iterable[str]]):
        if n_clients < 1:
            raise WorkloadError("need at least one client")
        self.engine = engine
        self.n_clients = n_clients
        self._streams: dict[int, Iterator[str]] = {
            client: iter(stream_factory(client))
            for client in range(n_clients)
        }
        self.result: WorkloadResult | None = None

    def start(self) -> WorkloadResult:
        """Submit the first query of every client; returns the live result
        object (populated as the simulation runs)."""
        if self.result is not None:
            raise WorkloadError("client pool already started")
        self.result = WorkloadResult(n_clients=self.n_clients,
                                     started_at=self.engine.os.now)
        for client in range(self.n_clients):
            self._submit_next(client)
        return self.result

    def run(self) -> WorkloadResult:
        """Start all clients and drive the simulation to completion."""
        result = self.start()
        self.engine.os.run_until_idle()
        result.finished_at = self.engine.os.now
        return result

    def _submit_next(self, client: int) -> None:
        try:
            query_name = next(self._streams[client])
        except StopIteration:
            return
        self.engine.submit(query_name, client_id=client,
                           on_done=self._on_query_done)

    def _on_query_done(self, execution: QueryExecution) -> None:
        assert self.result is not None
        self.result.completions.append(
            (execution.client_id, execution.query_name, execution.elapsed))
        self.result.finished_at = self.engine.os.now
        self._submit_next(execution.client_id)


def repeat_stream(query_name: str, repetitions: int,
                  ) -> Callable[[int], list[str]]:
    """Every client runs the same query ``repetitions`` times (the Q6
    microbenchmark protocol)."""
    if repetitions < 1:
        raise WorkloadError("repetitions must be >= 1")
    return lambda client: [query_name] * repetitions
