"""Cost model and the compiler from query profiles to work items.

The :class:`CostModel` holds cycles-per-byte constants for each operator
class; they fold the private L1/L2 behaviour of the real machine into the
compute cost (the shared L3 is simulated explicitly).  Values were tuned so
that execution stays memory-sensitive — the balance between per-page compute
and per-page DRAM/interconnect time is what lets the paper's NUMA effects
(remote-access stalls, interconnect saturation under high concurrency)
surface; absolute latencies are smaller than the 2008-era testbed's and
EXPERIMENTS.md compares shapes, not absolutes.

:func:`compile_profile` instantiates a worker-count-independent
:class:`~repro.db.plan.QueryProfile` for a concrete number of workers:
it allocates simulated pages for every intermediate and splits each stage
into per-worker :class:`ItemSpec` partitions, wiring consumer stages to the
pages their producers wrote (that identity is what makes intermediate
locality — and the cost of losing it — visible to the simulator).
"""

from __future__ import annotations

import math
from collections.abc import Sequence
from dataclasses import dataclass, field

from ..errors import PlanError
from ..hardware.memory import MemorySystem
from ..pages import PageSegments


@dataclass(frozen=True)
class CostModel:
    """Cycles-per-byte constants per operator class."""

    select_per_byte: float = 4.0
    project_per_byte: float = 2.5
    join_build_per_byte: float = 7.0
    join_probe_per_byte: float = 6.0
    agg_per_byte: float = 5.0
    agg_final_per_byte: float = 3.0
    sort_per_byte_log: float = 1.0
    result_per_byte: float = 1.0
    hash_table_factor: float = 1.5
    min_stage_cycles: float = 20_000.0
    #: fixed cycles per operator partition: the engine-side administration
    #: of one MAL fragment (candidate lists, BAT headers, dataflow
    #: bookkeeping).  This is the real cost of over-parallelisation the
    #: mechanism trims when it exposes fewer cores (queries then spawn
    #: fewer, fatter partitions).
    partition_overhead_cycles: float = 300_000.0

    def select_cycles(self, input_bytes: float) -> float:
        """Compute cost of a selection stage."""
        return max(input_bytes * self.select_per_byte,
                   self.min_stage_cycles)

    def project_cycles(self, input_bytes: float) -> float:
        """Compute cost of a projection stage."""
        return max(input_bytes * self.project_per_byte,
                   self.min_stage_cycles)

    def join_build_cycles(self, build_bytes: float) -> float:
        """Compute cost of hashing the build side."""
        return max(build_bytes * self.join_build_per_byte,
                   self.min_stage_cycles)

    def join_probe_cycles(self, probe_bytes: float,
                          hash_bytes: float) -> float:
        """Compute cost of probing (dominated by the probe stream)."""
        return max(probe_bytes * self.join_probe_per_byte
                   + 0.2 * hash_bytes, self.min_stage_cycles)

    def agg_cycles(self, input_bytes: float) -> float:
        """Compute cost of partial aggregation."""
        return max(input_bytes * self.agg_per_byte, self.min_stage_cycles)

    def agg_final_cycles(self, output_bytes: float) -> float:
        """Compute cost of the serial merge of partials."""
        return max(output_bytes * self.agg_final_per_byte,
                   self.min_stage_cycles)

    def sort_cycles(self, input_bytes: float, rows: int) -> float:
        """Compute cost of a partial sort (n log n)."""
        return max(input_bytes * self.sort_per_byte_log
                   * math.log2(max(rows, 2)), self.min_stage_cycles)

    def result_cycles(self, result_bytes: float) -> float:
        """Compute cost of shipping the result set."""
        return max(result_bytes * self.result_per_byte,
                   self.min_stage_cycles)

    def hash_table_bytes(self, build_bytes: float) -> float:
        """Simulated size of a hash table over ``build_bytes`` of input."""
        return build_bytes * self.hash_table_factor

    def index_lookup_cycles(self) -> float:
        """Compute cost of one B-tree descent plus row fetch."""
        return self.min_stage_cycles


@dataclass
class ItemSpec:
    """One worker partition of one stage, ready to become a WorkItem."""

    label: str
    reads: list[int] = field(default_factory=list)
    writes: list[int] = field(default_factory=list)
    cycles: float = 0.0


@dataclass
class CompiledQuery:
    """Stage-ordered item specs plus the intermediate pages to free."""

    name: str
    stage_items: list[list[ItemSpec]]
    #: pages of every stage output, kept as contiguous per-stage runs
    #: (:class:`~repro.pages.PageSegments`) so the release path frees
    #: whole ranges instead of walking page ids
    intermediate_pages: Sequence[int]

    @property
    def n_stages(self) -> int:
        """Number of dataflow stages (barriers sit between them)."""
        return len(self.stage_items)


def _slice_range(pages: range, part: int, n_parts: int) -> range:
    """Contiguous partition ``part`` of ``n_parts`` over a page range."""
    n = len(pages)
    lo = (n * part) // n_parts
    hi = (n * (part + 1)) // n_parts
    return pages[lo:hi]


def compile_profile(profile, catalog, n_workers: int,
                    memory: MemorySystem,
                    cost: CostModel | None = None,
                    stage_partitions=None) -> CompiledQuery:
    """Instantiate a :class:`QueryProfile` for ``n_workers`` workers.

    Intermediate pages are freshly allocated (per execution, so concurrent
    clients do not share intermediates — only base pages are shared).

    ``stage_partitions`` optionally overrides how many items a parallel
    stage splits into (``callable(stage) -> int``); the Volcano engines
    use one item per worker, the morsel-driven engine many small morsels
    per stage.
    """
    if n_workers < 1:
        raise PlanError("need at least one worker")
    cost = cost or CostModel()
    page_bytes = memory.page_bytes
    stage_outputs: list[range] = []
    stage_items: list[list[ItemSpec]] = []
    all_intermediate: list[range] = []

    for stage in profile.stages:
        if not stage.parallel:
            workers = 1
        elif stage_partitions is not None:
            workers = max(int(stage_partitions(stage)), 1)
        else:
            workers = n_workers
        out_bytes = stage.output_bytes * (workers if stage.output_per_worker
                                          else 1)
        n_out_pages = math.ceil(out_bytes / page_bytes) if out_bytes > 0 \
            else 0
        out_pages = memory.allocate(n_out_pages)
        stage_outputs.append(out_pages)
        if len(out_pages):
            all_intermediate.append(out_pages)

        shared_segments = [stage_outputs[producer]
                           for producer in stage.shared_consumes
                           if len(stage_outputs[producer])]

        point_segments: list[range] = []
        for table_name, column, fraction, n_pages in stage.point_reads:
            pages = catalog.table(table_name).bat(column).pages
            if len(pages):
                start = min(int(fraction * len(pages)),
                            len(pages) - 1)
                stop = min(start + n_pages, len(pages))
                point_segments.append(pages[start:stop])

        items = []
        for part in range(workers):
            # each non-empty page source is one contiguous segment; a
            # single-segment item keeps its native range, multi-segment
            # items keep their runs behind PageSegments — either way the
            # VM/cache layers see contiguous runs to stream with array
            # fast paths
            segments: list = list(point_segments)
            for table_name, column in stage.base_reads:
                bat = catalog.table(table_name).bat(column)
                pages = bat.page_slice(part, workers)
                if pages:
                    segments.append(pages)
            for producer in stage.consumes:
                pages = _slice_range(stage_outputs[producer],
                                     part, workers)
                if pages:
                    segments.append(pages)
            segments.extend(shared_segments)
            if not segments:
                reads: Sequence[int] = ()
            elif len(segments) == 1:
                reads = segments[0]
            else:
                reads = PageSegments(segments)
            writes = _slice_range(out_pages, part, workers)
            items.append(ItemSpec(
                label=stage.label,
                reads=reads,
                writes=writes,
                cycles=(stage.cycles / workers
                        + cost.partition_overhead_cycles),
            ))
        stage_items.append(items)

    return CompiledQuery(
        name=profile.name,
        stage_items=stage_items,
        intermediate_pages=PageSegments(all_intermediate),
    )
