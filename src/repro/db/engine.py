"""Database engines: the MonetDB-like Volcano system.

:class:`DatabaseEngine` owns a catalog, a registry of named logical plans,
a profile cache and the submission path that compiles a profile for the
*currently visible* number of cores and launches a
:class:`~repro.db.volcano.QueryExecution`.

:class:`MonetDBLike` is the paper's primary subject: one worker per visible
core per query, placement fully delegated to the OS scheduler, base data
first-touched by a single loader (so it concentrates on one node).
"""

from __future__ import annotations

from collections.abc import Callable

from ..config import EngineConfig
from ..core.feedforward import PredicateAwareSizer
from ..errors import DatabaseError
from ..opsys.inventory import DEFAULT_TENANT
from ..opsys.system import OperatingSystem
from .catalog import Catalog
from .cost import CostModel, compile_profile
from .operators import PlanNode
from .plan import QueryProfile, profile_query
from .volcano import QueryExecution


class DatabaseEngine:
    """Base engine: plan registry, profiling, submission."""

    def __init__(self, os: OperatingSystem, catalog: Catalog,
                 byte_scale: float = 1.0,
                 config: EngineConfig | None = None,
                 cost: CostModel | None = None,
                 name: str = "engine",
                 tenant: str = DEFAULT_TENANT):
        self.os = os
        self.catalog = catalog
        self.byte_scale = byte_scale
        self.config = config or EngineConfig()
        self.cost = cost or CostModel()
        self.name = name
        #: which cgroup the engine's workers live in; the tenant must be
        #: registered on the system (``os.create_tenant``) beforehand —
        #: the default one always is
        self.tenant = tenant
        self.cpuset = os.inventory.cpuset_of(tenant)
        self._plans: dict[str, PlanNode] = {}
        self._profiles: dict[str, QueryProfile] = {}
        self._sizer = PredicateAwareSizer() if self.config.predicate_aware \
            else None

    # ------------------------------------------------------------------
    # setup
    # ------------------------------------------------------------------

    def load(self) -> None:
        """Place the base data according to the engine's policy."""
        if self.config.numa_aware or self.config.loader_node is None:
            self.catalog.load(self.os.vm, policy="chunked")
        else:
            self.catalog.load(self.os.vm, policy="single_node",
                              loader_node=self.config.loader_node)

    def register_query(self, name: str, root: PlanNode) -> None:
        """Register a logical plan under ``name``."""
        if name in self._plans:
            raise DatabaseError(f"query {name!r} already registered")
        self._plans[name] = root

    def register_queries(self, plans: dict[str, PlanNode]) -> None:
        """Register several plans at once."""
        for name, root in plans.items():
            self.register_query(name, root)

    def query_names(self) -> list[str]:
        """All registered query names."""
        return list(self._plans)

    def plan(self, name: str) -> PlanNode:
        """The registered logical plan for ``name``."""
        if name not in self._plans:
            raise DatabaseError(f"unknown query {name!r}")
        return self._plans[name]

    def profile(self, name: str) -> QueryProfile:
        """Profile ``name`` (cached; the real execution runs once)."""
        if name not in self._profiles:
            self._profiles[name] = profile_query(
                self.plan(name), self.catalog, name, self.byte_scale,
                self.cost)
        return self._profiles[name]

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def worker_count(self) -> int:
        """Workers per query: one per visible core (MonetDB's default).

        Unmanaged engines (co-located applications outside the DB cgroup)
        are not confined by the mask and see every core.
        """
        if self.config.workers_follow_mask and self.config.managed_threads:
            count = max(len(self.cpuset), 1)
        else:
            count = self.os.topology.n_cores
        if self.config.max_workers is not None:
            count = min(count, self.config.max_workers)
        return count

    def pinned_cores(self, n_workers: int) -> list[int | None] | None:
        """Per-core worker pinning; the base engine leaves it to the OS."""
        return None

    def pinned_nodes(self, n_workers: int) -> list[int | None] | None:
        """Per-node worker affinity; the base engine leaves it to the OS."""
        return None

    def submit(self, name: str, client_id: int = 0,
               on_done: Callable[[QueryExecution], None] | None = None,
               ) -> QueryExecution:
        """Launch one query execution and return its handle."""
        if not self.catalog.loaded:
            raise DatabaseError("load() the engine before submitting")
        profile = self.profile(name)
        n_workers = self.worker_count()
        if self._sizer is not None:
            n_workers = self._sizer.workers_for(profile, n_workers)
        compiled = compile_profile(profile, self.catalog, n_workers,
                                   self.os.machine.memory, self.cost)
        execution = QueryExecution(compiled, self.os, client_id=client_id,
                                   on_done=on_done)
        execution.start(n_workers, self.pinned_cores(n_workers),
                        self.pinned_nodes(n_workers),
                        managed=self.config.managed_threads,
                        tenant=self.tenant)
        return execution

    def run_to_completion(self, name: str) -> QueryExecution:
        """Submit one query and drive the simulation until it finishes."""
        execution = self.submit(name)
        self.os.run_until_idle()
        if not execution.finished:
            raise DatabaseError(f"query {name!r} did not finish")
        return execution


class MonetDBLike(DatabaseEngine):
    """The paper's OS-scheduled Volcano engine (MonetDB v11.25 role)."""

    def __init__(self, os: OperatingSystem, catalog: Catalog,
                 byte_scale: float = 1.0,
                 config: EngineConfig | None = None,
                 cost: CostModel | None = None,
                 tenant: str = DEFAULT_TENANT):
        super().__init__(os, catalog, byte_scale,
                         config or EngineConfig(workers_follow_mask=True,
                                                loader_node=0,
                                                numa_aware=False),
                         cost, name="monetdb", tenant=tenant)
