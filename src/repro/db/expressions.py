"""Vectorised scalar expressions over columnar data.

Expressions evaluate against an *environment* — a ``dict`` mapping column
names to equal-length numpy arrays — and return a numpy array (or scalar
broadcastable against it).  They are used for filter predicates, projection
lists and aggregate inputs in the TPC-H plan builders.

The tree also self-reports which columns it reads
(:meth:`Expression.columns`), which the cost compiler uses to derive the
page footprint of scan stages.
"""

from __future__ import annotations

import numpy as np

from ..errors import PlanError


class Expression:
    """Base class; subclasses implement :meth:`evaluate` and `columns`."""

    def evaluate(self, env: dict[str, np.ndarray]) -> np.ndarray:
        """Compute the expression over the environment."""
        raise NotImplementedError

    def columns(self) -> set[str]:
        """Names of all columns this expression reads."""
        raise NotImplementedError

    # operator sugar --------------------------------------------------
    def __add__(self, other): return BinOp("+", self, _wrap(other))
    def __sub__(self, other): return BinOp("-", self, _wrap(other))
    def __mul__(self, other): return BinOp("*", self, _wrap(other))
    def __truediv__(self, other): return BinOp("/", self, _wrap(other))
    def __radd__(self, other): return BinOp("+", _wrap(other), self)
    def __rsub__(self, other): return BinOp("-", _wrap(other), self)
    def __rmul__(self, other): return BinOp("*", _wrap(other), self)
    def __rtruediv__(self, other): return BinOp("/", _wrap(other), self)


def _wrap(value) -> Expression:
    if isinstance(value, Expression):
        return value
    return Const(value)


class Col(Expression):
    """A column reference."""

    def __init__(self, name: str):
        self.name = name

    def evaluate(self, env):
        if self.name not in env:
            raise PlanError(f"unknown column {self.name!r}")
        return env[self.name]

    def columns(self):
        return {self.name}

    def __repr__(self):
        return f"Col({self.name!r})"


class Const(Expression):
    """A literal constant."""

    def __init__(self, value):
        self.value = value

    def evaluate(self, env):
        return self.value

    def columns(self):
        return set()

    def __repr__(self):
        return f"Const({self.value!r})"


_BINOPS = {
    "+": np.add, "-": np.subtract, "*": np.multiply, "/": np.divide,
    "==": np.equal, "!=": np.not_equal,
    "<": np.less, "<=": np.less_equal,
    ">": np.greater, ">=": np.greater_equal,
}


class BinOp(Expression):
    """A binary arithmetic or comparison operator."""

    def __init__(self, op: str, left: Expression, right: Expression):
        if op not in _BINOPS:
            raise PlanError(f"unknown operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env):
        return _BINOPS[self.op](self.left.evaluate(env),
                                self.right.evaluate(env))

    def columns(self):
        return self.left.columns() | self.right.columns()

    def __repr__(self):
        return f"({self.left!r} {self.op} {self.right!r})"


class And(Expression):
    """Logical conjunction of any number of boolean expressions."""

    def __init__(self, *terms):
        if not terms:
            raise PlanError("And() needs at least one term")
        self.terms = [_wrap(t) for t in terms]

    def evaluate(self, env):
        result = np.asarray(self.terms[0].evaluate(env), dtype=bool)
        for term in self.terms[1:]:
            result = result & np.asarray(term.evaluate(env), dtype=bool)
        return result

    def columns(self):
        return set().union(*(t.columns() for t in self.terms))


class Or(Expression):
    """Logical disjunction of any number of boolean expressions."""

    def __init__(self, *terms):
        if not terms:
            raise PlanError("Or() needs at least one term")
        self.terms = [_wrap(t) for t in terms]

    def evaluate(self, env):
        result = np.asarray(self.terms[0].evaluate(env), dtype=bool)
        for term in self.terms[1:]:
            result = result | np.asarray(term.evaluate(env), dtype=bool)
        return result

    def columns(self):
        return set().union(*(t.columns() for t in self.terms))


class Not(Expression):
    """Logical negation."""

    def __init__(self, term):
        self.term = _wrap(term)

    def evaluate(self, env):
        return ~np.asarray(self.term.evaluate(env), dtype=bool)

    def columns(self):
        return self.term.columns()


class Between(Expression):
    """Inclusive range predicate (SQL ``BETWEEN``)."""

    def __init__(self, expr, low, high):
        self.expr = _wrap(expr)
        self.low = _wrap(low)
        self.high = _wrap(high)

    def evaluate(self, env):
        value = self.expr.evaluate(env)
        return ((value >= self.low.evaluate(env))
                & (value <= self.high.evaluate(env)))

    def columns(self):
        return (self.expr.columns() | self.low.columns()
                | self.high.columns())


class InList(Expression):
    """Membership in a constant list (SQL ``IN``)."""

    def __init__(self, expr, values):
        self.expr = _wrap(expr)
        self.values = list(values)
        if not self.values:
            raise PlanError("InList needs at least one value")

    def evaluate(self, env):
        value = np.asarray(self.expr.evaluate(env))
        return np.isin(value, self.values)

    def columns(self):
        return self.expr.columns()


class Case(Expression):
    """Two-armed SQL ``CASE WHEN cond THEN a ELSE b END``."""

    def __init__(self, cond, then, otherwise):
        self.cond = _wrap(cond)
        self.then = _wrap(then)
        self.otherwise = _wrap(otherwise)

    def evaluate(self, env):
        return np.where(np.asarray(self.cond.evaluate(env), dtype=bool),
                        self.then.evaluate(env),
                        self.otherwise.evaluate(env))

    def columns(self):
        return (self.cond.columns() | self.then.columns()
                | self.otherwise.columns())


class Floor(Expression):
    """Integer floor of a numeric expression (used for year extraction)."""

    def __init__(self, expr):
        self.expr = _wrap(expr)

    def evaluate(self, env):
        return np.floor(np.asarray(self.expr.evaluate(env))).astype(np.int64)

    def columns(self):
        return self.expr.columns()


# functional spellings, for plan builders that read better with words
def eq(a, b): return BinOp("==", _wrap(a), _wrap(b))
def ne(a, b): return BinOp("!=", _wrap(a), _wrap(b))
def lt(a, b): return BinOp("<", _wrap(a), _wrap(b))
def le(a, b): return BinOp("<=", _wrap(a), _wrap(b))
def gt(a, b): return BinOp(">", _wrap(a), _wrap(b))
def ge(a, b): return BinOp(">=", _wrap(a), _wrap(b))
def add(a, b): return BinOp("+", _wrap(a), _wrap(b))
def sub(a, b): return BinOp("-", _wrap(a), _wrap(b))
def mul(a, b): return BinOp("*", _wrap(a), _wrap(b))
def div(a, b): return BinOp("/", _wrap(a), _wrap(b))
