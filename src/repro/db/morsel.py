"""A morsel-driven engine: the HyPer model from the paper's related work.

Leis et al.'s morsel-driven parallelism [2] — which the paper contrasts
with Volcano in §VI — splits each pipeline into many small *morsels*
dispatched at run time to worker threads pinned one per core, each
preferring morsels whose data is NUMA-local.  The paper argues its
mechanism is *orthogonal*: it "can deliver to morsels a dynamic sub-set
of cores".  This engine exists to test that claim on the simulator.

Differences from :class:`~repro.db.engine.MonetDBLike`:

* parallel stages compile into **many morsels** (a few MB of input each)
  rather than one partition per worker — except partial aggregations,
  which build **per-worker** local tables exactly as HyPer does;
* the worker pool is **pinned one worker per visible core**;
* workers **pull NUMA-local morsels first** (dispatcher locality).
"""

from __future__ import annotations

import math
from collections.abc import Callable

from ..config import EngineConfig
from ..opsys.inventory import DEFAULT_TENANT
from ..opsys.system import OperatingSystem
from ..opsys.thread import SimThread
from ..opsys.workitem import WorkItem
from .catalog import Catalog
from .cost import CostModel, compile_profile
from .engine import DatabaseEngine
from .plan import StageProfile
from .volcano import QueryExecution

#: target input bytes per morsel (HyPer uses ~100k tuples; scaled to the
#: simulated footprint this lands in the low megabytes)
MORSEL_BYTES = 4 * 1024 * 1024


class MorselQueryExecution(QueryExecution):
    """Query execution whose workers prefer NUMA-local morsels."""

    #: how many pending morsels a worker inspects before giving up on
    #: locality and taking the head (bounds dispatch cost)
    SCAN_DEPTH = 16

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        # dispatch is the hot path: bind the instruments once
        from ..obs.metrics import TIME_BUCKETS
        metrics = self.os.obs.metrics
        self._c_dispatches = metrics.counter("db.morsel.dispatches")
        self._c_local = metrics.counter("db.morsel.local_dispatches")
        self._h_exec = metrics.histogram("db.morsel.exec_seconds",
                                         TIME_BUCKETS)

    def _item_done(self, item: WorkItem) -> None:
        if item.started_at is not None:
            self._h_exec.observe(self.os.now - item.started_at)
        super()._item_done(item)

    def next_item(self, thread: SimThread) -> WorkItem | None:
        pending = self._pending
        if not pending:
            return None
        self._c_dispatches.inc()
        core = thread.core
        if core is None:
            return pending.popleft()
        node = self.os.topology.node_of_core(core)
        memory = self.os.machine.memory
        for index, item in enumerate(pending):
            if index >= self.SCAN_DEPTH:
                break
            reads = item.reads
            if reads and memory.home(reads[0]) == node:
                del pending[index]
                self._c_local.inc()
                return item
        return pending.popleft()


class MorselEngine(DatabaseEngine):
    """HyPer-style engine: pinned workers, dynamic morsel dispatch."""

    def __init__(self, os: OperatingSystem, catalog: Catalog,
                 byte_scale: float = 1.0,
                 config: EngineConfig | None = None,
                 cost: CostModel | None = None,
                 morsel_bytes: int = MORSEL_BYTES,
                 tenant: str = DEFAULT_TENANT):
        super().__init__(os, catalog, byte_scale,
                         config or EngineConfig(workers_follow_mask=True,
                                                loader_node=None,
                                                numa_aware=True),
                         cost, name="morsel", tenant=tenant)
        self.morsel_bytes = morsel_bytes

    # ------------------------------------------------------------------

    def _stage_partitions(self, n_workers: int,
                          ) -> Callable[[StageProfile], int]:
        def partitions(stage: StageProfile) -> int:
            if stage.output_per_worker:
                # per-worker local aggregation tables, as in HyPer
                return n_workers
            input_bytes = stage.output_bytes + sum(
                self.catalog.table(t).bat(c).sim_bytes
                for t, c in stage.base_reads)
            morsels = math.ceil(input_bytes / self.morsel_bytes)
            return max(min(morsels, 256), n_workers)

        return partitions

    def pinned_nodes(self, n_workers: int) -> list[int | None]:
        """Workers affined round-robin over the visible cores' nodes.

        HyPer pins pool threads to cores; under an elastic mask a hard
        per-core pin strands every single-worker query on one core, so
        the affinity here is node-level (the scheduler keeps a worker on
        its node's least-loaded visible core and relaxes under
        congestion) — the dispatcher's work stealing, in effect.
        """
        visible = self.cpuset.allowed_sorted()
        topo = self.os.topology
        return [topo.node_of_core(visible[w % len(visible)])
                for w in range(n_workers)]

    def submit(self, name: str, client_id: int = 0, on_done=None,
               ) -> MorselQueryExecution:
        """Launch one query with morsel-grained stages."""
        from ..errors import DatabaseError

        if not self.catalog.loaded:
            raise DatabaseError("load() the engine before submitting")
        profile = self.profile(name)
        n_workers = self.worker_count()
        compiled = compile_profile(
            profile, self.catalog, n_workers, self.os.machine.memory,
            self.cost, stage_partitions=self._stage_partitions(n_workers))
        execution = MorselQueryExecution(compiled, self.os,
                                         client_id=client_id,
                                         on_done=on_done)
        execution.start(n_workers,
                        pinned_nodes=self.pinned_nodes(n_workers),
                        managed=self.config.managed_threads,
                        tenant=self.tenant)
        return execution
