"""The NUMA-aware engine: the paper's SQL Server 2017 stand-in.

Differences from the MonetDB-like engine (paper §V-C / §VI):

* base data is **partitioned round-robin across NUMA nodes** at load time
  (columnstore segments spread over memory banks);
* each query worker is **pinned** to a core of the node owning its data
  partition, so threads and data stay together without OS involvement;
* when the elastic mechanism shrinks the mask below a worker's pinned core,
  the scheduler falls back to a sibling core on the same node (and only
  then anywhere) — "less effort to maintain coherence of such association",
  as the paper puts it.
"""

from __future__ import annotations

from ..config import EngineConfig
from ..opsys.inventory import DEFAULT_TENANT
from ..opsys.system import OperatingSystem
from .catalog import Catalog
from .cost import CostModel
from .engine import DatabaseEngine


class NumaAwareEngine(DatabaseEngine):
    """SQL Server-like engine: partitioned placement, pinned workers."""

    def __init__(self, os: OperatingSystem, catalog: Catalog,
                 byte_scale: float = 1.0,
                 config: EngineConfig | None = None,
                 cost: CostModel | None = None,
                 tenant: str = DEFAULT_TENANT):
        super().__init__(os, catalog, byte_scale,
                         config or EngineConfig(workers_follow_mask=True,
                                                loader_node=None,
                                                numa_aware=True),
                         cost, name="sqlserver", tenant=tenant)
        self._node_rotor = 0

    def pinned_nodes(self, n_workers: int) -> list[int | None]:
        """Affine worker ``w`` to the node that owns partition ``w``.

        Partition ``w`` of ``n_workers`` covers pages in chunk
        ``(w * n_sockets) // n_workers`` of the chunked placement, so the
        worker is node-affined there; within the node the scheduler picks
        the least loaded core (the SQLOS soft-NUMA behaviour).  Queries
        with fewer workers than nodes read every chunk anyway, so their
        workers are spread round-robin across queries to avoid piling
        every small query onto node 0.
        """
        topology = self.os.topology
        n_sockets = topology.n_sockets
        nodes: list[int | None] = []
        for w in range(n_workers):
            if n_workers >= n_sockets:
                node = (w * n_sockets) // n_workers
            else:
                node = (w + self._node_rotor) % n_sockets
            nodes.append(node)
        self._node_rotor += 1
        return nodes
