"""Logical plan operators with real (numpy) execution.

These nodes form the query trees built by :mod:`repro.workloads.tpch.queries`.
They are *really executed* against the generated data — both as the oracle
for correctness tests and to measure true intermediate cardinalities, which
the profiler (:mod:`repro.db.plan`) converts into simulated work.

A *relation* is a ``dict[str, np.ndarray]`` of equal-length columns.  Each
node implements :meth:`PlanNode.compute` over already-evaluated inputs;
:meth:`PlanNode.evaluate` is the recursive convenience wrapper.  The
profiler drives ``compute`` itself so every node runs exactly once.
"""

from __future__ import annotations

import numpy as np

from ..errors import PlanError
from .catalog import Catalog
from .expressions import Expression

Relation = dict[str, np.ndarray]


def relation_rows(rel: Relation) -> int:
    """Row count of a relation (0 for an empty dict)."""
    if not rel:
        return 0
    return len(next(iter(rel.values())))


def relation_bytes(rel: Relation) -> int:
    """Payload bytes of a relation."""
    return sum(arr.nbytes for arr in rel.values())


def _as_column(value, n_rows: int) -> np.ndarray:
    """Broadcast an expression result to a full column."""
    arr = np.asarray(value)
    if arr.ndim == 0:
        return np.full(n_rows, arr[()])
    return arr


def _encode_keys(columns: list[np.ndarray],
                 *more: list[np.ndarray]) -> list[np.ndarray]:
    """Jointly encode one or more aligned key-column groups to int64 codes.

    All groups must list the same key arity; codes are comparable across
    groups (needed to join left keys against right keys).
    """
    groups = [columns, *more]
    arity = len(columns)
    if any(len(g) != arity for g in groups):
        raise PlanError("key groups must have the same arity")
    codes = [np.zeros(len(g[0]), dtype=np.int64) for g in groups]
    for position in range(arity):
        stacked = np.concatenate(
            [np.asarray(g[position]) for g in groups])
        _, inverse = np.unique(stacked, return_inverse=True)
        cardinality = int(inverse.max()) + 1 if len(inverse) else 1
        offset = 0
        for gi, g in enumerate(groups):
            n = len(g[position])
            codes[gi] = codes[gi] * cardinality + inverse[offset:offset + n]
            offset += n
    return codes


class PlanNode:
    """Base class for all logical operators."""

    def children(self) -> list["PlanNode"]:
        """Child nodes, left to right."""
        raise NotImplementedError

    def compute(self, inputs: list[Relation],
                catalog: Catalog) -> Relation:
        """Produce the output relation from already-evaluated inputs."""
        raise NotImplementedError

    def evaluate(self, catalog: Catalog) -> Relation:
        """Execute the subtree for real and return its relation."""
        inputs = [child.evaluate(catalog) for child in self.children()]
        return self.compute(inputs, catalog)


class Scan(PlanNode):
    """Leaf: read a base table (optionally a column subset)."""

    def __init__(self, table: str, columns: list[str] | None = None):
        self.table = table
        self.columns = columns

    def children(self):
        return []

    def compute(self, inputs, catalog):
        table = catalog.table(self.table)
        names = self.columns if self.columns is not None else \
            table.column_names()
        return {name: table.bat(name).values for name in names}


class Filter(PlanNode):
    """Row selection by a boolean predicate expression."""

    def __init__(self, child: PlanNode, predicate: Expression,
                 keep: list[str] | None = None):
        self.child = child
        self.predicate = predicate
        self.keep = keep

    def children(self):
        return [self.child]

    def compute(self, inputs, catalog):
        rel = inputs[0]
        mask = np.asarray(self.predicate.evaluate(rel), dtype=bool)
        names = self.keep if self.keep is not None else list(rel)
        return {name: rel[name][mask] for name in names}


class Project(PlanNode):
    """Compute named expressions over the child relation."""

    def __init__(self, child: PlanNode, outputs: dict[str, Expression]):
        if not outputs:
            raise PlanError("Project needs at least one output")
        self.child = child
        self.outputs = outputs

    def children(self):
        return [self.child]

    def compute(self, inputs, catalog):
        rel = inputs[0]
        n = relation_rows(rel)
        return {name: _as_column(expr.evaluate(rel), n)
                for name, expr in self.outputs.items()}


class Join(PlanNode):
    """Hash join.  ``how`` is inner, left, semi or anti.

    * ``inner`` / ``left`` output kept probe-side columns plus kept
      build-side columns (left join fills unmatched rows with ``fill``);
    * ``semi`` / ``anti`` output probe-side columns only.

    The probe side is ``left``; the build side is ``right`` — keep the
    smaller input on the right, as the TPC-H builders do.
    """

    def __init__(self, left: PlanNode, right: PlanNode,
                 left_keys: list[str], right_keys: list[str],
                 how: str = "inner",
                 keep_left: list[str] | None = None,
                 keep_right: list[str] | None = None,
                 fill=0):
        if how not in ("inner", "left", "semi", "anti"):
            raise PlanError(f"unknown join type {how!r}")
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError("join needs matching, non-empty key lists")
        self.left = left
        self.right = right
        self.left_keys = left_keys
        self.right_keys = right_keys
        self.how = how
        self.keep_left = keep_left
        self.keep_right = keep_right
        self.fill = fill

    def children(self):
        return [self.left, self.right]

    def compute(self, inputs, catalog):
        lrel, rrel = inputs
        lk, rk = _encode_keys([lrel[k] for k in self.left_keys],
                              [rrel[k] for k in self.right_keys])
        keep_left = (self.keep_left if self.keep_left is not None
                     else list(lrel))
        if self.how in ("semi", "anti"):
            matched = np.isin(lk, rk)
            mask = matched if self.how == "semi" else ~matched
            return {name: lrel[name][mask] for name in keep_left}

        order = np.argsort(rk, kind="stable")
        rk_sorted = rk[order]
        lo = np.searchsorted(rk_sorted, lk, side="left")
        hi = np.searchsorted(rk_sorted, lk, side="right")
        counts = hi - lo
        keep_right = (self.keep_right if self.keep_right is not None
                      else [c for c in rrel if c not in self.right_keys])
        if self.how == "left":
            # unmatched probe rows survive once with filled build columns
            counts = np.maximum(counts, 1)
        total = int(counts.sum())
        li = np.repeat(np.arange(len(lk)), counts)
        starts = np.concatenate(([0], np.cumsum(counts)))[:len(counts)]
        within = np.arange(total) - np.repeat(starts, counts)
        rpos = lo[li] + within
        matched_rows = hi[li] > lo[li]
        if len(order):
            rpos = np.where(matched_rows,
                            np.minimum(rpos, len(order) - 1), 0)
        result: Relation = {name: lrel[name][li] for name in keep_left}
        for name in keep_right:
            if len(order):
                values = rrel[name][order[rpos]]
            else:
                values = np.zeros(total, dtype=rrel[name].dtype)
            if self.how == "left":
                values = np.where(matched_rows, values, self.fill)
            result[name] = values
        return result


_AGG_FUNCS = ("sum", "count", "avg", "min", "max", "count_distinct")


class Aggregate(PlanNode):
    """Grouped aggregation.

    ``aggs`` maps output names to ``(func, expr)`` where ``func`` is one of
    ``sum, count, avg, min, max, count_distinct`` and ``expr`` may be
    ``None`` for ``count``.  With empty ``group_by`` a single row results.
    """

    def __init__(self, child: PlanNode, group_by: list[str],
                 aggs: dict[str, tuple[str, Expression | None]]):
        for name, (func, expr) in aggs.items():
            if func not in _AGG_FUNCS:
                raise PlanError(f"unknown aggregate {func!r} for {name!r}")
            if expr is None and func != "count":
                raise PlanError(f"aggregate {name!r} needs an expression")
        self.child = child
        self.group_by = group_by
        self.aggs = aggs

    def children(self):
        return [self.child]

    def compute(self, inputs, catalog):
        rel = inputs[0]
        n = relation_rows(rel)
        if self.group_by:
            codes = _encode_keys([rel[k] for k in self.group_by])[0]
            _, first_idx, inverse = np.unique(
                codes, return_index=True, return_inverse=True)
            n_groups = len(first_idx)
        else:
            first_idx = np.zeros(0, dtype=np.int64)
            inverse = np.zeros(n, dtype=np.int64)
            n_groups = 1
        result: Relation = {key: rel[key][first_idx]
                            for key in self.group_by}
        for name, (func, expr) in self.aggs.items():
            result[name] = self._compute_agg(func, expr, rel, inverse,
                                             n_groups, n)
        return result

    def _compute_agg(self, func, expr, rel, inverse, n_groups, n_rows):
        if func == "count":
            return np.bincount(inverse, minlength=n_groups).astype(np.int64)
        values = _as_column(expr.evaluate(rel), n_rows)
        if func == "sum":
            return np.bincount(inverse, weights=values.astype(np.float64),
                               minlength=n_groups)
        if func == "avg":
            sums = np.bincount(inverse, weights=values.astype(np.float64),
                               minlength=n_groups)
            counts = np.bincount(inverse, minlength=n_groups)
            return sums / np.maximum(counts, 1)
        if func in ("min", "max"):
            fill = np.inf if func == "min" else -np.inf
            out = np.full(n_groups, fill, dtype=np.float64)
            ufunc = np.minimum if func == "min" else np.maximum
            ufunc.at(out, inverse, values.astype(np.float64))
            return out
        # count_distinct: count unique (group, value) pairs per group
        if n_rows == 0:
            return np.zeros(n_groups, dtype=np.int64)
        pair = _encode_keys([inverse, np.asarray(values)])[0]
        _, pair_idx = np.unique(pair, return_index=True)
        return np.bincount(inverse[pair_idx],
                           minlength=n_groups).astype(np.int64)


class IndexLookup(PlanNode):
    """Point lookup through a (simulated) index on one key column.

    Real execution is an equality filter; the *cost* difference from
    :class:`Filter` is in the profiler: an index descent touches a
    handful of pages instead of streaming the column (see
    :meth:`repro.db.plan.Profiler._on_index_lookup`).  This is the OLTP
    substrate for the mixed-workload extension.
    """

    def __init__(self, table: str, key_column: str, value,
                 keep: list[str] | None = None):
        self.table = table
        self.key_column = key_column
        self.value = value
        self.keep = keep

    def children(self):
        return []

    def compute(self, inputs, catalog):
        table = catalog.table(self.table)
        env = table.env()
        mask = env[self.key_column] == self.value
        names = self.keep if self.keep is not None else list(env)
        return {name: env[name][mask] for name in names}

    def match_fraction(self, catalog: Catalog) -> float:
        """Position of the first matching row as a fraction of the table
        (drives which page the simulated index descent lands on)."""
        table = catalog.table(self.table)
        keys = table.env()[self.key_column]
        matches = np.flatnonzero(keys == self.value)
        if len(matches) == 0 or len(keys) == 0:
            return 0.0
        return float(matches[0]) / len(keys)


class Distinct(PlanNode):
    """Unique rows over the listed columns."""

    def __init__(self, child: PlanNode, columns: list[str]):
        if not columns:
            raise PlanError("Distinct needs at least one column")
        self.child = child
        self.columns = columns

    def children(self):
        return [self.child]

    def compute(self, inputs, catalog):
        rel = inputs[0]
        codes = _encode_keys([rel[c] for c in self.columns])[0]
        _, idx = np.unique(codes, return_index=True)
        idx.sort()
        return {c: rel[c][idx] for c in self.columns}


class OrderBy(PlanNode):
    """Sort by one or more keys; ``ascending`` aligns with ``keys``."""

    def __init__(self, child: PlanNode, keys: list[str],
                 ascending: list[bool] | None = None):
        if not keys:
            raise PlanError("OrderBy needs at least one key")
        self.child = child
        self.keys = keys
        self.ascending = ascending if ascending is not None \
            else [True] * len(keys)
        if len(self.ascending) != len(keys):
            raise PlanError("ascending list must match keys")

    def children(self):
        return [self.child]

    def compute(self, inputs, catalog):
        rel = inputs[0]
        # lexsort uses the last key as primary: feed reversed, negate descs
        sort_cols = []
        for key, asc in zip(reversed(self.keys), reversed(self.ascending)):
            col = rel[key]
            sort_cols.append(col if asc else -col.astype(np.float64))
        order = np.lexsort(sort_cols)
        return {name: arr[order] for name, arr in rel.items()}


class Limit(PlanNode):
    """Keep the first ``n`` rows of the child."""

    def __init__(self, child: PlanNode, n: int):
        if n < 0:
            raise PlanError("limit must be non-negative")
        self.child = child
        self.n = n

    def children(self):
        return [self.child]

    def compute(self, inputs, catalog):
        rel = inputs[0]
        return {name: arr[:self.n] for name, arr in rel.items()}
