"""Query profiles: staged, cost-annotated descriptions of executed plans.

The profiler walks a logical plan once, **really evaluating** every node on
the generated data, and emits a sequence of :class:`StageProfile` records —
the MAL-like horizontal-parallelism stages MonetDB would run (compare the
paper's Fig 3/6).  Each stage knows:

* which **base columns** it scans (page footprints come from the BATs),
* which earlier stages' **intermediates** it consumes (partitioned) and
  which it reads **fully per worker** (shared hash tables),
* its **output bytes** (from the real intermediate sizes, scaled to the
  simulated database size) and **compute cycles**.

Profiles are independent of the worker count, so one profile per query is
computed once and reused by every client; the compiler in
:mod:`repro.db.cost` instantiates it for a concrete number of workers.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PlanError
from .catalog import Catalog
from .cost import CostModel
from .operators import (Aggregate, Distinct, Filter, IndexLookup, Join,
                        Limit, OrderBy, PlanNode, Project, Relation, Scan,
                        relation_bytes, relation_rows)


@dataclass(frozen=True)
class StageProfile:
    """One horizontally parallel (or serial) execution stage.

    ``point_reads`` carries index-style accesses: ``(table, column,
    row_fraction, n_pages)`` entries the compiler resolves to a few
    concrete pages instead of a partitioned column stream.
    """

    label: str
    parallel: bool = True
    base_reads: tuple[tuple[str, str], ...] = ()
    point_reads: tuple[tuple[str, str, float, int], ...] = ()
    consumes: tuple[int, ...] = ()
    shared_consumes: tuple[int, ...] = ()
    output_bytes: float = 0.0
    output_per_worker: bool = False
    cycles: float = 0.0


@dataclass
class QueryProfile:
    """A fully profiled query, ready for compilation into work items."""

    name: str
    stages: list[StageProfile]
    result: Relation
    result_rows: int
    input_sim_bytes: float = 0.0

    @property
    def total_cycles(self) -> float:
        """Total compute across all stages."""
        return sum(s.cycles for s in self.stages)


class _Out:
    """Profiler bookkeeping for one evaluated node."""

    __slots__ = ("producer", "table", "rel", "sim_bytes")

    def __init__(self, producer: int | None, table: str | None,
                 rel: Relation, sim_bytes: float):
        self.producer = producer
        self.table = table
        self.rel = rel
        self.sim_bytes = sim_bytes


class Profiler:
    """Evaluates a plan tree and produces its :class:`QueryProfile`."""

    def __init__(self, catalog: Catalog, byte_scale: float,
                 cost: CostModel | None = None):
        if byte_scale <= 0:
            raise PlanError("byte_scale must be positive")
        self.catalog = catalog
        self.byte_scale = byte_scale
        self.cost = cost or CostModel()
        self._stages: list[StageProfile] = []
        self._input_sim_bytes = 0.0

    # ------------------------------------------------------------------

    def profile(self, root: PlanNode, name: str) -> QueryProfile:
        """Run the tree and emit the staged profile."""
        self._stages = []
        self._input_sim_bytes = 0.0
        out = self._walk(root)
        if out.producer is None:
            # bare table scan as a query: materialise it through one stage
            out = self._stage_for_passthrough(out)
        self._stages.append(StageProfile(
            label="sql.resultSet", parallel=False,
            consumes=(out.producer,),
            output_bytes=0.0,
            cycles=self.cost.result_cycles(out.sim_bytes)))
        return QueryProfile(
            name=name,
            stages=self._stages,
            result=out.rel,
            result_rows=relation_rows(out.rel),
            input_sim_bytes=self._input_sim_bytes,
        )

    # ------------------------------------------------------------------

    def _emit(self, stage: StageProfile) -> int:
        self._stages.append(stage)
        return len(self._stages) - 1

    def _sim_bytes(self, rel: Relation) -> float:
        return relation_bytes(rel) * self.byte_scale

    def _inputs_of(self, out: _Out,
                   columns: set[str]) -> tuple[tuple, tuple, float]:
        """Resolve one child as (base_reads, consumes, input_sim_bytes)."""
        if out.producer is None:
            table = self.catalog.table(out.table)
            cols = tuple(sorted(c for c in columns if c in table))
            if not cols:
                # predicate-less passthrough: read every scanned column
                cols = tuple(sorted(out.rel))
            reads = tuple((out.table, c) for c in cols)
            sim = sum(table.bat(c).sim_bytes for _, c in reads)
            self._input_sim_bytes += sim
            return reads, (), sim
        return (), (out.producer,), out.sim_bytes

    def _walk(self, node: PlanNode) -> _Out:
        handler = _HANDLERS.get(type(node))
        if handler is None:
            raise PlanError(f"cannot profile node type {type(node).__name__}")
        child_outs = [self._walk(child) for child in node.children()]
        return handler(self, node, child_outs)

    # ------------------------------------------------------------------
    # per-node handlers
    # ------------------------------------------------------------------

    def _on_scan(self, node: Scan, child_outs) -> _Out:
        rel = node.compute([], self.catalog)
        return _Out(None, node.table, rel, self._sim_bytes(rel))

    def _on_index_lookup(self, node: IndexLookup, child_outs) -> _Out:
        rel = node.compute([], self.catalog)
        fraction = node.match_fraction(self.catalog)
        table = self.catalog.table(node.table)
        columns = sorted(set(rel) | {node.key_column})
        columns = [c for c in columns if c in table]
        point_reads = tuple(
            (node.table, column, fraction, 1) for column in columns)
        out_bytes = self._sim_bytes(rel)
        idx = self._emit(StageProfile(
            label=getattr(node, "mal_name", "index.lookup"),
            parallel=False,
            point_reads=point_reads,
            output_bytes=out_bytes,
            cycles=self.cost.index_lookup_cycles()))
        return _Out(idx, None, rel, out_bytes)

    def _stage_for_passthrough(self, out: _Out) -> _Out:
        reads, consumes, sim = self._inputs_of(out, set(out.rel))
        idx = self._emit(StageProfile(
            label="algebra.projection", base_reads=reads, consumes=consumes,
            output_bytes=self._sim_bytes(out.rel),
            cycles=self.cost.project_cycles(sim)))
        return _Out(idx, None, out.rel, self._sim_bytes(out.rel))

    def _on_filter(self, node: Filter, child_outs) -> _Out:
        child = child_outs[0]
        rel = node.compute([child.rel], self.catalog)
        needed = set(node.predicate.columns())
        if node.keep is not None:
            needed |= set(node.keep)
        else:
            needed |= set(child.rel)
        reads, consumes, sim = self._inputs_of(child, needed)
        out_bytes = self._sim_bytes(rel)
        idx = self._emit(StageProfile(
            label=getattr(node, "mal_name", "algebra.select"),
            base_reads=reads, consumes=consumes,
            output_bytes=out_bytes,
            cycles=self.cost.select_cycles(sim)))
        return _Out(idx, None, rel, out_bytes)

    def _on_project(self, node: Project, child_outs) -> _Out:
        child = child_outs[0]
        rel = node.compute([child.rel], self.catalog)
        needed = set()
        for expr in node.outputs.values():
            needed |= expr.columns()
        reads, consumes, sim = self._inputs_of(child, needed)
        out_bytes = self._sim_bytes(rel)
        idx = self._emit(StageProfile(
            label=getattr(node, "mal_name", "algebra.projection"),
            base_reads=reads, consumes=consumes,
            output_bytes=out_bytes,
            cycles=self.cost.project_cycles(sim)))
        return _Out(idx, None, rel, out_bytes)

    def _on_join(self, node: Join, child_outs) -> _Out:
        left, right = child_outs
        rel = node.compute([left.rel, right.rel], self.catalog)
        # build side: hash the right input
        build_needed = set(node.right_keys)
        if node.how in ("inner", "left"):
            keep_right = (node.keep_right if node.keep_right is not None
                          else [c for c in right.rel
                                if c not in node.right_keys])
            build_needed |= set(keep_right)
        b_reads, b_consumes, b_sim = self._inputs_of(right, build_needed)
        hash_bytes = self.cost.hash_table_bytes(b_sim)
        build_idx = self._emit(StageProfile(
            label=getattr(node, "mal_name_build", "join.build"),
            base_reads=b_reads, consumes=b_consumes,
            output_bytes=hash_bytes,
            cycles=self.cost.join_build_cycles(b_sim)))
        # probe side
        probe_needed = set(node.left_keys)
        probe_needed |= set(node.keep_left if node.keep_left is not None
                            else list(left.rel))
        p_reads, p_consumes, p_sim = self._inputs_of(left, probe_needed)
        out_bytes = self._sim_bytes(rel)
        probe_idx = self._emit(StageProfile(
            label=getattr(node, "mal_name", "algebra.join"),
            base_reads=p_reads, consumes=p_consumes,
            shared_consumes=(build_idx,),
            output_bytes=out_bytes,
            cycles=self.cost.join_probe_cycles(p_sim, hash_bytes)))
        return _Out(probe_idx, None, rel, out_bytes)

    def _group_like(self, node, child_outs, needed: set[str],
                    rel: Relation, label: str) -> _Out:
        child = child_outs[0]
        reads, consumes, sim = self._inputs_of(child, needed)
        out_bytes = self._sim_bytes(rel)
        partial_idx = self._emit(StageProfile(
            label=f"{label}.partial",
            base_reads=reads, consumes=consumes,
            output_bytes=out_bytes, output_per_worker=True,
            cycles=self.cost.agg_cycles(sim)))
        final_idx = self._emit(StageProfile(
            label=f"{label}.final", parallel=False,
            consumes=(partial_idx,),
            output_bytes=out_bytes,
            cycles=self.cost.agg_final_cycles(out_bytes)))
        return _Out(final_idx, None, rel, out_bytes)

    def _on_aggregate(self, node: Aggregate, child_outs) -> _Out:
        child = child_outs[0]
        rel = node.compute([child.rel], self.catalog)
        needed = set(node.group_by)
        for _, expr in node.aggs.values():
            if expr is not None:
                needed |= expr.columns()
        label = getattr(node, "mal_name", "aggr.group")
        return self._group_like(node, child_outs, needed, rel, label)

    def _on_distinct(self, node: Distinct, child_outs) -> _Out:
        child = child_outs[0]
        rel = node.compute([child.rel], self.catalog)
        label = getattr(node, "mal_name", "algebra.unique")
        return self._group_like(node, child_outs, set(node.columns), rel,
                                label)

    def _on_orderby(self, node: OrderBy, child_outs) -> _Out:
        child = child_outs[0]
        rel = node.compute([child.rel], self.catalog)
        needed = set(child.rel)
        reads, consumes, sim = self._inputs_of(child, needed)
        rows = max(relation_rows(child.rel), 2)
        out_bytes = self._sim_bytes(rel)
        partial_idx = self._emit(StageProfile(
            label="algebra.sort.partial",
            base_reads=reads, consumes=consumes,
            output_bytes=out_bytes, output_per_worker=True,
            cycles=self.cost.sort_cycles(sim, rows)))
        final_idx = self._emit(StageProfile(
            label="algebra.sort.merge", parallel=False,
            consumes=(partial_idx,),
            output_bytes=out_bytes,
            cycles=self.cost.agg_final_cycles(out_bytes)))
        return _Out(final_idx, None, rel, out_bytes)

    def _on_limit(self, node: Limit, child_outs) -> _Out:
        child = child_outs[0]
        rel = node.compute([child.rel], self.catalog)
        if child.producer is None:
            child = self._stage_for_passthrough(child)
        out_bytes = self._sim_bytes(rel)
        idx = self._emit(StageProfile(
            label="algebra.slice", parallel=False,
            consumes=(child.producer,),
            output_bytes=out_bytes,
            cycles=self.cost.result_cycles(out_bytes)))
        return _Out(idx, None, rel, out_bytes)


_HANDLERS = {
    Scan: Profiler._on_scan,
    IndexLookup: Profiler._on_index_lookup,
    Filter: Profiler._on_filter,
    Project: Profiler._on_project,
    Join: Profiler._on_join,
    Aggregate: Profiler._on_aggregate,
    Distinct: Profiler._on_distinct,
    OrderBy: Profiler._on_orderby,
    Limit: Profiler._on_limit,
}


def profile_query(root: PlanNode, catalog: Catalog, name: str,
                  byte_scale: float,
                  cost: CostModel | None = None) -> QueryProfile:
    """Convenience wrapper: profile ``root`` in one call."""
    return Profiler(catalog, byte_scale, cost).profile(root, name)
