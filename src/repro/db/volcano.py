"""Volcano-style horizontal parallelism: staged query execution.

A :class:`QueryExecution` is a :class:`~repro.opsys.thread.WorkSource` fed
by a compiled query.  It publishes one stage's partitions at a time; workers
pull partitions, and when the last partition of a stage completes the next
stage is published (the dataflow barrier between MAL instruction groups —
compare the paper's Fig 6 where ``thetasubselect`` fully precedes
``subselect``).  Workers that find no partition block and are woken at the
next stage, which is exactly the wake-up point where the OS re-places them
(the source of the migrations in Figs 5/16).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Sequence

from ..opsys.inventory import DEFAULT_TENANT
from ..opsys.system import OperatingSystem
from ..opsys.thread import SimThread
from ..opsys.workitem import WorkItem
from ..sim.tracing import QueryRecord
from .cost import CompiledQuery


class QueryExecution:
    """One running query: a staged work source plus its worker pool."""

    def __init__(self, compiled: CompiledQuery, os: OperatingSystem,
                 client_id: int = 0,
                 on_done: Callable[["QueryExecution"], None] | None = None):
        self.compiled = compiled
        self.os = os
        self.client_id = client_id
        self.on_done = on_done
        self.query_name = compiled.name
        self.start_time: float | None = None
        self.finish_time: float | None = None
        self._stage_idx = -1
        self._pending: deque[WorkItem] = deque()
        self._outstanding = 0
        self._finished = False
        self._waiters: list[SimThread] = []
        self._workers: list[SimThread] = []
        self._workers_alive = 0

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self, n_workers: int,
              pinned_cores: Sequence[int | None] | None = None,
              pinned_nodes: Sequence[int | None] | None = None,
              managed: bool = True,
              tenant: str = DEFAULT_TENANT) -> None:
        """Publish the first stage and spawn the worker pool."""
        if self.start_time is not None:
            raise RuntimeError("query already started")
        self.start_time = self.os.now
        self._advance_stage()
        for w in range(n_workers):
            pin = pinned_cores[w] if pinned_cores is not None else None
            node = pinned_nodes[w] if pinned_nodes is not None else None
            thread = self.os.spawn_thread(
                self, name=f"{self.query_name}.w{w}",
                process_id=self.client_id, pinned_core=pin,
                pinned_node=node, managed=managed,
                on_exit=self._worker_exited, tenant=tenant)
            self._workers.append(thread)
            self._workers_alive += 1

    @property
    def workers(self) -> list[SimThread]:
        """The worker pool (for trace analysis)."""
        return list(self._workers)

    @property
    def elapsed(self) -> float:
        """Query latency once finished."""
        if self.start_time is None or self.finish_time is None:
            raise RuntimeError("query has not finished")
        return self.finish_time - self.start_time

    # ------------------------------------------------------------------
    # WorkSource protocol
    # ------------------------------------------------------------------

    def next_item(self, thread: SimThread) -> WorkItem | None:
        """Hand the next partition of the current stage, if any."""
        if self._pending:
            return self._pending.popleft()
        return None

    @property
    def finished(self) -> bool:
        """True once every stage has completed."""
        return self._finished

    def register_waiter(self, thread: SimThread) -> None:
        """Called by the scheduler when a worker blocks."""
        self._waiters.append(thread)

    # ------------------------------------------------------------------
    # internal
    # ------------------------------------------------------------------

    def _advance_stage(self) -> None:
        self._stage_idx += 1
        if self._stage_idx >= self.compiled.n_stages:
            self._finish()
            return
        specs = self.compiled.stage_items[self._stage_idx]
        self._outstanding = len(specs)
        for spec in specs:
            self._pending.append(WorkItem(
                label=spec.label, reads=spec.reads, writes=spec.writes,
                cycles=spec.cycles, query_name=self.query_name,
                on_complete=self._item_done))
        self._wake_waiters()

    def _item_done(self, item: WorkItem) -> None:
        self._outstanding -= 1
        if self._outstanding == 0 and not self._pending:
            self._advance_stage()

    def _wake_waiters(self) -> None:
        waiters, self._waiters = self._waiters, []
        for thread in waiters:
            self.os.wake(thread)

    def _finish(self) -> None:
        self._finished = True
        self.finish_time = self.os.now
        elapsed = self.finish_time - self.start_time
        self.os.tracer.emit(QueryRecord(
            time=self.finish_time, client_id=self.client_id,
            query_name=self.query_name, start_time=self.start_time,
            elapsed=elapsed))
        obs = self.os.obs
        obs.metrics.counter("db.queries").inc()
        obs.metrics.histogram("db.query_seconds").observe(elapsed)
        if obs.enabled:
            obs.spans.add_complete(
                f"query:{self.query_name}", start=self.start_time,
                duration=elapsed, track="sim",
                tid=1000 + self.client_id,
                args={"client": self.client_id,
                      "workers": len(self._workers)})
        self._wake_waiters()
        if self.on_done is not None:
            self.on_done(self)

    def _worker_exited(self, thread: SimThread) -> None:
        self._workers_alive -= 1
        if self._workers_alive == 0:
            # all workers gone: drop this query's intermediates
            self.os.vm.forget(self.compiled.intermediate_pages)
