"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class.  Each layer of the system has its own
subclass to make failures attributable: the simulator, the simulated OS, the
database engines and the allocation mechanism each raise their own family.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The discrete-event simulation engine detected an invalid operation."""


class SchedulerError(ReproError):
    """The simulated OS scheduler was driven into an invalid state."""


class HardwareError(ReproError):
    """The simulated hardware (caches, memory, interconnect) was misused."""


class DatabaseError(ReproError):
    """A database engine, plan or operator failed."""


class PlanError(DatabaseError):
    """A physical plan is malformed (bad stage wiring, unknown column...)."""


class WorkloadError(ReproError):
    """A workload definition or generator was misconfigured."""


class PetriNetError(ReproError):
    """The PrT net was built or fired inconsistently."""


class AllocationError(ReproError):
    """The core-allocation mechanism attempted an impossible allocation."""
