"""Exception hierarchy for the repro package.

All exceptions raised by the library derive from :class:`ReproError`, so
callers can catch a single base class.  Each layer of the system has its own
subclass to make failures attributable: the simulator, the simulated OS, the
database engines and the allocation mechanism each raise their own family.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the repro library."""


class ConfigError(ReproError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError):
    """The discrete-event simulation engine detected an invalid operation."""


class SchedulerError(ReproError):
    """The simulated OS scheduler was driven into an invalid state."""


class HardwareError(ReproError):
    """The simulated hardware (caches, memory, interconnect) was misused."""


class DatabaseError(ReproError):
    """A database engine, plan or operator failed."""


class PlanError(DatabaseError):
    """A physical plan is malformed (bad stage wiring, unknown column...)."""


class WorkloadError(ReproError):
    """A workload definition or generator was misconfigured."""


class PetriNetError(ReproError):
    """The PrT net was built or fired inconsistently."""


class AllocationError(ReproError):
    """The core-allocation mechanism attempted an impossible allocation."""


class LeaseError(AllocationError):
    """A core-lease operation conflicts with the inventory's bookkeeping:
    acquiring a core another tenant holds, releasing a core the tenant
    does not hold, or shrinking a tenant below its ``min_cores`` floor."""


class VerificationError(ReproError):
    """Static verification of the mechanism failed.

    Raised by the :mod:`repro.verify` analyses and by the controller's
    pre-flight checks.  Subclasses name the property that was violated so
    callers (and CI logs) can attribute the failure without parsing text.
    """


class ModelConfigurationError(VerificationError):
    """The configured model contradicts itself or the machine: inverted
    thresholds (``th_min >= th_max``) or core bounds that cannot fit
    (``min_cores > n_total`` ...)."""


class InvariantViolationError(VerificationError):
    """A P- or T-invariant the model depends on does not hold structurally
    (e.g. a place is not covered by any semi-positive P-invariant, so its
    tokens can leak or accumulate)."""


class GuardCoverageError(VerificationError):
    """The entry guards do not partition the metric domain: some metric
    value enables zero (gap) or several (overlap) transitions."""


class ReachabilityError(VerificationError):
    """Bounded reachability found a marking where the ``Checks`` token does
    not return, or a core count outside ``[min_cores, n_total]``."""


class DeterminismLintError(VerificationError):
    """The determinism lint found a reproducibility hazard (wall-clock
    call, unseeded RNG, mutable default argument, float equality)."""


class ProtocolLintError(VerificationError):
    """A protocol analyzer found code violating the lease/spawn/ordering
    discipline: an unpaired or rollback-free multi-step acquisition, a
    lease or cpuset mutation outside the actuator, an unpicklable object
    on a spawn/snapshot path, or set iteration order reaching a trace."""
