"""Experiment harnesses: one module per figure of the paper's evaluation.

Every module exposes a ``run(...)`` function returning a result object with
``rows()``/``table()`` for human-readable output and named series for
programmatic checks.  The benchmark suite under ``benchmarks/`` is a thin
wrapper that executes these and prints the tables; EXPERIMENTS.md records
the paper-vs-measured comparison.
"""

from .common import SystemUnderTest, build_system, run_phased_workload

__all__ = ["SystemUnderTest", "build_system", "run_phased_workload"]
