"""Ablations over the design choices DESIGN.md calls out.

Three studies, each over the concurrent ~45 %-selectivity scan workload:

* **thresholds** — the paper states (§V) that lowering ``thmin`` leaves
  too many cores idle and raising ``thmax`` causes contention; the sweep
  quantifies both directions around the chosen (10, 70);
* **strategies** — CPU-load (paper default) vs HT/IMC (paper §V-B) vs
  the retired-work ``useful_load`` variant: the throughput/traffic
  trade-off each picks;
* **elastic parallelism** — ``workers_follow_mask`` on/off: how much of
  the mechanism's benefit comes from queries admitting fewer workers
  under a partial mask (on) versus pure placement (off);
* **AutoNUMA** — the kernel-side alternative [24]: OS-driven page
  migration toward the accessing node, with and without the mechanism,
  versus the mechanism alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..config import EngineConfig, SchedulerConfig
from ..core.strategies import CpuLoadStrategy
from ..db.clients import repeat_stream
from .common import build_system

WORKLOAD = "sel_45pct"


@dataclass(frozen=True)
class AblationCell:
    """One configuration's outcome."""

    throughput: float
    ht_rate: float
    mean_cores: float
    stable_fraction: float


@dataclass
class AblationResult:
    """Cells per configuration label, with a named study."""

    study: str
    cells: dict[str, AblationCell] = field(default_factory=dict)

    def rows(self) -> list[list[object]]:
        """One row per configuration."""
        return [[label, cell.throughput, cell.ht_rate / 1e9,
                 cell.mean_cores, f"{cell.stable_fraction:.0%}"]
                for label, cell in self.cells.items()]

    def table(self) -> str:
        """The ablation as a text table."""
        return render_table(
            ["config", "queries/s", "HT GB/s", "mean cores", "stable"],
            self.rows(), title=f"Ablation - {self.study}")


def _measure(sut, n_clients: int, reps: int) -> AblationCell:
    sut.mark()
    result = sut.run_clients(n_clients, repeat_stream(WORKLOAD, reps))
    makespan = max(result.makespan, 1e-9)
    if sut.controller is not None:
        report = sut.controller.lonc.report()
        mean_cores = report.mean_cores
        stable = report.stable_fraction
    else:
        mean_cores = float(sut.os.topology.n_cores)
        stable = 0.0
    return AblationCell(
        throughput=result.throughput,
        ht_rate=sut.delta("ht_tx_bytes") / makespan,
        mean_cores=mean_cores,
        stable_fraction=stable,
    )


def thresholds(n_clients: int = 16, reps: int = 3, scale: float = 0.01,
               sim_scale: float = 1.0) -> AblationResult:
    """Sweep (thmin, thmax) around the paper's (10, 70)."""
    result = AblationResult(study="CPU-load thresholds")
    for th_min, th_max in ((2.0, 70.0), (10.0, 70.0), (10.0, 95.0),
                           (25.0, 70.0)):
        sut = build_system(
            engine="monetdb", mode="adaptive",
            strategy=CpuLoadStrategy(th_min=th_min, th_max=th_max),
            scale=scale, sim_scale=sim_scale)
        result.cells[f"th=({th_min:g},{th_max:g})"] = _measure(
            sut, n_clients, reps)
    return result


def strategies(n_clients: int = 16, reps: int = 3, scale: float = 0.01,
               sim_scale: float = 1.0) -> AblationResult:
    """Compare the three transition strategies under the adaptive mode."""
    result = AblationResult(study="transition strategies")
    for strategy in ("cpu_load", "ht_imc", "useful_load"):
        sut = build_system(engine="monetdb", mode="adaptive",
                           strategy=strategy, scale=scale,
                           sim_scale=sim_scale)
        result.cells[strategy] = _measure(sut, n_clients, reps)
    return result


def autonuma(n_clients: int = 16, reps: int = 3, scale: float = 0.01,
             sim_scale: float = 1.0) -> AblationResult:
    """OS / OS+AutoNUMA / adaptive / adaptive+AutoNUMA."""
    result = AblationResult(study="AutoNUMA page migration")
    balancing = SchedulerConfig(numa_balancing=True)
    configs = [
        ("OS", None, None),
        ("OS+autonuma", None, balancing),
        ("adaptive", "adaptive", None),
        ("adaptive+autonuma", "adaptive", balancing),
    ]
    for label, mode, sched in configs:
        sut = build_system(engine="monetdb", mode=mode, scheduler=sched,
                           scale=scale, sim_scale=sim_scale)
        result.cells[label] = _measure(sut, n_clients, reps)
    return result


def elastic_parallelism(n_clients: int = 16, reps: int = 3,
                        scale: float = 0.01,
                        sim_scale: float = 1.0) -> AblationResult:
    """workers_follow_mask on/off under the adaptive mode, plus the OS."""
    result = AblationResult(study="elastic parallelism")
    sut = build_system(engine="monetdb", mode=None, scale=scale,
                       sim_scale=sim_scale)
    result.cells["OS"] = _measure(sut, n_clients, reps)
    for follow in (True, False):
        sut = build_system(
            engine="monetdb", mode="adaptive",
            engine_config=EngineConfig(workers_follow_mask=follow,
                                       loader_node=0),
            scale=scale, sim_scale=sim_scale)
        label = "adaptive/elastic" if follow else "adaptive/fixed-16"
        result.cells[label] = _measure(sut, n_clients, reps)
    return result
