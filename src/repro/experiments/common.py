"""Shared plumbing for the per-figure experiment harnesses.

:func:`build_system` assembles one complete system under test — simulated
machine, OS, database engine, registered TPC-H queries and (optionally) the
elastic controller — from short string specs, so every harness reads like
the experiment description in the paper:

    sut = build_system(engine="monetdb", mode="adaptive")
    result = sut.run_clients(n_clients=256, stream=repeat_stream("q6", 1))

Sweep harnesses share their warm-up prefix through the snapshot/fork
trio: :func:`warm_system` builds (and optionally warms) one controllerless
system and captures it as a :class:`~repro.sim.SimState`,
:func:`fork_system` materialises independent copies — one per sweep
cell — and :func:`attach_controller` puts each cell's mode on its fork:

    base = warm_system(clients=16, stream=repeat_stream("q6", 1))
    for mode in (None, "dense", "sparse", "adaptive"):
        sut = attach_controller(fork_system(base), mode)
        ...measure sut...

Forked cells are bit-identical to cold runs that re-simulate the prefix
from scratch (golden traces and property tests pin this), and the
captured base pickles across the ``repro run --parallel N`` spawn pool.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from ..config import (ControllerConfig, EngineConfig, MachineConfig,
                      SchedulerConfig)
from ..core import ElasticController, make_mode, make_strategy
from ..core.strategies import TransitionStrategy
from ..db.cost import CostModel
from ..db.clients import ClientPool, WorkloadResult, repeat_stream
from ..db.engine import DatabaseEngine, MonetDBLike
from ..db.morsel import MorselEngine
from ..db.numa_aware import NumaAwareEngine
from ..errors import ConfigError
from ..hardware.counters import CounterSnapshot
from ..hardware.prebuilt import opteron_8387
from ..opsys.system import OperatingSystem
from ..opsys.thread import reset_thread_ids
from ..sim.state import SimState
from ..sim.tracing import PlacementRecord, TraceRecorder
from ..workloads.selectivity import (SELECTIVITY_LEVELS, selectivity_name,
                                     selectivity_query)
from ..workloads.tpch import build_queries, generate
from ..workloads.tpch.datagen import TpchDataset

#: dataset cache — generation and profiling dominate harness start-up, and
#: datasets are immutable, so share them across systems under test
_DATASETS: dict[tuple[float, float, int], TpchDataset] = {}


def dataset_for(scale: float = 0.01, sim_scale: float = 1.0,
                seed: int = 42) -> TpchDataset:
    """Generate (or fetch the cached) TPC-H dataset."""
    key = (scale, sim_scale, seed)
    if key not in _DATASETS:
        _DATASETS[key] = generate(scale=scale, sim_scale=sim_scale,
                                  seed=seed)
    return _DATASETS[key]


@dataclass
class SystemUnderTest:
    """One assembled machine + engine + (optional) controller."""

    os: OperatingSystem
    engine: DatabaseEngine
    controller: ElasticController | None
    dataset: TpchDataset
    mode_name: str | None
    _baseline: CounterSnapshot | None = field(default=None, repr=False)

    @property
    def label(self) -> str:
        """Display label, e.g. ``monetdb/adaptive`` or ``monetdb/OS``."""
        return f"{self.engine.name}/{self.mode_name or 'OS'}"

    # ------------------------------------------------------------------

    def mark(self) -> None:
        """Snapshot counters; deltas are measured from the last mark."""
        self._baseline = self.os.counters.snapshot(self.os.now)

    def delta(self, name: str, index=None) -> float:
        """Counter increase since the last :meth:`mark` (whole family when
        ``index`` is omitted)."""
        current = self.os.counters.snapshot(self.os.now)
        if self._baseline is None:
            if index is None:
                return current.total(name)
            return current.get(name, index)
        if index is None:
            return current.delta_total(self._baseline, name)
        return current.delta(self._baseline, name, index)

    def delta_by_index(self, name: str) -> dict:
        """Per-index counter increases since the last mark."""
        current = self.os.counters.by_index(name)
        if self._baseline is None:
            return dict(current)
        return {i: v - self._baseline.get(name, i)
                for i, v in current.items()}

    # ------------------------------------------------------------------

    def run_clients(self, n_clients: int,
                    stream: Callable[[int], Iterable[str]],
                    ) -> WorkloadResult:
        """Run one closed-loop client pool to completion."""
        pool = ClientPool(self.engine, n_clients, stream)
        result = pool.run()
        if self.controller is not None:
            self.controller.kick()
        return result

    def run_phases(self, phases: Iterable[str], n_clients: int,
                   repetitions: int = 1) -> list[WorkloadResult]:
        """The paper's stable-phases protocol: every phase is all clients
        running one query ``repetitions`` times, draining in between."""
        results = []
        for query_name in phases:
            results.append(self.run_clients(
                n_clients, repeat_stream(query_name, repetitions)))
        return results

    def ht_imc_ratio(self) -> float:
        """HT/IMC traffic ratio since the last mark."""
        imc = self.delta("imc_bytes")
        if imc <= 0:
            return 0.0
        return self.delta("ht_tx_bytes") / imc

    def query_ht_imc_ratio(self, query_name: str) -> float:
        """Per-query HT/IMC ratio since the last mark (Fig 19's metric)."""
        imc = self.delta("query_imc_bytes", query_name)
        if imc <= 0:
            return 0.0
        return self.delta("query_ht_bytes", query_name) / imc


def build_system(engine: str = "monetdb",
                 mode: str | None = None,
                 strategy: str | TransitionStrategy = "cpu_load",
                 scale: float = 0.01,
                 sim_scale: float = 1.0,
                 seed: int = 42,
                 register: str = "tpch",
                 machine: MachineConfig | None = None,
                 scheduler: SchedulerConfig | None = None,
                 controller: ControllerConfig | None = None,
                 engine_config: EngineConfig | None = None,
                 cost_model: CostModel | None = None,
                 record_placements: bool = False,
                 keepalive: bool = False,
                 obs=None) -> SystemUnderTest:
    """Assemble a complete system under test.

    Parameters
    ----------
    engine:
        ``"monetdb"`` (OS-scheduled Volcano), ``"sqlserver"``
        (NUMA-aware, partitioned + node-affined) or ``"morsel"``
        (HyPer-style pinned workers with dynamic morsel dispatch).
    mode:
        ``None`` for the uncontrolled baseline (all cores exposed), or one
        of ``"dense"``, ``"sparse"``, ``"adaptive"``.
    strategy:
        ``"cpu_load"``, ``"ht_imc"`` or ``"useful_load"``; thresholds come
        from the strategy defaults (10/70 and 0.1/0.4, per the paper).
    register:
        ``"tpch"`` registers q1..q22 plus the selectivity sweep;
        ``"none"`` leaves the registry empty (caller registers plans).
    record_placements:
        Placement records are high-volume; only trace experiments ask for
        them.
    obs:
        A :class:`~repro.obs.Recorder` for telemetry; defaults to the
        process-wide recorder (the null one unless installed).
    """
    reset_thread_ids()
    tracer = TraceRecorder()
    if not record_placements:
        tracer.mute(PlacementRecord)
    os_ = OperatingSystem(machine or opteron_8387(), scheduler,
                          tracer=tracer, obs=obs)
    dataset = dataset_for(scale, sim_scale, seed)
    catalog = dataset.catalog()

    if engine == "monetdb":
        eng: DatabaseEngine = MonetDBLike(os_, catalog, dataset.byte_scale,
                                          engine_config, cost_model)
    elif engine == "sqlserver":
        eng = NumaAwareEngine(os_, catalog, dataset.byte_scale,
                              engine_config, cost_model)
    elif engine == "morsel":
        eng = MorselEngine(os_, catalog, dataset.byte_scale,
                           engine_config, cost_model)
    else:
        raise ConfigError(f"unknown engine {engine!r}")
    eng.load()
    os_.counters.reset()

    if register == "tpch":
        eng.register_queries(build_queries(scale=scale))
        # the Fig 15 sweep plus the paper's ~45 %-selectivity
        # thetasubselect workload (Fig 13/14)
        for level in (*SELECTIVITY_LEVELS, 0.45):
            eng.register_query(selectivity_name(level),
                               selectivity_query(level))
    elif register != "none":
        raise ConfigError(f"unknown register set {register!r}")

    sut = SystemUnderTest(os=os_, engine=eng, controller=None,
                          dataset=dataset, mode_name=None)
    return attach_controller(sut, mode, strategy=strategy,
                             controller=controller, keepalive=keepalive)


def attach_controller(sut: SystemUnderTest, mode: str | None,
                      strategy: str | TransitionStrategy = "cpu_load",
                      controller: ControllerConfig | None = None,
                      keepalive: bool = False) -> SystemUnderTest:
    """Attach and start an elastic controller on a built system.

    The fork point of the warm-start harness: a controllerless system is
    warmed once, captured, and each sweep cell attaches its own mode to
    a fresh fork.  ``mode=None`` is a no-op (the OS baseline).  Returns
    ``sut`` for chaining.
    """
    if mode is None:
        return sut
    if sut.controller is not None:
        raise ConfigError(
            f"system already runs a {sut.mode_name!r} controller")
    if isinstance(strategy, str):
        strategy = make_strategy(strategy)
    ctrl = ElasticController(
        sut.os, make_mode(mode, sut.os.topology), strategy,
        controller, keepalive=keepalive)
    ctrl.start()
    sut.controller = ctrl
    sut.mode_name = mode
    return sut


# ----------------------------------------------------------------------
# warm-start forking


def dataset_shared_atoms(dataset: TpchDataset) -> tuple:
    """The dataset and its column arrays, for snapshot externalisation.

    These are immutable by design (the engine mints fresh Tables over the
    same arrays), so every fork of a capture may alias them: snapshots
    stay small and restores never copy the bulk data.
    """
    atoms: list[object] = [dataset]
    for table in dataset.columns.values():
        atoms.extend(table.values())
    return tuple(atoms)


def capture_system(sut: SystemUnderTest) -> SimState:
    """Snapshot a full system under test (dataset externalised)."""
    return sut.os.sim.snapshot(
        root=sut, shared=dataset_shared_atoms(sut.dataset))


def fork_system(base: SimState) -> SystemUnderTest:
    """Materialise one independent system from a captured warm prefix.

    Restoring also seeds this process's dataset cache with the
    capture's dataset — in a pool worker that dataset is backed by the
    run's shared-memory segments, so any later cold :func:`build_system`
    in the same worker reuses it instead of regenerating megabytes of
    columns.  Datasets are immutable by contract (the forked arrays are
    read-only views), so seeding can never change results.
    """
    sut = base.restore()
    dataset = getattr(sut, "dataset", None)
    if isinstance(dataset, TpchDataset):
        _DATASETS.setdefault(
            (dataset.scale, dataset.sim_scale, dataset.seed), dataset)
    return sut


def warm_system(engine: str = "monetdb", *,
                clients: int = 0,
                stream: Callable[[int], Iterable[str]] | None = None,
                scale: float = 0.01, sim_scale: float = 1.0,
                seed: int = 42, record_placements: bool = False,
                **build_kwargs) -> SimState:
    """Build + optionally warm one controllerless system; capture it.

    The shared prefix of a sweep: data load, query registration and —
    when ``clients``/``stream`` are given — a warm-up workload under
    plain OS scheduling (first-touch page placement, thread spawning).
    Controllers are mode-specific, so they are attached per fork via
    :func:`attach_controller`, never baked into the base.
    """
    sut = build_system(engine=engine, mode=None, scale=scale,
                       sim_scale=sim_scale, seed=seed,
                       record_placements=record_placements,
                       **build_kwargs)
    if clients and stream is not None:
        sut.run_clients(clients, stream)
    return capture_system(sut)


def run_phased_workload(sut: SystemUnderTest, phases: Iterable[str],
                        n_clients: int) -> tuple[float, int]:
    """Run phases back-to-back; returns (makespan, queries completed)."""
    start = sut.os.now
    completed = 0
    for result in sut.run_phases(phases, n_clients):
        completed += result.queries_completed
    return sut.os.now - start, completed
