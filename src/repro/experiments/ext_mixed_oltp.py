"""Extension — mixed OLAP/OLTP co-scheduling (paper §VII future work).

The paper proposes letting concurrent applications benefit from the cores
the mechanism leaves unallocated.  This experiment runs:

* an **OLAP tenant**: the MonetDB-like engine under the elastic mechanism
  (or the plain OS as baseline), driven by concurrent scan queries;
* an **OLTP tenant**: a co-located application *outside* the database
  cgroup — single-worker point lookups whose threads may use any core,
  including the ones the mechanism released.

With the OS baseline the OLAP engine's workers occupy every core and the
point queries queue behind them.  Under the mechanism the unallocated
cores form a quiet harbour for the OLTP tenant, cutting its latency while
OLAP throughput stays comparable — the claim this harness quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.metrics import percentile
from ..analysis.report import render_table
from ..config import EngineConfig
from ..db.clients import ClientPool, repeat_stream
from ..db.engine import DatabaseEngine
from ..workloads.oltp import oltp_stream, register_point_queries
from .common import build_system


@dataclass(frozen=True)
class MixedCell:
    """One configuration's outcome for both tenants."""

    olap_throughput: float
    olap_mean_latency: float
    oltp_throughput: float
    oltp_mean_latency: float
    oltp_p_high: float
    mean_cores: float


@dataclass
class MixedOltpResult:
    """Cells per configuration label."""

    cells: dict[str, MixedCell] = field(default_factory=dict)

    def cell(self, mode: str | None) -> MixedCell:
        """Fetch one configuration's cell."""
        return self.cells[mode or "OS"]

    def oltp_latency_improvement(self, mode: str = "adaptive") -> float:
        """OS-over-mode OLTP latency ratio (>1 = mode helps OLTP)."""
        baseline = self.cell(None).oltp_mean_latency
        improved = self.cell(mode).oltp_mean_latency
        if baseline <= 0 or improved <= 0:
            return 1.0
        return baseline / improved

    def rows(self) -> list[list[object]]:
        """One row per configuration."""
        return [[mode, cell.olap_throughput, cell.olap_mean_latency,
                 cell.oltp_throughput, cell.oltp_mean_latency * 1e3,
                 cell.oltp_p_high * 1e3, cell.mean_cores]
                for mode, cell in self.cells.items()]

    def table(self) -> str:
        """The mixed-tenancy comparison as a text table."""
        return render_table(
            ["config", "OLAP q/s", "OLAP lat s", "OLTP q/s",
             "OLTP lat ms", "OLTP p90 ms", "DB cores"],
            self.rows(),
            title="Extension - mixed OLAP/OLTP co-scheduling")


def run(modes: tuple = (None, "adaptive"), olap_clients: int = 16,
        olap_reps: int = 3, oltp_clients: int = 8,
        oltp_queries_per_client: int = 40, scale: float = 0.01,
        sim_scale: float = 1.0) -> MixedOltpResult:
    """Run both tenants concurrently under each configuration."""
    result = MixedOltpResult()
    for mode in modes:
        sut = build_system(engine="monetdb", mode=mode, scale=scale,
                           sim_scale=sim_scale)
        # the co-located OLTP application: own engine object over the
        # same loaded catalog, threads outside the DB cgroup
        oltp_engine = DatabaseEngine(
            sut.os, sut.engine.catalog, sut.dataset.byte_scale,
            EngineConfig(workers_follow_mask=False, loader_node=0,
                         managed_threads=False, max_workers=1),
            name="oltp-app")
        names = register_point_queries(oltp_engine, n_distinct=12)

        olap_pool = ClientPool(sut.engine, olap_clients,
                               repeat_stream("sel_45pct", olap_reps))
        oltp_pool = ClientPool(
            oltp_engine, oltp_clients,
            oltp_stream(names, oltp_queries_per_client))
        olap_result = olap_pool.start()
        oltp_result = oltp_pool.start()
        sut.os.run_until_idle()
        olap_result.finished_at = oltp_result.finished_at = sut.os.now

        mean_cores = (sut.controller.lonc.report().mean_cores
                      if sut.controller else
                      float(sut.os.topology.n_cores))
        result.cells[mode or "OS"] = MixedCell(
            olap_throughput=olap_result.throughput,
            olap_mean_latency=olap_result.mean_latency(),
            oltp_throughput=oltp_result.throughput,
            oltp_mean_latency=oltp_result.mean_latency(),
            oltp_p_high=percentile(oltp_result.latencies(), 0.9),
            mean_cores=mean_cores,
        )
    return result
