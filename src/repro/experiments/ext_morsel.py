"""Extension — the mechanism on a morsel-driven engine (paper §VI).

The paper positions its mechanism as *orthogonal* to morsel-driven
parallelism: it "can deliver to morsels a dynamic sub-set of cores to
efficiently adapt to OLAP workloads".  This experiment quantifies both
halves of that discussion on the simulator:

* **morsel vs Volcano baselines** — HyPer-style NUMA-local dispatch
  should beat the OS-scheduled Volcano engine on interconnect traffic
  out of the box (the related-work premise);
* **morsel + mechanism** — the elastic controller applied to the morsel
  engine should at least hold its throughput while shrinking the core
  footprint (the orthogonality claim).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..workloads.phases import mixed_phases_stream
from .common import build_system

CONFIGS = (
    ("monetdb", None),
    ("morsel", None),
    ("morsel", "adaptive"),
)


@dataclass(frozen=True)
class MorselCell:
    """One configuration's outcome."""

    throughput: float
    makespan: float
    ht_imc: float
    mean_cores: float


@dataclass
class MorselResult:
    """Cells per configuration label."""

    cells: dict[str, MorselCell] = field(default_factory=dict)

    def cell(self, engine: str, mode: str | None) -> MorselCell:
        """Fetch one configuration's cell."""
        return self.cells[f"{engine}/{mode or 'OS'}"]

    def rows(self) -> list[list[object]]:
        """One row per configuration."""
        return [[label, cell.throughput, cell.makespan, cell.ht_imc,
                 cell.mean_cores]
                for label, cell in self.cells.items()]

    def table(self) -> str:
        """The comparison as a text table."""
        return render_table(
            ["config", "queries/s", "makespan s", "HT/IMC",
             "mean cores"],
            self.rows(),
            title="Extension - morsel-driven engine x the mechanism")


def run(n_clients: int = 32, queries_per_client: int = 3,
        scale: float = 0.01, sim_scale: float = 1.0,
        seed: int = 7) -> MorselResult:
    """Mixed workload over the three configurations."""
    result = MorselResult()
    stream = mixed_phases_stream(queries_per_client, seed=seed)
    for engine, mode in CONFIGS:
        sut = build_system(engine=engine, mode=mode, scale=scale,
                           sim_scale=sim_scale)
        sut.mark()
        workload = sut.run_clients(n_clients, stream)
        mean_cores = (sut.controller.lonc.report().mean_cores
                      if sut.controller else
                      float(sut.os.topology.n_cores))
        result.cells[sut.label] = MorselCell(
            throughput=workload.throughput,
            makespan=workload.makespan,
            ht_imc=sut.ht_imc_ratio(),
            mean_cores=mean_cores,
        )
    return result
