"""Extension — two elastic controllers sharing one machine.

The paper runs *one* mechanism instance governing *one* database cgroup.
The control-plane decomposition (``repro.control``) makes the actuator a
lease holder against the machine-wide :class:`~repro.opsys.CoreInventory`,
so nothing stops a second controller from governing a second tenant on
the same box — provided the inventory keeps their core sets disjoint.

This harness is that proof:

* tenant **volcano** — the MonetDB-like OS-scheduled engine;
* tenant **numa** — the SQL Server-like partitioned engine;

each behind its *own* :class:`~repro.core.ElasticController` (own
monitor over the tenant's cpuset, own Petri net, own lease set), both
ticking concurrently on one simulated Opteron 8387.  The simulation is
driven in slices no longer than the controller interval and after every
slice the harness checks the inventory invariants and asserts the two
tenants' leased masks are disjoint — i.e. at every tick boundary.

Provenance stays attributable: each decision record carries the tenant
name, so ``repro explain --tenant volcano`` replays one controller's
reasoning without the other's interleaved ticks.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..config import ControllerConfig
from ..core import ElasticController, make_mode, make_strategy
from ..db.clients import ClientPool, repeat_stream
from ..db.engine import MonetDBLike
from ..db.numa_aware import NumaAwareEngine
from ..errors import AllocationError
from ..hardware.prebuilt import opteron_8387
from ..opsys.system import OperatingSystem
from ..opsys.thread import reset_thread_ids
from ..sim.tracing import PlacementRecord, TraceRecorder
from ..workloads.selectivity import selectivity_name, selectivity_query
from .common import dataset_for

#: the workload both tenants run (the paper's ~45 %-selectivity scan)
WORKLOAD = selectivity_name(0.45)


@dataclass(frozen=True)
class TenantCell:
    """One tenant's outcome."""

    throughput: float
    mean_latency: float
    mean_cores: float
    max_cores: int
    ticks: int
    mask_changes: int


@dataclass
class MultiTenantResult:
    """Both tenants' outcomes plus the disjointness audit."""

    cells: dict[str, TenantCell] = field(default_factory=dict)
    #: (time, volcano cores, numa cores) after every simulation slice
    samples: list[tuple[float, int, int]] = field(default_factory=list)
    #: slices whose leased masks intersected (must stay 0)
    overlap_violations: int = 0
    makespan: float = 0.0

    @property
    def peak_combined_cores(self) -> int:
        """Largest sum of both tenants' cores over the run."""
        if not self.samples:
            return 0
        return max(v + n for _, v, n in self.samples)

    def rows(self) -> list[list[object]]:
        """One row per tenant."""
        return [[tenant, cell.throughput, cell.mean_latency,
                 cell.mean_cores, cell.max_cores, cell.ticks,
                 cell.mask_changes]
                for tenant, cell in self.cells.items()]

    def table(self) -> str:
        """The two-controller comparison as a text table."""
        table = render_table(
            ["tenant", "q/s", "lat s", "mean cores", "max cores",
             "ticks", "mask changes"],
            self.rows(),
            title="Extension - two controllers, one machine")
        return (f"{table}\n"
                f"lease overlap violations: {self.overlap_violations} "
                f"(checked {len(self.samples)} slices); "
                f"peak combined cores: {self.peak_combined_cores}")


def run(n_clients: int = 6, repetitions: int = 2, scale: float = 0.01,
        sim_scale: float = 1.0, mode: str = "adaptive",
        strategy: str = "cpu_load", max_slices: int = 100_000,
        ) -> MultiTenantResult:
    """Run both tenants under concurrent controllers to completion."""
    reset_thread_ids()
    tracer = TraceRecorder()
    tracer.mute(PlacementRecord)
    os_ = OperatingSystem(opteron_8387(), tracer=tracer)
    os_.create_tenant("volcano")
    os_.create_tenant("numa")

    dataset = dataset_for(scale, sim_scale)
    engines = {
        "volcano": MonetDBLike(os_, dataset.catalog(), dataset.byte_scale,
                               tenant="volcano"),
        "numa": NumaAwareEngine(os_, dataset.catalog(), dataset.byte_scale,
                                tenant="numa"),
    }
    for engine in engines.values():
        engine.load()
        engine.register_query(WORKLOAD, selectivity_query(0.45))
    os_.counters.reset()

    config = ControllerConfig()
    controllers = {
        tenant: ElasticController(
            os_, make_mode(mode, os_.topology), make_strategy(strategy),
            config, keepalive=True, tenant=tenant)
        for tenant in engines
    }
    for controller in controllers.values():
        controller.start()

    pools = {tenant: ClientPool(engine, n_clients,
                                repeat_stream(WORKLOAD, repetitions))
             for tenant, engine in engines.items()}
    results = {tenant: pool.start() for tenant, pool in pools.items()}

    result = MultiTenantResult()
    started = os_.now
    expected = n_clients * repetitions

    def finished() -> bool:
        return all(r.queries_completed >= expected
                   for r in results.values())

    # drive in controller-interval slices; at every tick boundary the
    # lease sets of the two governed tenants must be disjoint
    for _ in range(max_slices):
        if finished():
            break
        os_.run(until=os_.now + config.interval)
        os_.inventory.check()
        volcano = os_.inventory.mask_of("volcano")
        numa = os_.inventory.mask_of("numa")
        if volcano & numa:
            result.overlap_violations += 1
        result.samples.append((os_.now, len(volcano), len(numa)))
    else:
        raise AllocationError(
            f"tenants did not finish within {max_slices} slices")
    result.makespan = os_.now - started

    for tenant, controller in controllers.items():
        controller.stop()
        workload = results[tenant]
        cores = [v if tenant == "volcano" else n
                 for _, v, n in result.samples]
        changes = sum(1 for prev, cur in zip(cores, cores[1:])
                      if cur != prev)
        result.cells[tenant] = TenantCell(
            throughput=workload.throughput,
            mean_latency=workload.mean_latency(),
            mean_cores=sum(cores) / len(cores) if cores else 0.0,
            max_cores=max(cores, default=0),
            ticks=controller.ticks,
            mask_changes=changes,
        )
    os_.run_until_idle()
    if result.overlap_violations:
        raise AllocationError(
            f"{result.overlap_violations} slices saw overlapping leases")
    return result
