"""Extension — predicate-aware worker sizing (paper §VII future work).

Runs the mixed 22-query workload under three configurations:

* the plain OS (one worker per core, always);
* the adaptive mechanism (workers follow the visible mask);
* the adaptive mechanism plus the feed-forward sizer, where each query's
  worker pool is additionally bounded by its predicate-shaped footprint.

The claim to quantify: small, selective queries stop paying for sixteen
partitions' worth of administration, so the total dispatch count drops
sharply while throughput holds — the "local optimum with respect to
query predicates" the paper's conclusion sketches.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..config import EngineConfig
from ..workloads.phases import mixed_phases_stream
from .common import build_system


@dataclass(frozen=True)
class PredicateCell:
    """One configuration's outcome."""

    throughput: float
    mean_latency: float
    tasks: float
    threads_spawned: float
    ht_rate: float


@dataclass
class PredicateAwareResult:
    """Cells per configuration label."""

    cells: dict[str, PredicateCell] = field(default_factory=dict)

    def rows(self) -> list[list[object]]:
        """One row per configuration."""
        return [[label, cell.throughput, cell.mean_latency,
                 cell.tasks / 1e3, cell.threads_spawned,
                 cell.ht_rate / 1e9]
                for label, cell in self.cells.items()]

    def table(self) -> str:
        """The comparison as a text table."""
        return render_table(
            ["config", "queries/s", "mean lat s", "tasks (k)",
             "threads", "HT GB/s"],
            self.rows(),
            title="Extension - predicate-aware worker sizing")


def run(n_clients: int = 16, queries_per_client: int = 4,
        scale: float = 0.01, sim_scale: float = 1.0,
        seed: int = 7) -> PredicateAwareResult:
    """Mixed workload across the three configurations."""
    result = PredicateAwareResult()
    stream = mixed_phases_stream(queries_per_client, seed=seed)
    configs = [
        ("OS", None, EngineConfig()),
        ("adaptive", "adaptive", EngineConfig()),
        ("adaptive+sizer", "adaptive",
         EngineConfig(predicate_aware=True)),
    ]
    for label, mode, engine_config in configs:
        sut = build_system(engine="monetdb", mode=mode, scale=scale,
                           sim_scale=sim_scale,
                           engine_config=engine_config)
        sut.mark()
        workload = sut.run_clients(n_clients, stream)
        makespan = max(workload.makespan, 1e-9)
        result.cells[label] = PredicateCell(
            throughput=workload.throughput,
            mean_latency=workload.mean_latency(),
            tasks=sut.delta("tasks"),
            threads_spawned=_threads_spawned(),
            ht_rate=sut.delta("ht_tx_bytes") / makespan,
        )
    return result


def _threads_spawned() -> float:
    """Worker threads created since the system was built.

    ``build_system`` resets the global thread-id counter, so the counter
    value after a run is exactly the number of threads the run spawned.
    """
    from ..opsys.thread import SimThread

    return float(SimThread._next_id - 1)
