"""Extension — SLA-governed allocation (paper §VII future work).

Runs the concurrent scan workload under three configurations:

* the plain OS scheduler (no budget, the traffic it generates is the
  reference);
* the adaptive mechanism with no SLA;
* the adaptive mechanism governed by an interconnect-traffic budget set
  to a fraction of the OS run's observed rate.

The claim to quantify: the governed controller keeps the measured HT
rate at or under the budget by shedding cores, trading throughput
proportionally — "meeting service level agreements (e.g., energy or
data traffic)" as the paper's conclusion proposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..core import ElasticController, make_mode
from ..core.sla import SlaGovernor
from ..core.strategies import CpuLoadStrategy
from ..db.clients import repeat_stream
from .common import build_system


@dataclass(frozen=True)
class SlaCell:
    """One configuration's outcome."""

    throughput: float
    ht_rate: float
    mean_cores: float
    violations: int


@dataclass
class SlaResult:
    """Cells per configuration label plus the applied budget."""

    traffic_budget: float = 0.0
    cells: dict[str, SlaCell] = field(default_factory=dict)

    def rows(self) -> list[list[object]]:
        """One row per configuration."""
        return [[label, cell.throughput, cell.ht_rate / 1e9,
                 cell.mean_cores, cell.violations]
                for label, cell in self.cells.items()]

    def table(self) -> str:
        """The SLA comparison as a text table."""
        return render_table(
            ["config", "queries/s", "HT GB/s", "mean cores",
             "violations"],
            self.rows(),
            title=(f"Extension - traffic SLA "
                   f"(budget {self.traffic_budget / 1e9:.2f} GB/s)"))


def _measure(sut, n_clients, reps, workload) -> tuple[float, float]:
    sut.mark()
    result = sut.run_clients(n_clients, repeat_stream(workload, reps))
    makespan = max(result.makespan, 1e-9)
    return result.throughput, sut.delta("ht_tx_bytes") / makespan


def run(budget_fraction: float = 0.5, n_clients: int = 16,
        reps: int = 3, workload: str = "sel_45pct",
        scale: float = 0.01, sim_scale: float = 1.0) -> SlaResult:
    """Measure the OS reference, then ungoverned and governed adaptive."""
    result = SlaResult()

    baseline = build_system(engine="monetdb", mode=None, scale=scale,
                            sim_scale=sim_scale)
    throughput, ht_rate = _measure(baseline, n_clients, reps, workload)
    result.cells["OS"] = SlaCell(throughput, ht_rate, 16.0, 0)
    result.traffic_budget = ht_rate * budget_fraction

    ungoverned = build_system(engine="monetdb", mode="adaptive",
                              scale=scale, sim_scale=sim_scale)
    throughput, ht_rate = _measure(ungoverned, n_clients, reps, workload)
    result.cells["adaptive"] = SlaCell(
        throughput, ht_rate,
        ungoverned.controller.lonc.report().mean_cores, 0)

    # build without a controller, then attach the SLA-governed one
    governed = build_system(engine="monetdb", mode=None, scale=scale,
                            sim_scale=sim_scale)
    governed.mode_name = "adaptive+sla"
    governor = SlaGovernor(CpuLoadStrategy(),
                           machine=governed.os.machine.config,
                           traffic_budget=result.traffic_budget)
    controller = ElasticController(
        governed.os, make_mode("adaptive", governed.os.topology),
        governor)
    controller.start()
    governed.controller = controller
    throughput, ht_rate = _measure(governed, n_clients, reps, workload)
    result.cells["adaptive+sla"] = SlaCell(
        throughput, ht_rate, controller.lonc.report().mean_cores,
        governor.violations)
    return result
