"""Fig 4 — TPC-H Q6 with increasing concurrent clients (paper §II-B1).

Four variants, as in the paper:

* ``dense/C``, ``sparse/C``, ``os/C`` — the hand-coded pthreads kernel with
  preset or OS-chosen affinity;
* ``os/monetdb`` — the SQL version on the Volcano engine, OS-scheduled.

Reported per (variant, users): query throughput (Fig 4a), minor page
faults per second (Fig 4b) and interconnect traffic in MB/s (Fig 4c).

Expected shapes: HT traffic grows with users everywhere; the engine moves
an order of magnitude more data over the interconnect than the C kernel at
low concurrency, narrowing to single-digit factors at high concurrency;
the dense kernel stays lowest.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..db.clients import repeat_stream
from ..errors import ReproError
from ..opsys.system import OperatingSystem
from ..sim.tracing import PlacementRecord, TraceRecorder
from ..workloads.microbench import run_q6_kernel
from .common import build_system, dataset_for

DEFAULT_USERS = (1, 4, 16, 64)
C_VARIANTS = ("dense", "sparse", "os")


@dataclass
class Fig04Result:
    """Series per variant: users -> (throughput, faults/s, HT MB/s)."""

    users: tuple[int, ...]
    series: dict[str, dict[int, tuple[float, float, float]]] \
        = field(default_factory=dict)

    def throughput(self, variant: str, users: int) -> float:
        """Queries per second for one cell."""
        return self.series[variant][users][0]

    def faults_per_s(self, variant: str, users: int) -> float:
        """Minor page faults per second for one cell."""
        return self.series[variant][users][1]

    def ht_mb_per_s(self, variant: str, users: int) -> float:
        """Interconnect MB/s for one cell."""
        return self.series[variant][users][2]

    def rows(self) -> list[list[object]]:
        """Flat rows for rendering."""
        out: list[list[object]] = []
        for variant, per_users in self.series.items():
            for users in self.users:
                tp, faults, ht = per_users[users]
                out.append([variant, users, tp, faults, ht])
        return out

    def table(self) -> str:
        """The Fig 4 series as a text table."""
        return render_table(
            ["variant", "users", "queries/s", "minor faults/s", "HT MB/s"],
            self.rows(), title="Fig 4 - Q6 vs concurrent clients")


def _run_c_variant(affinity: str, users: int, repetitions: int,
                   scale: float, sim_scale: float) -> tuple[float, float,
                                                            float]:
    dataset = dataset_for(scale, sim_scale)
    tracer = TraceRecorder()
    tracer.mute(PlacementRecord)
    os_ = OperatingSystem(tracer=tracer)
    catalog = dataset.catalog()
    catalog.load(os_.vm, policy="single_node", loader_node=0)
    os_.counters.reset()
    result = run_q6_kernel(os_, catalog.table("lineitem"), users,
                           repetitions=repetitions, affinity=affinity)
    makespan = max(result.makespan, 1e-9)
    return (result.throughput,
            os_.counters.total("minor_faults") / makespan,
            os_.counters.total("ht_tx_bytes") / makespan / 1e6)


def _run_engine_variant(users: int, repetitions: int, scale: float,
                        sim_scale: float) -> tuple[float, float, float]:
    sut = build_system(engine="monetdb", mode=None, scale=scale,
                       sim_scale=sim_scale)
    sut.mark()
    result = sut.run_clients(users, repeat_stream("q6", repetitions))
    makespan = max(result.makespan, 1e-9)
    return (result.throughput,
            sut.delta("minor_faults") / makespan,
            sut.delta("ht_tx_bytes") / makespan / 1e6)


def run_cell(variant: str, users: int, repetitions: int = 2,
             scale: float = 0.01,
             sim_scale: float = 1.0) -> tuple[float, float, float]:
    """One (variant, users) cell: ``"<affinity>/C"`` or ``os/monetdb``."""
    if variant == "os/monetdb":
        return _run_engine_variant(users, repetitions, scale, sim_scale)
    affinity = variant.removesuffix("/C")
    if affinity not in C_VARIANTS or affinity == variant:
        raise ReproError(f"unknown fig4 variant {variant!r}")
    return _run_c_variant(affinity, users, repetitions, scale, sim_scale)


def run(users: tuple[int, ...] = DEFAULT_USERS, repetitions: int = 2,
        scale: float = 0.01, sim_scale: float = 1.0,
        parallel: int = 1) -> Fig04Result:
    """Run all four variants over the user sweep.

    Cells build independent systems, so ``parallel > 1`` fans them
    across worker processes with an ordered merge.
    """
    from ..runner.pool import Task, run_tasks

    result = Fig04Result(users=users)
    variants = [f"{affinity}/C" for affinity in C_VARIANTS]
    variants.append("os/monetdb")
    keys = [(variant, n) for variant in variants for n in users]
    cells = run_tasks(
        [Task("repro.experiments.fig04_microbench:run_cell",
              dict(variant=variant, users=n, repetitions=repetitions,
                   scale=scale, sim_scale=sim_scale))
         for variant, n in keys],
        parallel=parallel)
    for (variant, n), cell in zip(keys, cells):
        result.series.setdefault(variant, {})[n] = cell
    return result
