"""Fig 5 — thread lifespan and migration under the plain OS (paper §II-B2).

A single client executes Q6 with all 16 cores exposed; the placement trace
shows every worker hopping between cores (and nodes) as the load balancer
chases balance.  The expected shape: multiple migrations per worker, with
visits to more than one NUMA node.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..db.clients import repeat_stream
from ..sim.tracing import MigrationRecord, PlacementRecord
from .common import SystemUnderTest, build_system


@dataclass
class ThreadTimeline:
    """Placement history of one worker thread."""

    thread_id: int
    #: (time, core, node) in placement order
    placements: list[tuple[float, int, int]] = field(default_factory=list)

    @property
    def migrations(self) -> int:
        """Core changes over the thread's lifetime."""
        return max(len(self.placements) - 1, 0)

    @property
    def nodes_visited(self) -> set[int]:
        """Distinct NUMA nodes the thread ran on."""
        return {node for _, _, node in self.placements}


@dataclass
class Fig05Result:
    """Per-thread timelines plus aggregate migration counts."""

    timelines: list[ThreadTimeline]
    total_migrations: int
    stolen: int
    elapsed: float

    def rows(self) -> list[list[object]]:
        """One row per worker thread."""
        return [[f"T{t.thread_id}", t.migrations,
                 len(t.nodes_visited),
                 " ".join(str(c) for _, c, _ in t.placements[:12])]
                for t in self.timelines]

    def table(self) -> str:
        """The Fig 5 migration map as a text table."""
        return render_table(
            ["thread", "migrations", "nodes", "core sequence"],
            self.rows(),
            title=(f"Fig 5 - OS placement of Q6 workers "
                   f"(total migrations {self.total_migrations}, "
                   f"stolen {self.stolen})"))


def collect_timelines(sut: SystemUnderTest) -> list[ThreadTimeline]:
    """Group placement records per thread, in thread order."""
    by_thread: dict[int, ThreadTimeline] = {}
    for record in sut.os.tracer.of(PlacementRecord):
        timeline = by_thread.setdefault(
            record.thread_id, ThreadTimeline(record.thread_id))
        timeline.placements.append(
            (record.time, record.core_id, record.node_id))
    return [by_thread[tid] for tid in sorted(by_thread)]


def run(scale: float = 0.01, sim_scale: float = 1.0,
        repetitions: int = 2) -> Fig05Result:
    """Single-client Q6 on the unmanaged OS, with placement tracing."""
    sut = build_system(engine="monetdb", mode=None, scale=scale,
                       sim_scale=sim_scale, record_placements=True)
    sut.mark()
    result = sut.run_clients(1, repeat_stream("q6", repetitions))
    timelines = collect_timelines(sut)
    migrations = [m for m in sut.os.tracer.of(MigrationRecord)]
    return Fig05Result(
        timelines=timelines,
        total_migrations=len(migrations),
        stolen=sum(1 for m in migrations if m.stolen),
        elapsed=result.makespan,
    )
