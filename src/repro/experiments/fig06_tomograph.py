"""Fig 6 — Tomograph view: per-operator calls and time for Q6 (§II-B2).

The paper screenshots MonetDB's Tomograph showing the 16 worker threads
and, per MAL operator, how many parallel calls ran and how long they took.
Our stage records carry the same information: the harness groups them by
operator label.

Expected shape: the scan-side operators (``algebra.thetasubselect``,
``algebra.select``) dominate total time and run one call per worker, while
the final aggregation and result stages are single-call.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..analysis.report import render_table
from ..db.clients import repeat_stream
from ..sim.tracing import StageRecord
from .common import build_system


@dataclass(frozen=True)
class OperatorRow:
    """Aggregated Tomograph line for one operator."""

    operator: str
    calls: int
    total_time: float
    workers: int


@dataclass
class Fig06Result:
    """Operator rows plus the worker-thread census."""

    operators: list[OperatorRow]
    n_worker_threads: int
    elapsed: float

    def calls_of(self, operator: str) -> int:
        """Parallel call count of one operator (0 when absent)."""
        for row in self.operators:
            if row.operator == operator:
                return row.calls
        return 0

    def rows(self) -> list[list[object]]:
        """One row per operator, by descending total time."""
        return [[row.operator, row.calls, row.total_time * 1e3,
                 row.workers]
                for row in self.operators]

    def table(self) -> str:
        """The Fig 6 Tomograph listing as a text table."""
        return render_table(
            ["operator", "calls", "total ms", "workers"],
            self.rows(),
            title=(f"Fig 6 - Tomograph of Q6 "
                   f"({self.n_worker_threads} worker threads)"))


def run(scale: float = 0.01, sim_scale: float = 1.0) -> Fig06Result:
    """Single-client Q6, stage records grouped by operator."""
    sut = build_system(engine="monetdb", mode=None, scale=scale,
                       sim_scale=sim_scale)
    result = sut.run_clients(1, repeat_stream("q6", 1))
    calls: dict[str, list[StageRecord]] = {}
    for record in sut.os.tracer.of(StageRecord):
        calls.setdefault(record.operator, []).append(record)
    operators = [
        OperatorRow(
            operator=op,
            calls=len(records),
            total_time=sum(r.elapsed for r in records),
            workers=len({r.thread_id for r in records}),
        )
        for op, records in calls.items()
    ]
    operators.sort(key=lambda row: -row.total_time)
    workers = {r.thread_id for rs in calls.values() for r in rs}
    return Fig06Result(operators=operators,
                       n_worker_threads=len(workers),
                       elapsed=result.makespan)
