"""Fig 7 — state transitions and core allocation along Q6 (paper §III).

A single client repeatedly executes Q6 under the adaptive controller.  The
query's own structure drives the oscillation: parallel scan stages push the
load of the few allocated cores up (``t1-Overload-t5`` fires, a core is
allocated), serial stages and the gaps between repetitions let it collapse
(``t0-Idle-t4`` releases).  The harness reports the fired chain per tick
with the metric value and the allocated-core staircase, plus the share of
ticks per state — the x-axis annotations of Fig 7.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..core.lonc import LoncReport
from ..db.clients import repeat_stream
from ..sim.tracing import TransitionRecord
from .common import build_system


@dataclass
class Fig07Result:
    """Transition chain trace plus the LONC summary."""

    #: (time, chain label, metric value, cores after)
    transitions: list[tuple[float, str, float, int]]
    lonc: LoncReport
    elapsed: float
    #: every trace record of the run, exportable via
    #: :func:`repro.sim.export.dump_records` (golden-trace regression)
    records: list[object] = field(default_factory=list)

    def chains(self) -> list[str]:
        """Fired chain labels in order (``t1-Overload-t5`` ...)."""
        return [label for _, label, _, _ in self.transitions]

    def states_seen(self) -> set[str]:
        """Distinct performance states entered."""
        return {label.split("-")[1] for label in self.chains()}

    def core_range(self) -> tuple[int, int]:
        """(min, max) allocated cores over the run."""
        cores = [c for _, _, _, c in self.transitions]
        return (min(cores), max(cores)) if cores else (0, 0)

    def rows(self) -> list[list[object]]:
        """One row per controller tick."""
        return [[f"{t:.3f}", label, round(metric, 1), cores]
                for t, label, metric, cores in self.transitions]

    def table(self) -> str:
        """The Fig 7 transition trace as a text table."""
        lo, hi = self.core_range()
        return render_table(
            ["time s", "transition", "u", "cores"], self.rows(),
            title=(f"Fig 7 - Q6 state transitions (cores {lo}..{hi}, "
                   f"stable {self.lonc.stable_fraction:.0%} of ticks)"))


def run(repetitions: int = 10, scale: float = 0.01,
        sim_scale: float = 1.0, mode: str = "adaptive",
        idle_tail: float = 0.4) -> Fig07Result:
    """Single client, repeated Q6, adaptive controller, CPU-load strategy.

    The controller keeps ticking for ``idle_tail`` seconds after the last
    query so the release cascade (``t0-Idle-t4``) is part of the trace,
    as in the paper's figure.
    """
    from ..db.clients import ClientPool

    sut = build_system(engine="monetdb", mode=mode, scale=scale,
                       sim_scale=sim_scale, keepalive=True)
    pool = ClientPool(sut.engine, 1, repeat_stream("q6", repetitions))
    result = pool.start()
    # drive in slices until the workload drains, then let the controller
    # tick through the idle tail before stopping it
    while result.queries_completed < repetitions:
        sut.os.run(until=sut.os.now + 0.5)
    sut.os.run(until=sut.os.now + idle_tail)
    assert sut.controller is not None
    sut.controller.stop()
    sut.os.run_until_idle()
    result.finished_at = sut.os.now
    transitions = [
        (r.time, r.label, r.value, r.cores_after)
        for r in sut.os.tracer.of(TransitionRecord)
    ]
    return Fig07Result(transitions=transitions,
                       lonc=sut.controller.lonc.report(),
                       elapsed=result.makespan,
                       records=sut.os.tracer.all())
