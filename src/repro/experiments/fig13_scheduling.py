"""Fig 13 — scheduling metrics vs concurrency for the four modes (§V-A1).

The paper runs the modified Q6 (the ``thetasubselect``-dominated scan) with
1..256 concurrent users under the plain OS and under the mechanism in
dense, sparse and adaptive modes, reporting throughput, CPU load, dispatch
("tasks") counts and stolen tasks.

Expected shapes: similar CPU load and task counts everywhere; the OS
scheduler steals noticeably more tasks than the adaptive mode; adaptive
throughput at least matches the OS at high concurrency.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..db.clients import repeat_stream
from .common import build_system

MODES = (None, "dense", "sparse", "adaptive")
DEFAULT_USERS = (1, 4, 16, 64)

#: the paper's modified Q6: a ~45 %-selectivity thetasubselect scan
WORKLOAD_QUERY = "sel_45pct"


@dataclass(frozen=True)
class Fig13Cell:
    """One (mode, users) measurement."""

    throughput: float
    cpu_load: float
    tasks: float
    stolen_tasks: float


@dataclass
class Fig13Result:
    """Cells per mode label and user count."""

    users: tuple[int, ...]
    cells: dict[tuple[str, int], Fig13Cell] = field(default_factory=dict)

    def cell(self, mode: str | None, users: int) -> Fig13Cell:
        """Fetch one cell; ``mode=None`` is the OS baseline."""
        return self.cells[(mode or "OS", users)]

    def rows(self) -> list[list[object]]:
        """Flat rows for rendering."""
        out: list[list[object]] = []
        for (mode, users), cell in self.cells.items():
            out.append([mode, users, cell.throughput, cell.cpu_load,
                        cell.tasks, cell.stolen_tasks])
        return out

    def table(self) -> str:
        """The Fig 13 series as a text table."""
        return render_table(
            ["mode", "users", "queries/s", "CPU load %", "tasks",
             "stolen"],
            self.rows(), title="Fig 13 - thetasubselect vs concurrency")


def run_cell(mode: str | None, users: int, repetitions: int = 4,
             scale: float = 0.01, sim_scale: float = 1.0) -> Fig13Cell:
    """One (mode, users) cell on a fresh system under test."""
    sut = build_system(engine="monetdb", mode=mode, scale=scale,
                       sim_scale=sim_scale)
    sut.mark()
    workload = sut.run_clients(
        users, repeat_stream(WORKLOAD_QUERY, repetitions))
    makespan = max(workload.makespan, 1e-9)
    n_cores = sut.os.topology.n_cores
    cpu_load = 100.0 * sut.delta("busy_time") / (makespan * n_cores)
    return Fig13Cell(
        throughput=workload.throughput,
        cpu_load=min(cpu_load, 100.0),
        tasks=sut.delta("tasks"),
        stolen_tasks=sut.delta("stolen_tasks"),
    )


def run(users: tuple[int, ...] = DEFAULT_USERS, repetitions: int = 4,
        scale: float = 0.01, sim_scale: float = 1.0,
        parallel: int = 1) -> Fig13Result:
    """Sweep users for all four scheduling configurations.

    Every cell is independent (fresh system per cell), so ``parallel > 1``
    fans cells across worker processes; the ordered merge keeps the
    result identical to a serial run.
    """
    from ..runner.pool import Task, run_tasks

    result = Fig13Result(users=users)
    keys = [(mode, n) for mode in MODES for n in users]
    cells = run_tasks(
        [Task("repro.experiments.fig13_scheduling:run_cell",
              dict(mode=mode, users=n, repetitions=repetitions,
                   scale=scale, sim_scale=sim_scale))
         for mode, n in keys],
        parallel=parallel)
    for (mode, n), cell in zip(keys, cells):
        result.cells[(mode or "OS", n)] = cell
    return result
