"""Fig 13 — scheduling metrics vs concurrency for the four modes (§V-A1).

The paper runs the modified Q6 (the ``thetasubselect``-dominated scan) with
1..256 concurrent users under the plain OS and under the mechanism in
dense, sparse and adaptive modes, reporting throughput, CPU load, dispatch
("tasks") counts and stolen tasks.

Expected shapes: similar CPU load and task counts everywhere; the OS
scheduler steals noticeably more tasks than the adaptive mode; adaptive
throughput at least matches the OS at high concurrency.

Measurement protocol (warm-start aware): when ``repetitions > 1`` the
first repetition is a *warm-up* under plain OS scheduling — data load,
first-touch page placement, thread spawning — and only the remaining
repetitions are measured with the cell's controller attached.  The
warm-up is identical for all four modes of one user count, so the warm
path simulates it once, captures the system, and forks each mode's cell
from the capture; the cold path (``warm_start=False``) re-simulates it
per cell and must produce byte-identical cells.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..db.clients import repeat_stream
from ..sim.state import SimState
from .common import (SystemUnderTest, attach_controller, build_system,
                     fork_system, warm_system)

MODES = (None, "dense", "sparse", "adaptive")
DEFAULT_USERS = (1, 4, 16, 64)

#: the paper's modified Q6: a ~45 %-selectivity thetasubselect scan
WORKLOAD_QUERY = "sel_45pct"


@dataclass(frozen=True)
class Fig13Cell:
    """One (mode, users) measurement."""

    throughput: float
    cpu_load: float
    tasks: float
    stolen_tasks: float


@dataclass
class Fig13Result:
    """Cells per mode label and user count."""

    users: tuple[int, ...]
    cells: dict[tuple[str, int], Fig13Cell] = field(default_factory=dict)

    def cell(self, mode: str | None, users: int) -> Fig13Cell:
        """Fetch one cell; ``mode=None`` is the OS baseline."""
        return self.cells[(mode or "OS", users)]

    def rows(self) -> list[list[object]]:
        """Flat rows for rendering."""
        out: list[list[object]] = []
        for (mode, users), cell in self.cells.items():
            out.append([mode, users, cell.throughput, cell.cpu_load,
                        cell.tasks, cell.stolen_tasks])
        return out

    def table(self) -> str:
        """The Fig 13 series as a text table."""
        return render_table(
            ["mode", "users", "queries/s", "CPU load %", "tasks",
             "stolen"],
            self.rows(), title="Fig 13 - thetasubselect vs concurrency")


def _split_repetitions(repetitions: int) -> tuple[int, int]:
    """(warm-up reps, measured reps): one shared warm-up when possible."""
    warmup = 1 if repetitions > 1 else 0
    return warmup, repetitions - warmup


def _measure_cell(sut: SystemUnderTest, users: int,
                  repetitions: int) -> Fig13Cell:
    """The divergent phase: measure one warmed, controller-bearing cell."""
    sut.mark()
    workload = sut.run_clients(
        users, repeat_stream(WORKLOAD_QUERY, repetitions))
    makespan = max(workload.makespan, 1e-9)
    n_cores = sut.os.topology.n_cores
    cpu_load = 100.0 * sut.delta("busy_time") / (makespan * n_cores)
    return Fig13Cell(
        throughput=workload.throughput,
        cpu_load=min(cpu_load, 100.0),
        tasks=sut.delta("tasks"),
        stolen_tasks=sut.delta("stolen_tasks"),
    )


def run_cell(mode: str | None, users: int, repetitions: int = 4,
             scale: float = 0.01, sim_scale: float = 1.0) -> Fig13Cell:
    """One (mode, users) cell, cold: the warm-up prefix is re-simulated
    on a fresh system.  The reference path warm-start forking must match
    byte for byte."""
    warmup, measured = _split_repetitions(repetitions)
    sut = build_system(engine="monetdb", mode=None, scale=scale,
                       sim_scale=sim_scale)
    if warmup:
        sut.run_clients(users, repeat_stream(WORKLOAD_QUERY, warmup))
    attach_controller(sut, mode)
    return _measure_cell(sut, users, measured)


def run_group(users: int, repetitions: int = 4, scale: float = 0.01,
              sim_scale: float = 1.0,
              base: SimState | None = None) -> list[Fig13Cell]:
    """All four modes' cells for one user count, forked from one warmed
    prefix (simulated once instead of once per mode)."""
    measured = _split_repetitions(repetitions)[1]
    if base is None:
        base = warm_group_base(users, repetitions, scale, sim_scale)
    cells = []
    for mode in MODES:
        sut = fork_system(base)
        attach_controller(sut, mode)
        cells.append(_measure_cell(sut, users, measured))
    return cells


def warm_group_base(users: int, repetitions: int, scale: float,
                    sim_scale: float) -> SimState:
    """Capture the shared prefix of one user count's four cells."""
    warmup, _ = _split_repetitions(repetitions)
    return warm_system(
        clients=users if warmup else 0,
        stream=repeat_stream(WORKLOAD_QUERY, warmup) if warmup else None,
        scale=scale, sim_scale=sim_scale)


def run_traced(mode: str | None = "adaptive", users: int = 4,
               repetitions: int = 2, scale: float = 0.01,
               sim_scale: float = 1.0) -> tuple[Fig13Cell, list]:
    """One cold cell plus its full event trace.

    The golden-parity harness: CI runs this once against the seed-pinned
    fixture and diffs the exported trace byte-for-byte, so any change to
    event delivery order — queue refactors included — fails loud.
    """
    warmup, measured = _split_repetitions(repetitions)
    sut = build_system(engine="monetdb", mode=None, scale=scale,
                       sim_scale=sim_scale)
    if warmup:
        sut.run_clients(users, repeat_stream(WORKLOAD_QUERY, warmup))
    attach_controller(sut, mode)
    cell = _measure_cell(sut, users, measured)
    return cell, sut.os.tracer.all()


def run(users: tuple[int, ...] = DEFAULT_USERS, repetitions: int = 4,
        scale: float = 0.01, sim_scale: float = 1.0,
        parallel: int = 1, warm_start: bool = True) -> Fig13Result:
    """Sweep users for all four scheduling configurations.

    With ``warm_start`` (the default) each user count's four cells fork
    from one captured warm-up prefix; ``warm_start=False`` re-simulates
    the prefix per cell and produces byte-identical cells (the
    equivalence is pinned by tests and CI).  ``parallel > 1`` fans the
    independent units — user-count groups warm, (mode, users) cells
    cold — across worker processes; the ordered merge keeps the result
    identical to a serial run.
    """
    from ..runner.pool import Task, run_tasks

    result = Fig13Result(users=users)
    if warm_start:
        groups = run_tasks(
            [Task("repro.experiments.fig13_scheduling:run_group",
                  dict(users=n, repetitions=repetitions, scale=scale,
                       sim_scale=sim_scale))
             for n in users],
            parallel=parallel)
        by_key = {(mode, n): cell
                  for n, group in zip(users, groups)
                  for mode, cell in zip(MODES, group)}
    else:
        keys = [(mode, n) for mode in MODES for n in users]
        cells = run_tasks(
            [Task("repro.experiments.fig13_scheduling:run_cell",
                  dict(mode=mode, users=n, repetitions=repetitions,
                       scale=scale, sim_scale=sim_scale))
             for mode, n in keys],
            parallel=parallel)
        by_key = dict(zip(keys, cells))
    # cells are keyed mode-major regardless of which path produced them
    for mode in MODES:
        for n in users:
            result.cells[(mode or "OS", n)] = by_key[(mode, n)]
    return result
