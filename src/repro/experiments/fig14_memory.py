"""Fig 14 — memory-access metrics at high concurrency (§V-A1).

The paper reports, for 256 clients running the thetasubselect under the
four scheduling configurations: per-socket L3 load misses (a), per-socket
memory throughput (b) and interconnect traffic (c).

Expected shapes: the OS scheduler moves the most data over the
interconnect; the controlled modes reduce L3 misses and interconnect
traffic; the dense mode leaves the last socket underused (its memory bank
serves little) while the adaptive mode spreads throughput best among the
controlled modes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..db.clients import repeat_stream
from ..sim.state import SimState
from .common import (SystemUnderTest, attach_controller, build_system,
                     fork_system, warm_system)

MODES = (None, "dense", "sparse", "adaptive")
WORKLOAD_QUERY = "sel_45pct"


@dataclass(frozen=True)
class Fig14Cell:
    """One mode's memory picture."""

    l3_misses_by_socket: dict[int, float]
    mem_tp_by_socket: dict[int, float]
    ht_traffic: float
    makespan: float

    @property
    def l3_misses_total(self) -> float:
        """Machine-wide L3 misses."""
        return sum(self.l3_misses_by_socket.values())

    @property
    def ht_rate(self) -> float:
        """Interconnect bytes per second over the run."""
        return self.ht_traffic / max(self.makespan, 1e-9)


@dataclass
class Fig14Result:
    """Cells per mode label."""

    n_clients: int
    cells: dict[str, Fig14Cell] = field(default_factory=dict)

    def cell(self, mode: str | None) -> Fig14Cell:
        """Fetch one mode's cell; ``None`` is the OS baseline."""
        return self.cells[mode or "OS"]

    def rows(self) -> list[list[object]]:
        """One row per (mode, socket) plus interconnect totals."""
        out: list[list[object]] = []
        for mode, cell in self.cells.items():
            for socket in sorted(cell.mem_tp_by_socket):
                out.append([
                    mode, socket,
                    cell.l3_misses_by_socket.get(socket, 0.0) / 1e3,
                    cell.mem_tp_by_socket[socket] / 1e9,
                    cell.ht_rate / 1e9,
                ])
        return out

    def table(self) -> str:
        """The Fig 14 series as a text table."""
        return render_table(
            ["mode", "socket", "L3 misses (k)", "mem GB/s", "HT GB/s"],
            self.rows(),
            title=f"Fig 14 - memory metrics, {self.n_clients} clients")


def _measure_cell(sut: SystemUnderTest, mode: str | None,
                  n_clients: int, repetitions: int) -> Fig14Cell:
    """Attach ``mode`` and measure one cell's memory picture."""
    attach_controller(sut, mode)
    sut.mark()
    workload = sut.run_clients(
        n_clients, repeat_stream(WORKLOAD_QUERY, repetitions))
    makespan = max(workload.makespan, 1e-9)
    sockets = list(sut.os.topology.all_nodes())
    return Fig14Cell(
        l3_misses_by_socket={
            s: sut.delta("l3_miss", s) for s in sockets},
        mem_tp_by_socket={
            s: sut.delta("imc_bytes", s) / makespan for s in sockets},
        ht_traffic=sut.delta("ht_tx_bytes"),
        makespan=makespan,
    )


def run_cell(mode: str | None, n_clients: int = 32,
             repetitions: int = 3, scale: float = 0.01,
             sim_scale: float = 1.0) -> Fig14Cell:
    """One mode's memory picture on a fresh (cold-built) system."""
    sut = build_system(engine="monetdb", mode=None, scale=scale,
                       sim_scale=sim_scale)
    return _measure_cell(sut, mode, n_clients, repetitions)


def run_cell_warm(base: SimState, mode: str | None, n_clients: int = 32,
                  repetitions: int = 3) -> Fig14Cell:
    """One mode's cell forked from a captured build prefix."""
    return _measure_cell(fork_system(base), mode, n_clients, repetitions)


def run(n_clients: int = 32, repetitions: int = 3, scale: float = 0.01,
        sim_scale: float = 1.0, parallel: int = 1,
        warm_start: bool | None = None) -> Fig14Result:
    """High-concurrency thetasubselect across the four configurations.

    The workload itself is mode-dependent from the first repetition, so
    the shared prefix is the build stage (data load + registration): the
    warm path builds once, captures, and forks the four cells.
    ``warm_start=None`` resolves to forking only when ``parallel > 1``
    (serially a cold build beats a capture/restore round trip; across
    the spawn pool the capture ships once instead of each worker
    rebuilding).  Cold (``warm_start=False``) rebuilds per cell,
    byte-identically.
    """
    from ..runner.pool import Task, run_tasks

    result = Fig14Result(n_clients=n_clients)
    if warm_start is None:
        warm_start = parallel > 1
    if warm_start:
        base = warm_system(scale=scale, sim_scale=sim_scale)
        tasks = [Task("repro.experiments.fig14_memory:run_cell_warm",
                      dict(base=base, mode=mode, n_clients=n_clients,
                           repetitions=repetitions))
                 for mode in MODES]
    else:
        tasks = [Task("repro.experiments.fig14_memory:run_cell",
                      dict(mode=mode, n_clients=n_clients,
                           repetitions=repetitions, scale=scale,
                           sim_scale=sim_scale))
                 for mode in MODES]
    cells = run_tasks(tasks, parallel=parallel)
    for mode, cell in zip(MODES, cells):
        result.cells[mode or "OS"] = cell
    return result
