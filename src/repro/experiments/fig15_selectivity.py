"""Fig 15 — L3 misses across selectivities for the four modes (§V-A2).

The paper sweeps the thetasubselect's selectivity from 2 % to 100 % with
256 concurrent clients and reports per-socket L3 load misses for the OS
scheduler and the three controlled modes.

Expected shapes: misses grow with selectivity everywhere (more data is
materialised); the OS scheduler spikes once the materialised result stops
fitting the caches (beyond roughly two-thirds selectivity), while the
controlled modes stay at or below the OS's miss counts even at 100 %.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..db.clients import repeat_stream
from ..sim.state import SimState
from ..workloads.selectivity import SELECTIVITY_LEVELS, selectivity_name
from .common import (SystemUnderTest, attach_controller, build_system,
                     fork_system, warm_system)

MODES = (None, "dense", "sparse", "adaptive")


@dataclass
class Fig15Result:
    """L3 misses per (mode, selectivity level), split by socket."""

    levels: tuple[float, ...]
    n_clients: int
    misses: dict[tuple[str, float], dict[int, float]] \
        = field(default_factory=dict)

    def total(self, mode: str | None, level: float) -> float:
        """Machine-wide L3 misses for one cell."""
        return sum(self.misses[(mode or "OS", level)].values())

    def rows(self) -> list[list[object]]:
        """One row per (mode, level)."""
        out: list[list[object]] = []
        for (mode, level), by_socket in self.misses.items():
            row: list[object] = [mode, f"{level:.0%}"]
            row.extend(by_socket.get(s, 0.0) / 1e3
                       for s in sorted(by_socket))
            row.append(sum(by_socket.values()) / 1e3)
            out.append(row)
        return out

    def table(self) -> str:
        """The Fig 15 series as a text table."""
        sockets = sorted(next(iter(self.misses.values())))
        headers = ["mode", "selectivity"]
        headers.extend(f"S{s} (k)" for s in sockets)
        headers.append("total (k)")
        return render_table(headers, self.rows(),
                            title=(f"Fig 15 - L3 misses vs selectivity, "
                                   f"{self.n_clients} clients"))


def _measure_cell(sut: SystemUnderTest, mode: str | None, level: float,
                  n_clients: int, repetitions: int) -> dict[int, float]:
    """Attach ``mode`` and measure one (mode, selectivity) cell."""
    attach_controller(sut, mode)
    sut.mark()
    sut.run_clients(
        n_clients, repeat_stream(selectivity_name(level), repetitions))
    return {s: sut.delta("l3_miss", s)
            for s in sut.os.topology.all_nodes()}


def run_cell(mode: str | None, level: float, n_clients: int = 16,
             repetitions: int = 1, scale: float = 0.01,
             sim_scale: float = 1.0) -> dict[int, float]:
    """Per-socket L3 misses for one cold-built (mode, selectivity) cell."""
    sut = build_system(engine="monetdb", mode=None, scale=scale,
                       sim_scale=sim_scale)
    return _measure_cell(sut, mode, level, n_clients, repetitions)


def run_cell_warm(base: SimState, mode: str | None, level: float,
                  n_clients: int = 16,
                  repetitions: int = 1) -> dict[int, float]:
    """One (mode, selectivity) cell forked from a captured build prefix."""
    return _measure_cell(fork_system(base), mode, level, n_clients,
                         repetitions)


def run(levels: tuple[float, ...] = SELECTIVITY_LEVELS,
        n_clients: int = 16, repetitions: int = 1, scale: float = 0.01,
        sim_scale: float = 1.0, parallel: int = 1,
        warm_start: bool | None = None) -> Fig15Result:
    """Sweep selectivity for each scheduling configuration.

    Both the query and the controller differ per cell, so the shared
    prefix is the build stage: the warm path captures one built system
    and forks every (mode, level) cell from it.  ``warm_start=None``
    resolves to forking only when ``parallel > 1`` (serially a cold
    build beats a capture/restore round trip; across the spawn pool the
    capture ships once instead of each worker rebuilding).
    """
    from ..runner.pool import Task, run_tasks

    result = Fig15Result(levels=levels, n_clients=n_clients)
    keys = [(mode, level) for mode in MODES for level in levels]
    if warm_start is None:
        warm_start = parallel > 1
    if warm_start:
        base = warm_system(scale=scale, sim_scale=sim_scale)
        tasks = [Task("repro.experiments.fig15_selectivity:run_cell_warm",
                      dict(base=base, mode=mode, level=level,
                           n_clients=n_clients, repetitions=repetitions))
                 for mode, level in keys]
    else:
        tasks = [Task("repro.experiments.fig15_selectivity:run_cell",
                      dict(mode=mode, level=level, n_clients=n_clients,
                           repetitions=repetitions, scale=scale,
                           sim_scale=sim_scale))
                 for mode, level in keys]
    cells = run_tasks(tasks, parallel=parallel)
    for (mode, level), by_socket in zip(keys, cells):
        result.misses[(mode or "OS", level)] = by_socket
    return result
