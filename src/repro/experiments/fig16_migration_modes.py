"""Fig 16 — thread migration maps for all four configurations (§V-A3).

Single-client Q6, full plan, comparing where workers run and how often
they migrate under the OS scheduler and under the mechanism's three modes.

Expected shapes: the OS migrates workers across many cores and nodes; the
dense and adaptive modes confine workers to very few nodes with far fewer
migrations; sparse spreads threads but still migrates less than the OS.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..db.clients import repeat_stream
from ..sim.state import SimState
from ..sim.tracing import MigrationRecord
from .common import (SystemUnderTest, attach_controller, build_system,
                     fork_system, warm_system)
from .fig05_migration_os import ThreadTimeline, collect_timelines

MODES = (None, "dense", "sparse", "adaptive")


@dataclass(frozen=True)
class Fig16Cell:
    """One configuration's migration picture."""

    timelines: list[ThreadTimeline]
    migrations: int
    nodes_used: int
    elapsed: float
    #: every trace record of the traced repetitions, exportable via
    #: :func:`repro.sim.export.dump_records` (golden-trace regression)
    records: tuple[object, ...] = ()


@dataclass
class Fig16Result:
    """Cells per mode label."""

    cells: dict[str, Fig16Cell] = field(default_factory=dict)

    def cell(self, mode: str | None) -> Fig16Cell:
        """Fetch one configuration's cell."""
        return self.cells[mode or "OS"]

    def rows(self) -> list[list[object]]:
        """One row per configuration."""
        return [[mode, cell.migrations, cell.nodes_used,
                 len(cell.timelines), cell.elapsed * 1e3]
                for mode, cell in self.cells.items()]

    def table(self) -> str:
        """The Fig 16 comparison as a text table."""
        return render_table(
            ["mode", "migrations", "nodes used", "threads", "elapsed ms"],
            self.rows(), title="Fig 16 - single-client Q6 migration maps")


def _measure_cell(sut: SystemUnderTest, mode: str | None,
                  repetitions: int, warmup: int) -> Fig16Cell:
    """Attach ``mode``, warm the controller, then trace."""
    attach_controller(sut, mode)
    if warmup:
        sut.run_clients(1, repeat_stream("q6", warmup))
        sut.os.tracer.clear()
    workload = sut.run_clients(1, repeat_stream("q6", repetitions))
    timelines = collect_timelines(sut)
    nodes = {node for t in timelines for node in t.nodes_visited}
    return Fig16Cell(
        timelines=timelines,
        migrations=len(sut.os.tracer.of(MigrationRecord)),
        nodes_used=len(nodes),
        elapsed=workload.makespan,
        records=tuple(sut.os.tracer.all()),
    )


def run_cell(mode: str | None, repetitions: int = 2, warmup: int = 4,
             scale: float = 0.01, sim_scale: float = 1.0) -> Fig16Cell:
    """Trace one configuration on a fresh (cold-built) system."""
    sut = build_system(engine="monetdb", mode=None, scale=scale,
                       sim_scale=sim_scale, record_placements=True)
    return _measure_cell(sut, mode, repetitions, warmup)


def run_cell_warm(base: SimState, mode: str | None, repetitions: int = 2,
                  warmup: int = 4) -> Fig16Cell:
    """Trace one configuration forked from a captured build prefix."""
    return _measure_cell(fork_system(base), mode, repetitions, warmup)


def run(repetitions: int = 2, warmup: int = 4, scale: float = 0.01,
        sim_scale: float = 1.0, parallel: int = 1,
        warm_start: bool | None = None) -> Fig16Result:
    """Trace single-client Q6 under each configuration.

    ``warmup`` repetitions let the controller reach its steady allocation
    before tracing starts (the paper's runs are similarly warm); being
    controller-driven they are mode-specific, so the warm path forks at
    the build stage only.  A build-stage fork saves nothing serially (a
    cold build costs less than a capture/restore round trip), so
    ``warm_start=None`` resolves to forking only when ``parallel > 1`` —
    there the capture ships once through the spawn pool and the ordered
    merge keeps the exported trace records byte-identical to a serial
    cold run (the golden-trace fixture pins this).
    """
    from ..runner.pool import Task, run_tasks

    result = Fig16Result()
    if warm_start is None:
        warm_start = parallel > 1
    if warm_start:
        base = warm_system(scale=scale, sim_scale=sim_scale,
                           record_placements=True)
        tasks = [Task(
            "repro.experiments.fig16_migration_modes:run_cell_warm",
            dict(base=base, mode=mode, repetitions=repetitions,
                 warmup=warmup))
            for mode in MODES]
    else:
        tasks = [Task("repro.experiments.fig16_migration_modes:run_cell",
                      dict(mode=mode, repetitions=repetitions,
                           warmup=warmup, scale=scale,
                           sim_scale=sim_scale))
                 for mode in MODES]
    cells = run_tasks(tasks, parallel=parallel)
    for mode, cell in zip(MODES, cells):
        result.cells[mode or "OS"] = cell
    return result
