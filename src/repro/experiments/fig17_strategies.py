"""Fig 17 — CPU-load vs HT/IMC state-transition strategies (§V-B).

Single-client Q6 under the OS and the three modes, each mode driven once
by the CPU-load strategy (``thmin=10, thmax=70``) and once by the HT/IMC
ratio strategy (``0.1 / 0.4``).  Reported: response time, interconnect
traffic and per-socket L3 misses.

Expected shapes: the controlled modes cut interconnect traffic and L3
misses sharply versus the OS; the adaptive/CPU-load combination is the
fastest; the HT/IMC strategy behaves similarly but reacts more slowly,
costing some response time and extra misses.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..db.clients import repeat_stream
from ..sim.state import SimState
from .common import attach_controller, build_system, fork_system, \
    warm_system

MODES = ("dense", "sparse", "adaptive")
STRATEGIES = ("cpu_load", "ht_imc")


@dataclass(frozen=True)
class Fig17Cell:
    """One (mode, strategy) measurement."""

    response_time: float
    ht_bytes: float
    l3_by_socket: dict[int, float]

    @property
    def l3_total(self) -> float:
        """Machine-wide L3 misses."""
        return sum(self.l3_by_socket.values())


@dataclass
class Fig17Result:
    """Cells keyed by (mode, strategy); the OS baseline is ("OS", "-")."""

    cells: dict[tuple[str, str], Fig17Cell] = field(default_factory=dict)

    def cell(self, mode: str | None,
             strategy: str = "cpu_load") -> Fig17Cell:
        """Fetch one cell (``mode=None`` -> the OS baseline)."""
        if mode is None:
            return self.cells[("OS", "-")]
        return self.cells[(mode, strategy)]

    def rows(self) -> list[list[object]]:
        """One row per configuration."""
        return [[mode, strategy, cell.response_time * 1e3,
                 cell.ht_bytes / 1e6, cell.l3_total / 1e3]
                for (mode, strategy), cell in self.cells.items()]

    def table(self) -> str:
        """The Fig 17 comparison as a text table."""
        return render_table(
            ["mode", "strategy", "response ms", "HT MB", "L3 misses (k)"],
            self.rows(),
            title="Fig 17 - transition strategies on single-client Q6")


def _measure(sut, repetitions: int, warmup: int) -> Fig17Cell:
    """Warm the controller to its steady allocation, then measure."""
    if warmup:
        sut.run_clients(1, repeat_stream("q6", warmup))
    sut.mark()
    workload = sut.run_clients(1, repeat_stream("q6", repetitions))
    return Fig17Cell(
        response_time=workload.mean_latency(),
        ht_bytes=sut.delta("ht_tx_bytes"),
        l3_by_socket={s: sut.delta("l3_miss", s)
                      for s in sut.os.topology.all_nodes()},
    )


def run_cell(mode: str | None, strategy: str = "cpu_load",
             repetitions: int = 3, warmup: int = 5, scale: float = 0.01,
             sim_scale: float = 1.0) -> Fig17Cell:
    """One cold-built configuration cell; ``mode=None`` is the OS
    baseline."""
    sut = build_system(engine="monetdb", mode=None, scale=scale,
                       sim_scale=sim_scale)
    attach_controller(sut, mode,
                      strategy=strategy if mode else "cpu_load")
    return _measure(sut, repetitions, warmup)


def run_cell_warm(base: SimState, mode: str | None,
                  strategy: str = "cpu_load", repetitions: int = 3,
                  warmup: int = 5) -> Fig17Cell:
    """One configuration cell forked from a captured build prefix."""
    sut = fork_system(base)
    attach_controller(sut, mode,
                      strategy=strategy if mode else "cpu_load")
    return _measure(sut, repetitions, warmup)


def run(repetitions: int = 3, warmup: int = 5, scale: float = 0.01,
        sim_scale: float = 1.0, parallel: int = 1,
        warm_start: bool | None = None) -> Fig17Result:
    """Run the OS baseline plus each (mode, strategy) pair.

    The warm-up phase runs under each cell's own (mode, strategy)
    controller, so the shared prefix is the build stage: the warm path
    captures one built system and forks all seven cells from it.
    ``warm_start=None`` resolves to forking only when ``parallel > 1``
    (a build-stage fork saves nothing serially; across the spawn pool
    the capture ships once instead of each worker rebuilding).
    """
    from ..runner.pool import Task, run_tasks

    result = Fig17Result()
    keys: list[tuple[str | None, str]] = [(None, "-")]
    keys.extend((mode, strategy) for strategy in STRATEGIES
                for mode in MODES)
    if warm_start is None:
        warm_start = parallel > 1
    if warm_start:
        base = warm_system(scale=scale, sim_scale=sim_scale)
        tasks = [Task("repro.experiments.fig17_strategies:run_cell_warm",
                      dict(base=base, mode=mode, strategy=strategy,
                           repetitions=repetitions, warmup=warmup))
                 for mode, strategy in keys]
    else:
        tasks = [Task("repro.experiments.fig17_strategies:run_cell",
                      dict(mode=mode, strategy=strategy,
                           repetitions=repetitions, warmup=warmup,
                           scale=scale, sim_scale=sim_scale))
                 for mode, strategy in keys]
    cells = run_tasks(tasks, parallel=parallel)
    for (mode, strategy), cell in zip(keys, cells):
        result.cells[(mode or "OS", strategy)] = cell
    return result
