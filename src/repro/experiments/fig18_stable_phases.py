"""Fig 18 — stable-phases workload: per-socket memory throughput (§V-C1).

All clients run each TPC-H query as one concurrent phase (q1 by everyone,
then q2, ...).  A periodic probe samples each socket's memory-controller
rate, yielding the time series the paper plots for MonetDB and SQL Server,
with and without the adaptive mechanism.

Expected shapes: OS/MonetDB hammers the loader socket (S0) for the whole
run; the adaptive mechanism finishes sooner and shifts socket focus across
phases; SQL Server spreads throughput across sockets in both cases and
still finishes sooner with the mechanism.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..db.clients import ClientPool, repeat_stream
from ..workloads.phases import stable_phases_schedule
from .common import SystemUnderTest, build_system

CONFIGS = (
    ("monetdb", None),
    ("monetdb", "adaptive"),
    ("sqlserver", None),
    ("sqlserver", "adaptive"),
)


@dataclass
class ThroughputTimeline:
    """Per-socket memory throughput samples over one run."""

    sample_interval: float
    #: (time, {socket: bytes/s})
    samples: list[tuple[float, dict[int, float]]] \
        = field(default_factory=list)
    makespan: float = 0.0

    def socket_share(self) -> dict[int, float]:
        """Fraction of total memory traffic served by each socket."""
        totals: dict[int, float] = {}
        for _, rates in self.samples:
            for socket, rate in rates.items():
                totals[socket] = totals.get(socket, 0.0) + rate
        grand = sum(totals.values())
        if grand <= 0:
            return {s: 0.0 for s in totals}
        return {s: v / grand for s, v in totals.items()}

    def peak_rate(self) -> float:
        """Highest single-socket rate observed."""
        return max((rate for _, rates in self.samples
                    for rate in rates.values()), default=0.0)


@dataclass
class Fig18Result:
    """Timelines per configuration label."""

    timelines: dict[str, ThroughputTimeline] = field(default_factory=dict)

    def makespan(self, engine: str, mode: str | None) -> float:
        """Total run time of one configuration."""
        return self.timelines[f"{engine}/{mode or 'OS'}"].makespan

    def rows(self) -> list[list[object]]:
        """One row per configuration."""
        out: list[list[object]] = []
        for label, timeline in self.timelines.items():
            share = timeline.socket_share()
            row: list[object] = [label, timeline.makespan]
            row.extend(round(share.get(s, 0.0), 3)
                       for s in sorted(share))
            row.append(timeline.peak_rate() / 1e9)
            out.append(row)
        return out

    def table(self) -> str:
        """The Fig 18 summary as a text table."""
        sockets = sorted(next(iter(self.timelines.values()))
                         .socket_share())
        headers = ["config", "makespan s"]
        headers.extend(f"S{s} share" for s in sockets)
        headers.append("peak GB/s")
        return render_table(headers, self.rows(),
                            title="Fig 18 - stable phases workload")


def _probe(sut: SystemUnderTest, timeline: ThroughputTimeline,
           previous: dict) -> None:
    now = sut.os.now
    current = {s: sut.os.counters.get("imc_bytes", s)
               for s in sut.os.topology.all_nodes()}
    rates = {s: (current[s] - previous.get(s, 0.0))
             / timeline.sample_interval for s in current}
    timeline.samples.append((now, rates))
    previous.clear()
    previous.update(current)
    if sut.os.scheduler.live_threads() > 0:
        sut.os.sim.schedule(timeline.sample_interval, _probe, sut,
                            timeline, previous)


def run(n_clients: int = 16, scale: float = 0.01, sim_scale: float = 1.0,
        sample_interval: float = 0.1,
        queries: list[str] | None = None) -> Fig18Result:
    """Run the stable-phases workload for all four configurations."""
    phases = stable_phases_schedule(queries)
    result = Fig18Result()
    for engine, mode in CONFIGS:
        sut = build_system(engine=engine, mode=mode, scale=scale,
                           sim_scale=sim_scale)
        timeline = ThroughputTimeline(sample_interval=sample_interval)
        start = sut.os.now
        previous: dict = {}
        for query_name in phases:
            pool = ClientPool(sut.engine, n_clients,
                              repeat_stream(query_name, 1))
            pool.start()
            sut.os.sim.schedule(sample_interval, _probe, sut, timeline,
                                previous)
            sut.os.run_until_idle()
            if sut.controller is not None:
                sut.controller.kick()
        timeline.makespan = sut.os.now - start
        result.timelines[sut.label] = timeline
    return result
