"""Fig 19 — mixed-phases workload: per-query speedup and HT/IMC (§V-C2).

Every client continuously runs a random query out of the 22; per query the
harness reports the mean latency under each configuration and the
per-query HT/IMC traffic ratio (attributed through the per-query counter
families).  The headline numbers of the paper — speedup of the adaptive
mode over the OS and the ratio reduction — are derived from these series.

Expected shapes: adaptive speedups above 1 for most queries with the
join-heavy (q8, q9) and IN-heavy (q19, q22) queries among the clearer
ratio reductions; the adaptive HT/IMC ratios uniformly at or below the
OS's.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.metrics import geometric_mean
from ..analysis.report import render_table
from ..workloads.phases import mixed_phases_stream
from ..workloads.tpch.queries import QUERY_NAMES
from .common import build_system

MODES = (None, "dense", "sparse", "adaptive")


@dataclass
class Fig19Run:
    """One configuration's per-query series."""

    mean_latency: dict[str, float] = field(default_factory=dict)
    ht_imc_ratio: dict[str, float] = field(default_factory=dict)
    makespan: float = 0.0
    throughput: float = 0.0


@dataclass
class Fig19Result:
    """Runs per (engine, mode label)."""

    engine: str
    runs: dict[str, Fig19Run] = field(default_factory=dict)

    def speedup(self, query: str, mode: str = "adaptive") -> float:
        """OS-over-mode latency ratio for one query (>1 = mode faster)."""
        baseline = self.runs["OS"].mean_latency.get(query, 0.0)
        improved = self.runs[mode].mean_latency.get(query, 0.0)
        if baseline <= 0 or improved <= 0:
            return 1.0
        return baseline / improved

    def mean_speedup(self, mode: str = "adaptive") -> float:
        """Geometric-mean per-query speedup of one mode."""
        values = [self.speedup(q, mode) for q in QUERY_NAMES
                  if self.runs["OS"].mean_latency.get(q, 0.0) > 0
                  and self.runs[mode].mean_latency.get(q, 0.0) > 0]
        return geometric_mean(values) if values else 1.0

    def ratio_reduction(self, query: str,
                        mode: str = "adaptive") -> float:
        """How many times smaller the mode's HT/IMC ratio is."""
        baseline = self.runs["OS"].ht_imc_ratio.get(query, 0.0)
        improved = self.runs[mode].ht_imc_ratio.get(query, 0.0)
        if baseline <= 0 or improved <= 0:
            return 1.0
        return baseline / improved

    def rows(self) -> list[list[object]]:
        """One row per query: latencies, ratios, adaptive speedup."""
        out: list[list[object]] = []
        for query in QUERY_NAMES:
            os_run = self.runs["OS"]
            ad_run = self.runs["adaptive"]
            if query not in os_run.mean_latency:
                continue
            out.append([
                query,
                os_run.mean_latency.get(query, 0.0),
                ad_run.mean_latency.get(query, 0.0),
                self.speedup(query),
                os_run.ht_imc_ratio.get(query, 0.0),
                ad_run.ht_imc_ratio.get(query, 0.0),
            ])
        return out

    def table(self) -> str:
        """The Fig 19 per-query series as a text table."""
        return render_table(
            ["query", "OS lat s", "adaptive lat s", "speedup",
             "OS HT/IMC", "adaptive HT/IMC"],
            self.rows(),
            title=(f"Fig 19 - mixed phases on {self.engine} "
                   f"(mean speedup {self.mean_speedup():.2f}x)"))


def run(engine: str = "monetdb", n_clients: int = 32,
        queries_per_client: int = 4, scale: float = 0.01,
        sim_scale: float = 1.0, seed: int = 7,
        modes: tuple = MODES) -> Fig19Result:
    """Run the mixed workload for each configuration of one engine."""
    result = Fig19Result(engine=engine)
    stream = mixed_phases_stream(queries_per_client, seed=seed)
    for mode in modes:
        sut = build_system(engine=engine, mode=mode, scale=scale,
                           sim_scale=sim_scale)
        sut.mark()
        workload = sut.run_clients(n_clients, stream)
        run_data = Fig19Run(makespan=workload.makespan,
                            throughput=workload.throughput)
        for query in QUERY_NAMES:
            latencies = workload.latencies(query)
            if latencies:
                run_data.mean_latency[query] = \
                    sum(latencies) / len(latencies)
            run_data.ht_imc_ratio[query] = sut.query_ht_imc_ratio(query)
        result.runs[mode or "OS"] = run_data
    return result
