"""Fig 20 — per-query energy, OS scheduler vs adaptive mode (§V-C3).

Follows the paper's estimation method: CPU energy from the Average CPU
Power rating and the measured busy time, interconnect energy from the
counted HT bytes times an energy-per-bit figure [Wang & Lee 2015].  Both
are attributed per query through the per-query counter families recorded
during the mixed-phases workload.

Expected shapes: every query saves energy under the adaptive mode; the HT
component saves a much larger *fraction* than the CPU component; total
system saving in the tens of percent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..analysis.metrics import geometric_mean
from ..analysis.report import render_table
from ..workloads.phases import mixed_phases_stream
from ..workloads.tpch.queries import QUERY_NAMES
from .common import build_system


@dataclass(frozen=True)
class QueryEnergy:
    """Joules attributed to one query type over a run."""

    cpu_joules: float
    ht_joules: float

    @property
    def total(self) -> float:
        """CPU plus interconnect energy."""
        return self.cpu_joules + self.ht_joules


@dataclass
class Fig20Result:
    """Per-query energy under both configurations."""

    os_energy: dict[str, QueryEnergy] = field(default_factory=dict)
    adaptive_energy: dict[str, QueryEnergy] = field(default_factory=dict)

    def saving(self, query: str) -> float:
        """Fractional total-energy saving for one query (0..1)."""
        base = self.os_energy.get(query)
        improved = self.adaptive_energy.get(query)
        if base is None or improved is None or base.total <= 0:
            return 0.0
        return 1.0 - improved.total / base.total

    def total_saving(self) -> float:
        """System-level fractional saving across all queries."""
        base = sum(e.total for e in self.os_energy.values())
        improved = sum(e.total for e in self.adaptive_energy.values())
        if base <= 0:
            return 0.0
        return 1.0 - improved / base

    def component_savings(self) -> tuple[float, float]:
        """Geometric-mean per-query (CPU, HT) savings, as fractions."""
        cpu_ratios = []
        ht_ratios = []
        for query in self.os_energy:
            base = self.os_energy[query]
            improved = self.adaptive_energy.get(query)
            if improved is None:
                continue
            if base.cpu_joules > 0 and improved.cpu_joules > 0:
                cpu_ratios.append(improved.cpu_joules / base.cpu_joules)
            if base.ht_joules > 0 and improved.ht_joules > 0:
                ht_ratios.append(improved.ht_joules / base.ht_joules)
        cpu = 1.0 - geometric_mean(cpu_ratios) if cpu_ratios else 0.0
        ht = 1.0 - geometric_mean(ht_ratios) if ht_ratios else 0.0
        return cpu, ht

    def rows(self) -> list[list[object]]:
        """One row per query."""
        out: list[list[object]] = []
        for query in QUERY_NAMES:
            if query not in self.os_energy:
                continue
            base = self.os_energy[query]
            improved = self.adaptive_energy.get(
                query, QueryEnergy(0.0, 0.0))
            out.append([query, base.cpu_joules, base.ht_joules,
                        improved.cpu_joules, improved.ht_joules,
                        f"{self.saving(query):.1%}"])
        return out

    def table(self) -> str:
        """The Fig 20 energy comparison as a text table."""
        return render_table(
            ["query", "OS cpu J", "OS ht J", "adp cpu J", "adp ht J",
             "saving"],
            self.rows(),
            title=(f"Fig 20 - energy, OS vs adaptive "
                   f"(total saving {self.total_saving():.1%})"))


def _query_energy(sut, query: str) -> QueryEnergy:
    config = sut.os.machine.config
    busy = sut.delta("query_busy_time", query)
    per_core_watts = config.acp_watts / config.cores_per_socket
    ht_bytes = sut.delta("query_ht_bytes", query)
    return QueryEnergy(
        cpu_joules=busy * per_core_watts,
        ht_joules=ht_bytes * 8.0 * config.ht_joules_per_bit,
    )


def run(n_clients: int = 32, queries_per_client: int = 4,
        scale: float = 0.01, sim_scale: float = 1.0,
        seed: int = 7) -> Fig20Result:
    """Mixed-phases runs under OS and adaptive, energy per query."""
    result = Fig20Result()
    stream = mixed_phases_stream(queries_per_client, seed=seed)
    for mode, sink in ((None, result.os_energy),
                       ("adaptive", result.adaptive_energy)):
        sut = build_system(engine="monetdb", mode=mode, scale=scale,
                           sim_scale=sim_scale)
        sut.mark()
        sut.run_clients(n_clients, stream)
        for query in QUERY_NAMES:
            sink[query] = _query_energy(sut, query)
    return result
