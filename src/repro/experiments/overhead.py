"""Controller overhead — the token-flow measurements of §V.

The paper measures the wall-clock time of one token flow through the 5x8
model (0.017 s dense, 0.021 s sparse, 0.031 s adaptive on their hardware)
and notes the controller's CPU share stays below 1 %.  The equivalent here
is the host-side wall time of one full rule-condition-action pass per
allocation mode, compared against the controller interval.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..db.clients import repeat_stream
from .common import build_system

MODES = ("dense", "sparse", "adaptive")


@dataclass
class OverheadResult:
    """Median wall seconds per pipeline pass, per mode.

    The median is reported (not the mean) because host-side noise — GC,
    page faults — produces millisecond outliers unrelated to the token
    flow being measured.
    """

    interval: float
    per_pass: dict[str, float] = field(default_factory=dict)

    def cpu_share(self, mode: str) -> float:
        """Controller CPU share: pass time over the tick interval."""
        return self.per_pass[mode] / self.interval

    def rows(self) -> list[list[object]]:
        """One row per mode."""
        return [[mode, seconds * 1e6,
                 f"{self.cpu_share(mode):.3%}"]
                for mode, seconds in self.per_pass.items()]

    def table(self) -> str:
        """The overhead measurements as a text table."""
        return render_table(
            ["mode", "pass time (us)", "CPU share of interval"],
            self.rows(), title="Controller overhead (token flow)")


def run(passes: int = 200, scale: float = 0.01) -> OverheadResult:
    """Time ``passes`` pipeline iterations per allocation mode.

    The system carries a live workload so the monitor and priority queue
    see realistic state (an empty machine would flatter the numbers).
    """
    result = OverheadResult(interval=0.02)
    for mode in MODES:
        sut = build_system(engine="monetdb", mode=mode, scale=scale)
        assert sut.controller is not None
        result.interval = sut.controller.config.interval
        # park some work so threads/counters are populated, then pause
        pool_started = sut.run_clients(2, repeat_stream("q6", 1))
        assert pool_started.queries_completed == 2
        controller = sut.controller
        samples = []
        for _ in range(passes):
            start = time.perf_counter()
            controller.run_pipeline_once()
            samples.append(time.perf_counter() - start)
        samples.sort()
        result.per_pass[mode] = samples[len(samples) // 2]
    return result
