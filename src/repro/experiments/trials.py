"""Multi-seed trials: mean/spread statistics over repeated experiments.

Single runs of the mixed workloads carry sampling noise (each query
appears only a handful of times per run).  :func:`run_trials` repeats a
harness over several seeds and aggregates any scalar metrics extracted
from each result, giving the headline numbers in EXPERIMENTS.md an
error bar.

Example::

    stats = run_trials(
        lambda seed: fig19_mixed_phases.run(seed=seed,
                                            modes=(None, "adaptive")),
        extract=lambda r: {"speedup": r.mean_speedup()},
        seeds=(1, 2, 3, 4, 5))
    print(stats.table())
    stats.mean("speedup"), stats.std("speedup")
"""

from __future__ import annotations

import math
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field

from ..analysis.report import render_table
from ..errors import ReproError


@dataclass
class TrialStats:
    """Per-metric samples across seeds."""

    seeds: tuple[int, ...]
    samples: dict[str, list[float]] = field(default_factory=dict)

    def add(self, metrics: dict[str, float]) -> None:
        """Record one trial's extracted metrics."""
        for name, value in metrics.items():
            self.samples.setdefault(name, []).append(float(value))

    def mean(self, name: str) -> float:
        """Sample mean of one metric."""
        values = self._values(name)
        return sum(values) / len(values)

    def std(self, name: str) -> float:
        """Sample standard deviation (ddof=1; 0.0 for one sample)."""
        values = self._values(name)
        if len(values) < 2:
            return 0.0
        mu = self.mean(name)
        return math.sqrt(sum((v - mu) ** 2 for v in values)
                         / (len(values) - 1))

    def minmax(self, name: str) -> tuple[float, float]:
        """(min, max) of one metric."""
        values = self._values(name)
        return min(values), max(values)

    def _values(self, name: str) -> list[float]:
        if name not in self.samples or not self.samples[name]:
            raise ReproError(f"no samples for metric {name!r}")
        return self.samples[name]

    def rows(self) -> list[list[object]]:
        """One row per metric."""
        out = []
        for name in self.samples:
            lo, hi = self.minmax(name)
            out.append([name, self.mean(name), self.std(name), lo, hi,
                        len(self.samples[name])])
        return out

    def table(self) -> str:
        """The statistics as a text table."""
        return render_table(
            ["metric", "mean", "std", "min", "max", "n"],
            self.rows(),
            title=f"Trials over seeds {list(self.seeds)}")


def _call_runner(runner: Callable[..., object] | str, seed: int,
                 base: object | None = None) -> object:
    """Worker entry point for one trial (resolves spec-string runners)."""
    if isinstance(runner, str):
        from ..runner.pool import resolve
        runner = resolve(runner)
    if base is not None:
        return runner(seed, base)
    return runner(seed)


def run_trials(runner: Callable[..., object] | str,
               extract: Callable[[object], dict[str, float]],
               seeds: Iterable[int] = (1, 2, 3, 4, 5),
               parallel: int = 1,
               base: object | None = None) -> TrialStats:
    """Run ``runner(seed)`` per seed and aggregate ``extract(result)``.

    Trials are independent by construction (the seed is the only input),
    so ``parallel > 1`` fans them across worker processes; results merge
    in seed order, so the statistics match a serial run exactly.  A
    parallel ``runner`` must be picklable — a module-level function or,
    for lambdas/closures, a ``"module:attr"`` spec string.

    ``base`` forwards a captured warm prefix (a
    :class:`~repro.sim.SimState` from
    :func:`~repro.experiments.common.warm_system`) to every trial as
    ``runner(seed, base)``, so seed-independent warm-up — data load,
    registration — simulates once instead of once per seed; the capture
    pickles across the spawn pool like any other kwarg.
    """
    seeds = tuple(seeds)
    if not seeds:
        raise ReproError("need at least one seed")
    stats = TrialStats(seeds=seeds)
    if parallel > 1 and len(seeds) > 1:
        from ..runner.pool import Task, run_tasks

        kwargs = dict(runner=runner) if base is None \
            else dict(runner=runner, base=base)
        results = run_tasks(
            [Task("repro.experiments.trials:_call_runner",
                  dict(seed=seed, **kwargs)) for seed in seeds],
            parallel=parallel)
        for result in results:
            stats.add(extract(result))
        return stats
    for seed in seeds:
        stats.add(extract(_call_runner(runner, seed, base)))
    return stats
