"""Simulated NUMA hardware: topology, memory banks, caches, interconnect.

This package plays the role of the paper's AMD Opteron 8387 testbed.  The
central runtime object is :class:`~repro.hardware.machine.Machine`, which
binds the static :class:`~repro.hardware.topology.Topology` to per-socket
shared caches, per-node memory banks, the HyperTransport-style interconnect
and a :class:`~repro.hardware.counters.CounterBank` (the likwid stand-in).
"""

from .cache import SharedCache
from .counters import CounterBank, CounterSnapshot
from .energy import EnergyModel, EnergyReport
from .interconnect import Interconnect
from .machine import AccessResult, Machine
from .memory import MemorySystem
from .prebuilt import opteron_8387, ring_topology, small_numa
from .topology import Topology

__all__ = [
    "Topology",
    "SharedCache",
    "MemorySystem",
    "Interconnect",
    "CounterBank",
    "CounterSnapshot",
    "Machine",
    "AccessResult",
    "EnergyModel",
    "EnergyReport",
    "opteron_8387",
    "small_numa",
    "ring_topology",
]
