"""Per-socket shared last-level cache, modelled at page granularity.

The paper's locality effects all flow through the L3: threads that stay on
one socket keep their working set resident; threads migrated by the OS load
balancer arrive at a socket whose L3 does not hold their pages and must pull
everything over the interconnect again (§II-B2, §V-A1).  A page-granular LRU
reproduces exactly that behaviour without simulating cache lines.

Private L1/L2 effects are folded into the operators' cycles-per-byte
constants (see :mod:`repro.db.cost`); only the shared L3 is stateful.
"""

from __future__ import annotations

from collections import OrderedDict

from ..errors import HardwareError


class SharedCache:
    """An LRU set of resident page ids with a fixed page capacity."""

    def __init__(self, capacity_pages: int, socket_id: int = 0):
        if capacity_pages < 1:
            raise HardwareError("cache capacity must be at least one page")
        self.capacity_pages = capacity_pages
        self.socket_id = socket_id
        self._resident: OrderedDict[int, None] = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, page: int) -> bool:
        return page in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def access(self, page: int) -> bool:
        """Touch one page.  Returns ``True`` on hit, ``False`` on miss.

        A miss inserts the page, evicting the least recently used resident
        page when the cache is full.

        .. note:: :meth:`repro.hardware.machine.Machine.touch` inlines this
           probe (and the hit/miss/eviction accounting) in its fast path;
           any behaviour change here must be mirrored there.
        """
        resident = self._resident
        if page in resident:
            resident.move_to_end(page)
            self.hits += 1
            return True
        self.misses += 1
        if len(resident) >= self.capacity_pages:
            resident.popitem(last=False)
            self.evictions += 1
        resident[page] = None
        return False

    def access_many(self, pages) -> tuple[int, int]:
        """Touch pages in order; returns ``(hits, misses)``."""
        hits = 0
        for page in pages:
            if self.access(page):
                hits += 1
        return hits, len(pages) - hits

    def invalidate(self, pages) -> int:
        """Drop specific pages (e.g. on writer invalidation); returns count."""
        dropped = 0
        for page in pages:
            if self._resident.pop(page, "absent") is None:
                dropped += 1
        return dropped

    def flush(self) -> None:
        """Empty the cache."""
        self._resident.clear()

    def resident_pages(self) -> list[int]:
        """Resident page ids from coldest to hottest."""
        return list(self._resident)

    @property
    def occupancy(self) -> float:
        """Fraction of capacity currently resident."""
        return len(self._resident) / self.capacity_pages

    def hit_ratio(self) -> float:
        """Lifetime hit ratio; 0.0 before any access."""
        accesses = self.hits + self.misses
        return self.hits / accesses if accesses else 0.0
