"""Per-socket shared last-level cache, modelled at page granularity.

The paper's locality effects all flow through the L3: threads that stay on
one socket keep their working set resident; threads migrated by the OS load
balancer arrive at a socket whose L3 does not hold their pages and must pull
everything over the interconnect again (§II-B2, §V-A1).  A page-granular LRU
reproduces exactly that behaviour without simulating cache lines.

Residency is a plain ``dict`` whose insertion order *is* the recency
order (coldest first): a hit re-inserts its key at the back, a miss
evicts the front.  Plain-dict operations beat ``OrderedDict``'s linked
list on every hot operation, and batch paths can rebuild the dict with
C-level iteration instead of popping pages one by one.

Private L1/L2 effects are folded into the operators' cycles-per-byte
constants (see :mod:`repro.db.cost`); only the shared L3 is stateful.
"""

from __future__ import annotations

from ..errors import HardwareError


class SharedCache:
    """An LRU set of resident page ids with a fixed page capacity."""

    def __init__(self, capacity_pages: int, socket_id: int = 0):
        if capacity_pages < 1:
            raise HardwareError("cache capacity must be at least one page")
        self.capacity_pages = capacity_pages
        self.socket_id = socket_id
        #: page id -> None, insertion-ordered coldest to hottest
        self._resident: dict[int, None] = {}
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __contains__(self, page: int) -> bool:
        return page in self._resident

    def __len__(self) -> int:
        return len(self._resident)

    def access(self, page: int) -> bool:
        """Touch one page.  Returns ``True`` on hit, ``False`` on miss.

        A miss inserts the page, evicting the least recently used resident
        page when the cache is full.

        .. note:: :meth:`repro.hardware.machine.Machine.touch` inlines this
           probe (and the hit/miss/eviction accounting) in its fast path;
           any behaviour change here must be mirrored there.
        """
        resident = self._resident
        if page in resident:
            # re-insert at the back: the plain-dict move_to_end
            del resident[page]
            resident[page] = None
            self.hits += 1
            return True
        self.misses += 1
        if len(resident) >= self.capacity_pages:
            del resident[next(iter(resident))]
            self.evictions += 1
        resident[page] = None
        return False

    def access_many(self, pages) -> tuple[int, int]:
        """Touch pages in order; returns ``(hits, misses)``."""
        hits = 0
        for page in pages:
            if self.access(page):
                hits += 1
        return hits, len(pages) - hits

    def invalidate(self, pages) -> int:
        """Drop specific pages (e.g. on writer invalidation); returns count."""
        resident = self._resident
        if not resident:
            return 0
        # set intersection walks ``pages`` in C; only actual victims are
        # then deleted (typically none — cross-socket sharing is rare)
        common = resident.keys() & pages
        for page in common:
            del resident[page]
        return len(common)

    def flush(self) -> None:
        """Empty the cache."""
        self._resident.clear()

    def resident_pages(self) -> list[int]:
        """Resident page ids from coldest to hottest."""
        return list(self._resident)

    @property
    def occupancy(self) -> float:
        """Fraction of capacity currently resident."""
        return len(self._resident) / self.capacity_pages

    def hit_ratio(self) -> float:
        """Lifetime hit ratio; 0.0 before any access."""
        accesses = self.hits + self.misses
        return self.hits / accesses if accesses else 0.0
