"""Hardware-counter bank: the simulation's likwid/mpstat stand-in.

Counters are cumulative floats addressed by ``(name, index)`` — e.g.
``("l3_miss", socket)``, ``("busy_time", core)`` or a per-query family
like ``("query_ht_bytes", "q6")`` (indexes are any hashable).  Consumers
needing *rates over a window* (the controller's monitor, the harnesses)
take a :class:`CounterSnapshot` and later diff against a newer one, exactly
how a real monitoring loop samples MSRs.
"""

from __future__ import annotations

from collections import defaultdict


class CounterSnapshot:
    """Immutable copy of all counters at one instant."""

    __slots__ = ("time", "_values")

    def __init__(self, time: float, values: dict[tuple[str, object], float]):
        self.time = time
        self._values = values

    def get(self, name: str, index=0) -> float:
        """Cumulative value of one counter at snapshot time."""
        return self._values.get((name, index), 0.0)

    def total(self, name: str) -> float:
        """Sum of one counter family across all indices."""
        return sum(v for (n, _), v in self._values.items() if n == name)

    def delta(self, earlier: "CounterSnapshot", name: str,
              index=0) -> float:
        """Counter increase between ``earlier`` and this snapshot."""
        return self.get(name, index) - earlier.get(name, index)

    def delta_total(self, earlier: "CounterSnapshot", name: str) -> float:
        """Family-wide increase between ``earlier`` and this snapshot."""
        return self.total(name) - earlier.total(name)

    def rate(self, earlier: "CounterSnapshot", name: str,
             index=0) -> float:
        """Per-second rate of one counter over the snapshot window."""
        dt = self.time - earlier.time
        if dt <= 0:
            return 0.0
        return self.delta(earlier, name, index) / dt

    def rate_total(self, earlier: "CounterSnapshot", name: str) -> float:
        """Per-second family-wide rate over the snapshot window."""
        dt = self.time - earlier.time
        if dt <= 0:
            return 0.0
        return self.delta_total(earlier, name) / dt


class CounterBank:
    """Mutable cumulative counters, written by the hardware/OS models.

    Well-known families used across the library:

    ``l3_hit`` / ``l3_miss``
        per-socket shared-cache outcomes (events);
    ``imc_bytes``
        bytes served by each node's integrated memory controller;
    ``ht_tx_bytes``
        bytes each node pushed onto the interconnect;
    ``busy_time``
        per-core seconds spent executing threads;
    ``minor_faults``
        per-node minor page faults;
    ``migrations`` / ``stolen_tasks``
        per-core scheduler activity;
    ``tasks``
        per-core dispatch count.
    """

    def __init__(self) -> None:
        self._values: dict[tuple[str, object], float] = defaultdict(float)

    def add(self, name: str, index, amount: float) -> None:
        """Increase counter ``(name, index)`` by ``amount`` (>= 0)."""
        self._values[(name, index)] += amount

    def increment(self, name: str, index=0) -> None:
        """Increase counter ``(name, index)`` by one event."""
        self._values[(name, index)] += 1.0

    def get(self, name: str, index=0) -> float:
        """Current cumulative value of one counter."""
        return self._values.get((name, index), 0.0)

    def total(self, name: str) -> float:
        """Sum of one counter family across all indices."""
        return sum(v for (n, _), v in self._values.items() if n == name)

    def by_index(self, name: str) -> dict:
        """Family values keyed by index (e.g. per-socket L3 misses)."""
        return {i: v for (n, i), v in self._values.items() if n == name}

    def snapshot(self, time: float) -> CounterSnapshot:
        """Copy all counters for windowed-rate computation."""
        return CounterSnapshot(time, dict(self._values))

    def reset(self) -> None:
        """Zero every counter (used between experiment repetitions)."""
        self._values.clear()
