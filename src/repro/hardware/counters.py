"""Hardware-counter bank: the simulation's likwid/mpstat stand-in.

Counters are cumulative floats addressed by ``(name, index)`` — e.g.
``("l3_miss", socket)``, ``("busy_time", core)`` or a per-query family
like ``("query_ht_bytes", "q6")`` (indexes are any hashable).  Consumers
needing *rates over a window* (the controller's monitor, the harnesses)
take a :class:`CounterSnapshot` and later diff against a newer one, exactly
how a real monitoring loop samples MSRs.

Array-backed layout
-------------------
Storage is **per family**: each counter name owns a compact
``array('d')`` of values plus an index map assigning every index a slot.
This replaces the original flat ``(name, index) -> float`` dict, whose
``total()``/``by_index()`` had to scan *every* counter of *every*
family on each monitor tick.  Family reductions now touch only that
family's C-contiguous array — and ``sum()`` over an ``array('d')`` adds
left-to-right exactly like the old generator expression, so totals are
bit-identical (slot order *is* the old dict's family-restricted
insertion order).  Snapshots copy the value arrays (one C memcpy per
family) and alias the slot maps, which only ever grow; batch consumers
may grab a zero-copy numpy view via :meth:`CounterBank.family_values`.
"""

from __future__ import annotations

from array import array


class _Family:
    """One counter family: slot map + packed values.

    ``slots`` assigns each index a position in ``values`` in first-write
    order, so iterating ``slots`` replays the family's insertion order —
    the same order the flat dict layout exposed.
    """

    __slots__ = ("slots", "values")

    def __init__(self) -> None:
        self.slots: dict = {}
        self.values: array = array("d")

    def add(self, index, amount: float) -> None:
        """Increase the counter at ``index`` by ``amount``.

        The hot-path entry point for callers holding a
        :meth:`CounterBank.family` handle: one dict probe and one array
        store, no per-call family lookup.
        """
        pos = self.slots.get(index)
        if pos is None:
            self.slots[index] = len(self.values)
            self.values.append(0.0 + amount)
        else:
            self.values[pos] += amount


class CounterSnapshot:
    """Immutable copy of all counters at one instant.

    ``families`` maps name to ``(slots, values)`` where ``slots`` is
    aliased from the live bank (it only grows, never mutates in place)
    and ``values`` is a frozen copy; a slot past the copied length is a
    counter born after the snapshot, read as 0.0.
    """

    __slots__ = ("time", "_families")

    def __init__(self, time: float,
                 families: dict[str, tuple[dict, array]]):
        self.time = time
        self._families = families

    def get(self, name: str, index=0) -> float:
        """Cumulative value of one counter at snapshot time."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        slots, values = family
        pos = slots.get(index)
        if pos is None or pos >= len(values):
            return 0.0
        return values[pos]

    def total(self, name: str) -> float:
        """Sum of one counter family across all indices."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        return sum(family[1])

    def by_index(self, name: str) -> dict:
        """Family values keyed by index (e.g. per-socket L3 misses)."""
        family = self._families.get(name)
        if family is None:
            return {}
        slots, values = family
        n = len(values)
        return {i: values[p] for i, p in slots.items() if p < n}

    def delta(self, earlier: "CounterSnapshot", name: str,
              index=0) -> float:
        """Counter increase between ``earlier`` and this snapshot."""
        return self.get(name, index) - earlier.get(name, index)

    def delta_total(self, earlier: "CounterSnapshot", name: str) -> float:
        """Family-wide increase between ``earlier`` and this snapshot."""
        return self.total(name) - earlier.total(name)

    def rate(self, earlier: "CounterSnapshot", name: str,
             index=0) -> float:
        """Per-second rate of one counter over the snapshot window."""
        dt = self.time - earlier.time
        if dt <= 0:
            return 0.0
        return self.delta(earlier, name, index) / dt

    def rate_total(self, earlier: "CounterSnapshot", name: str) -> float:
        """Per-second family-wide rate over the snapshot window."""
        dt = self.time - earlier.time
        if dt <= 0:
            return 0.0
        return self.delta_total(earlier, name) / dt


class CounterBank:
    """Mutable cumulative counters, written by the hardware/OS models.

    Well-known families used across the library:

    ``l3_hit`` / ``l3_miss``
        per-socket shared-cache outcomes (events);
    ``imc_bytes``
        bytes served by each node's integrated memory controller;
    ``ht_tx_bytes``
        bytes each node pushed onto the interconnect;
    ``busy_time``
        per-core seconds spent executing threads;
    ``minor_faults``
        per-node minor page faults;
    ``migrations`` / ``stolen_tasks``
        per-core scheduler activity;
    ``tasks``
        per-core dispatch count.
    """

    __slots__ = ("_families",)

    def __init__(self) -> None:
        self._families: dict[str, _Family] = {}

    def add(self, name: str, index, amount: float) -> None:
        """Increase counter ``(name, index)`` by ``amount`` (>= 0)."""
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family()
        pos = family.slots.get(index)
        if pos is None:
            family.slots[index] = len(family.values)
            family.values.append(0.0 + amount)
        else:
            family.values[pos] += amount

    def increment(self, name: str, index=0) -> None:
        """Increase counter ``(name, index)`` by one event."""
        self.add(name, index, 1.0)

    def family(self, name: str) -> _Family:
        """Live handle on one family for hot writers.

        The returned object stays valid for the lifetime of the bank —
        :meth:`reset` swaps each family's internals rather than the
        family object — so callers may resolve it once (e.g. at machine
        construction) and call ``handle.add(index, amount)`` per event,
        skipping the per-call name lookup.  Creating the handle does not
        create any counter slot, so first-write slot order (and with it
        the bit-exact ``total()`` summation order) is unchanged.
        """
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family()
        return family

    def get(self, name: str, index=0) -> float:
        """Current cumulative value of one counter."""
        family = self._families.get(name)
        if family is None:
            return 0.0
        pos = family.slots.get(index)
        return 0.0 if pos is None else family.values[pos]

    def slot(self, name: str, index) -> int:
        """Stable slot of ``(name, index)`` in the family array.

        Creates the counter (at 0.0) on first use, so hot readers — the
        load sampler, live taps — can resolve indices once and then read
        :meth:`family_values` positionally every tick.
        """
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family()
        pos = family.slots.get(index)
        if pos is None:
            pos = family.slots[index] = len(family.values)
            family.values.append(0.0)
        return pos

    def family_values(self, name: str) -> array:
        """The live packed value array of one family (read-only use).

        Positions follow :meth:`slot`; the array object is reallocated
        only by :meth:`reset`, though appends may move its buffer —
        re-fetch per batch rather than caching numpy views across adds.
        """
        family = self._families.get(name)
        if family is None:
            family = self._families[name] = _Family()
        return family.values

    def family_slots(self, name: str) -> dict:
        """Index -> slot map of one family (empty if unwritten)."""
        family = self._families.get(name)
        return {} if family is None else family.slots

    def total(self, name: str) -> float:
        """Sum of one counter family across all indices.

        O(family), not O(all counters): ``sum`` over the packed array
        adds left-to-right in slot (= insertion) order, bit-identical to
        the flat-dict scan this layout replaced.
        """
        family = self._families.get(name)
        if family is None:
            return 0.0
        return sum(family.values)

    def by_index(self, name: str) -> dict:
        """Family values keyed by index (e.g. per-socket L3 misses)."""
        family = self._families.get(name)
        if family is None:
            return {}
        values = family.values
        return {i: values[p] for i, p in family.slots.items()}

    def snapshot(self, time: float) -> CounterSnapshot:
        """Copy all counters for windowed-rate computation.

        One C-level array copy per family; slot maps are aliased (they
        only grow, and :class:`CounterSnapshot` treats out-of-range
        slots as born-later counters).
        """
        return CounterSnapshot(
            time, {name: (family.slots, family.values[:])
                   for name, family in self._families.items()})

    def reset(self) -> None:
        """Zero every counter (used between experiment repetitions).

        Families are emptied by swapping in fresh internals: the
        ``_Family`` objects themselves survive, keeping
        :meth:`family` handles valid, while snapshots taken before the
        reset keep their aliased (old) slot maps intact.
        """
        for family in self._families.values():
            family.slots = {}
            family.values = array("d")
