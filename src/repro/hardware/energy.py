"""Energy estimation, following the paper's methodology (§V-C3).

The paper estimates energy from hardware counters rather than measuring it:

* **CPU energy** uses the Average CPU Power (ACP) rating of the Opteron and
  the measured busy time — a socket burns an idle floor plus a
  utilisation-proportional share up to ACP;
* **HT energy** multiplies the counted interconnect bytes by an average
  energy-per-bit figure taken from Wang & Lee's blade-server model [19].

Both inputs come straight out of the simulated
:class:`~repro.hardware.counters.CounterBank`, mirroring how the authors fed
likwid counters into the same formulas.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import MachineConfig
from .counters import CounterSnapshot
from .topology import Topology


@dataclass(frozen=True)
class EnergyReport:
    """Joules attributed to CPU sockets and to the interconnect."""

    cpu_joules: float
    ht_joules: float

    @property
    def total_joules(self) -> float:
        """Combined system energy."""
        return self.cpu_joules + self.ht_joules


class EnergyModel:
    """Counter-driven energy estimator for one machine configuration."""

    def __init__(self, config: MachineConfig):
        self.config = config

    def cpu_energy(self, busy_time_by_core: dict[int, float],
                   elapsed: float, topology: Topology) -> float:
        """Socket energy over ``elapsed`` seconds of wall-clock.

        Each socket draws ``idle_fraction * ACP`` when fully idle and ramps
        linearly to ACP at full utilisation of its cores.
        """
        if elapsed <= 0:
            return 0.0
        config = self.config
        idle_watts = config.acp_watts * config.idle_power_fraction
        dynamic_watts = config.acp_watts - idle_watts
        total = 0.0
        for node in topology.all_nodes():
            busy = sum(busy_time_by_core.get(core, 0.0)
                       for core in topology.cores_of_node(node))
            utilisation = min(busy / (topology.cores_per_socket * elapsed),
                              1.0)
            total += elapsed * (idle_watts + dynamic_watts * utilisation)
        return total

    def ht_energy(self, ht_bytes: float) -> float:
        """Interconnect energy for a cumulative byte count."""
        return max(ht_bytes, 0.0) * 8.0 * self.config.ht_joules_per_bit

    def report(self, start: CounterSnapshot, end: CounterSnapshot,
               topology: Topology) -> EnergyReport:
        """Energy between two counter snapshots."""
        elapsed = end.time - start.time
        busy = {
            core: end.delta(start, "busy_time", core)
            for core in topology.all_cores()
        }
        cpu = self.cpu_energy(busy, elapsed, topology)
        ht = self.ht_energy(end.delta_total(start, "ht_tx_bytes"))
        return EnergyReport(cpu_joules=cpu, ht_joules=ht)
