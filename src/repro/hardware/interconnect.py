"""HyperTransport-style interconnect with bandwidth-aware transfer costs.

Remote page fetches stream over a point-to-point link between the requesting
socket and the page's home node.  Two effects matter for the paper:

* the raw **per-link bandwidth** bounds how fast one remote miss resolves;
* **contention** — when many threads pull remote data concurrently (the
  256-client runs of Figs 4 and 14) the shared fabric saturates and every
  transfer waits behind earlier ones.

Contention is modelled with deterministic FIFO **reservation channels**
(:class:`FifoChannel`): each transfer reserves the directed link for
``bytes / bandwidth`` seconds starting no earlier than the link's previous
release, and the requester stalls for queue wait plus service.  The same
primitive models DRAM banks in :class:`~repro.hardware.machine.Machine`;
it hard-caps aggregate throughput at the channel bandwidth — the property
that makes a *local optimum number of cores* exist at all.
"""

from __future__ import annotations

from ..config import MachineConfig
from ..errors import HardwareError
from .counters import CounterBank
from .topology import Topology


class FifoChannel:
    """A bandwidth-limited resource with deterministic FIFO reservations.

    A request of ``n`` bytes at time ``now`` starts service no earlier than
    the channel's previous release, holds the channel for ``n / bandwidth``
    seconds and stalls the requester for queue wait plus service.  Aggregate
    throughput is therefore hard-capped at ``bandwidth`` regardless of how
    many requesters pile on — queueing, not magic parallelism.
    """

    __slots__ = ("bandwidth", "_free_at")

    def __init__(self, bandwidth: float):
        if bandwidth <= 0:
            raise HardwareError("channel bandwidth must be positive")
        self.bandwidth = bandwidth
        self._free_at = 0.0

    def reserve(self, now: float, n_bytes: float) -> float:
        """Reserve the channel; returns the absolute *completion time*.

        Callers overlap several reservations (pipelined page fetches) by
        taking the max completion rather than summing waits.
        """
        if n_bytes < 0:
            raise HardwareError("cannot reserve a negative byte count")
        start = now if now > self._free_at else self._free_at
        service = n_bytes / self.bandwidth
        self._free_at = start + service
        return self._free_at

    def backlog(self, now: float) -> float:
        """Seconds of already-reserved work ahead of a request at ``now``."""
        return max(0.0, self._free_at - now)

    def utilisation(self, now: float, horizon: float = 0.05) -> float:
        """Backlog expressed as a fraction of a look-ahead horizon."""
        return self.backlog(now) / horizon


class Interconnect:
    """Traffic accounting and transfer-time model for the NUMA fabric."""

    def __init__(self, topology: Topology, counters: CounterBank):
        self.topology = topology
        self.counters = counters
        config: MachineConfig = topology.config
        self.link_bandwidth = config.ht_link_bandwidth
        self.aggregate_bandwidth = config.ht_aggregate_bandwidth
        # one directed channel per (src, dst) socket pair
        self._links: dict[tuple[int, int], FifoChannel] = {}
        for src in topology.all_nodes():
            for dst in topology.all_nodes():
                if src != dst:
                    self._links[(src, dst)] = FifoChannel(
                        self.link_bandwidth)

    def link(self, src_node: int, dst_node: int) -> FifoChannel:
        """The directed channel between two distinct nodes."""
        try:
            return self._links[(src_node, dst_node)]
        except KeyError:
            raise HardwareError(
                f"no link {src_node}->{dst_node}") from None

    def backlog(self, now: float) -> float:
        """Total queued seconds across all links (congestion signal)."""
        return sum(ch.backlog(now) for ch in self._links.values())

    def transfer(self, start: float, src_node: int, dst_node: int,
                 n_bytes: int) -> float:
        """Move ``n_bytes`` from ``src_node``'s bank toward ``dst_node``.

        ``start`` is the earliest the transfer can begin (typically the
        completion time of the home-bank read).  Returns the absolute
        completion time and records per-node ``ht_tx_bytes`` counters
        (attributed to the sending node, matching how likwid's HT group
        counts outbound link traffic).
        """
        if src_node == dst_node:
            raise HardwareError("transfer() is for remote moves only")
        if n_bytes < 0:
            raise HardwareError("cannot transfer a negative byte count")
        self.counters.add("ht_tx_bytes", src_node, n_bytes)
        hops = self.topology.distance(src_node, dst_node)
        done = self.link(src_node, dst_node).reserve(start, n_bytes)
        if hops > 1:
            done += (hops - 1) * (n_bytes / self.link_bandwidth)
        return done

    def total_traffic(self) -> float:
        """Cumulative bytes moved over the fabric since reset."""
        return self.counters.total("ht_tx_bytes")

    def traffic_by_node(self) -> dict[int, float]:
        """Cumulative outbound bytes per node."""
        return self.counters.by_index("ht_tx_bytes")
