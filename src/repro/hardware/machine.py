"""Runtime machine: wires topology, caches, memory, interconnect, counters.

The single hot-path entry point is :meth:`Machine.touch` — the OS scheduler
calls it for every execution chunk with the set of pages the running thread
streams through.  It resolves each page against the executing socket's L3,
charges DRAM/interconnect time for misses, and writes every likwid-style
counter the controller and the experiment harnesses later read.
"""

from __future__ import annotations

from collections.abc import Sequence
from itertools import chain, islice
from typing import NamedTuple

from ..config import MachineConfig
from ..errors import HardwareError
from .cache import SharedCache
from .counters import CounterBank
from .interconnect import FifoChannel, Interconnect
from ..pages import PageSegments, VECTOR_MIN_PAGES
from .memory import UNPLACED, MemorySystem
from .topology import Topology


class AccessResult(NamedTuple):
    """Outcome of one :meth:`Machine.touch` call.

    A named tuple rather than a dataclass: one is allocated per touch,
    and tuple construction is several times cheaper than a generated
    dataclass ``__init__``.
    """

    stall_time: float
    hits: int
    misses: int
    remote_misses: int
    bytes_local: int
    bytes_remote: int

    @property
    def bytes_total(self) -> int:
        """All bytes pulled from DRAM (local and remote)."""
        return self.bytes_local + self.bytes_remote


class Machine:
    """A live NUMA machine instance for one simulation run."""

    def __init__(self, config: MachineConfig | None = None,
                 topology: Topology | None = None):
        if topology is None:
            topology = Topology(config or MachineConfig())
        elif config is not None and topology.config is not config:
            raise HardwareError("pass either config or topology, not both")
        self.topology = topology
        self.config = topology.config
        self.counters = CounterBank()
        self.memory = MemorySystem(topology)
        self.interconnect = Interconnect(topology, self.counters)
        self.caches = [
            SharedCache(self.config.l3_pages, socket_id=s)
            for s in topology.all_nodes()
        ]
        # per-bank FIFO channels: threads sharing one memory bank queue for
        # its bandwidth (the effect that lets the paper's adaptive mode
        # "exploit the memory bandwidth of all sockets" and that bounds
        # p(nalloc), making a local optimum exist)
        self.banks = [FifoChannel(self.config.dram_bandwidth)
                      for _ in topology.all_nodes()]
        # latency-bound seconds per page miss: lines/page divided by the
        # core's miss-level parallelism, times the DRAM latency
        cfg = self.config
        lines = cfg.page_bytes / cfg.cache_line_bytes
        self._latency_per_page = (lines / cfg.memory_parallelism
                                  * cfg.dram_latency)
        # --- touch() fast-path precomputation ------------------------------
        # every page fetch moves exactly cfg.page_bytes, so bank and link
        # reservation service times are loop invariants; remote paths also
        # fix the hop count, the post-link store-and-forward extra and the
        # hop-inflated requester latency per (home, socket) pair.  All
        # values are computed with the same expressions the general-purpose
        # FifoChannel/Interconnect paths use, so results stay bit-identical.
        self._bank_service = cfg.page_bytes / cfg.dram_bandwidth
        self._remote_paths: dict[tuple[int, int],
                                 tuple[FifoChannel, float, float]] = {}
        link_service = cfg.page_bytes / self.interconnect.link_bandwidth
        for home in topology.all_nodes():
            for socket in topology.all_nodes():
                if home == socket:
                    continue
                hops = topology.distance(home, socket)
                self._remote_paths[(home, socket)] = (
                    self.interconnect.link(home, socket),
                    (hops - 1) * (cfg.page_bytes
                                  / self.interconnect.link_bandwidth)
                    if hops > 1 else 0.0,
                    self._latency_per_page * (cfg.remote_penalty ** hops),
                )
        self._link_service = link_service
        # the vectorised remote fast path assumes the bank chain alone
        # paces a single-home batch (the link drains at least as fast as
        # the bank feeds it); slower links take the scalar loop
        self._link_after_bank = link_service <= self._bank_service
        # memoised requester-latency chains: the scalar loop accumulates
        # ``per_page_latency`` n times from 0.0, an order-sensitive float
        # fold over only a handful of distinct (latency, n) pairs
        self._latency_chains: dict[tuple[float, int], float] = {}
        # family handles: one dict probe per counter event instead of a
        # name lookup plus probe (handles survive CounterBank.reset)
        self._f_imc = self.counters.family("imc_bytes")
        self._f_ht_tx = self.counters.family("ht_tx_bytes")
        self._f_l3_hit = self.counters.family("l3_hit")
        self._f_l3_miss = self.counters.family("l3_miss")
        self._f_l3_inval = self.counters.family("l3_invalidations")
        self._f_busy = self.counters.family("busy_time")

    def bank_backlog(self, node: int, now: float) -> float:
        """Seconds of reserved work queued at one bank."""
        return self.banks[node].backlog(now)

    def node_of_core(self, core_id: int) -> int:
        """Convenience passthrough to the topology."""
        return self.topology.node_of_core(core_id)

    def touch(self, now: float, core_id: int,
              pages: Sequence[int]) -> AccessResult:
        """Stream ``pages`` from core ``core_id``; returns stalls/counters.

        Every page must already have a home node — the OS virtual-memory
        layer performs first-touch placement *before* handing work to the
        hardware (see :class:`repro.opsys.vm.VirtualMemory`).

        Fetches within one call pipeline: bandwidth reservations at banks
        and links overlap (the batch stalls until the *last* completion),
        while the requester-side line-latency term accumulates per page.
        """
        socket = self.topology.node_of_core(core_id)
        cache = self.caches[socket]
        page_bytes = self.memory.page_bytes
        resident = cache._resident

        # Vectorised fast path: the scheduler streams contiguous page
        # ranges, and the dominant batch shape is all-miss/single-home —
        # resolved here with array slices and one cumulative-sum chain
        # instead of the per-page loop.  Falls through (returns None)
        # for partial hits, multi-home batches and congested links.
        if (type(pages) is range and pages.step == 1
                and pages.stop - pages.start >= VECTOR_MIN_PAGES
                and 0 <= pages.start
                and pages.stop <= self.memory._next_page
                and resident.keys().isdisjoint(pages)):
            result = self._touch_all_miss(now, socket, cache, pages)
            if result is not None:
                return result
        elif type(pages) is PageSegments and len(pages) >= VECTOR_MIN_PAGES:
            # chunk boundaries slice across run boundaries; the footprint
            # stays piecewise contiguous, so resolve run by run
            result = self._touch_segments(now, socket, cache, pages)
            if result is not None:
                return result

        # The loop below is the scalar hot path.  It is the seed
        # implementation with every per-page function call flattened
        # into locals: the L3 LRU probe mirrors SharedCache.access, the
        # bank/link reservations mirror FifoChannel.reserve with the
        # loop-invariant service times precomputed in __init__, and the
        # remote hop latency comes from the per-pair table.  Float
        # operations keep their exact order, so traces stay bit-identical.
        capacity = cache.capacity_pages
        home_arr = self.memory._home
        next_page = self.memory._next_page
        banks = self.banks
        remote_paths = self._remote_paths
        bank_service = self._bank_service
        link_service = self._link_service
        latency_per_page = self._latency_per_page

        latency_stall = 0.0
        batch_done = now
        hits = 0
        evictions = 0
        remote_misses = 0
        bytes_local = 0
        bytes_remote = 0
        imc_pages: dict[int, int] = {}

        resident_pop = resident.pop
        for page in pages:
            if resident_pop(page, 0) is None:
                # plain-dict move_to_end: pop re-inserts at the back
                # (resident values are always None, so None == hit)
                resident[page] = None
                hits += 1
                continue
            if len(resident) >= capacity:
                del resident[next(iter(resident))]
                evictions += 1
            resident[page] = None
            home = (home_arr[page] if 0 <= page < next_page
                    else UNPLACED)
            if home == UNPLACED:
                raise HardwareError(
                    f"page {page} touched before first-touch placement")
            imc_pages[home] = imc_pages.get(home, 0) + 1
            bank = banks[home]
            free = bank._free_at
            bank_done = ((now if now > free else free)
                         + bank_service)
            bank._free_at = bank_done
            if home == socket:
                bytes_local += page_bytes
                done = bank_done
                latency_stall += latency_per_page
            else:
                bytes_remote += page_bytes
                remote_misses += 1
                # remote miss: read from the home bank, cross the fabric,
                # and stall the requester for the extra line latency
                link, extra, remote_latency = remote_paths[(home, socket)]
                link_free = link._free_at
                done = ((bank_done if bank_done > link_free
                         else link_free) + link_service)
                link._free_at = done
                if extra:
                    done += extra
                latency_stall += remote_latency
            if done > batch_done:
                batch_done = done
        stall = (batch_done - now) + latency_stall

        misses = len(pages) - hits
        cache.hits += hits
        cache.misses += misses
        cache.evictions += evictions
        for home, n_pages in imc_pages.items():
            self._f_imc.add(home, n_pages * page_bytes)
            if home != socket:
                # outbound link traffic, attributed to the sending node
                # exactly as Interconnect.transfer does
                self._f_ht_tx.add(home, n_pages * page_bytes)
        self._f_l3_hit.add(socket, hits)
        self._f_l3_miss.add(socket, misses)
        return AccessResult(
            stall_time=stall,
            hits=hits,
            misses=misses,
            remote_misses=remote_misses,
            bytes_local=bytes_local,
            bytes_remote=bytes_remote,
        )

    def _touch_all_miss(self, now: float, socket: int, cache: SharedCache,
                        pages: range) -> AccessResult | None:
        """All-miss batch over one contiguous range, without the loop.

        Applies only when every page shares one home node and (for a
        remote home) the link is idle enough that the bank chain alone
        paces the batch; returns ``None`` otherwise and the scalar loop
        takes over.  Every float is produced by the same left-to-right
        addition sequence the per-page loop performs, so results are
        bit-identical; the per-page work that remains is two running
        float additions, everything else is C-level bulk operations
        (the home-map uniformity probe is one ``bytes`` comparison, the
        LRU eviction one dict rebuild).
        """
        n = len(pages)
        span_bytes = self.memory._home[pages.start:pages.stop].tobytes()
        if span_bytes != span_bytes[:2] * n:
            return None
        home0 = self.memory._home[pages.start]
        if home0 == UNPLACED:
            return None
        resident = cache._resident
        overflow = len(resident) + n - cache.capacity_pages
        if overflow > len(resident):
            # the batch alone overflows the cache: insertions would
            # start evicting their own batch, a job for the loop
            return None
        bank = self.banks[home0]
        bank_free = bank._free_at
        first = (now if now > bank_free else bank_free) + self._bank_service
        remote = home0 != socket
        if remote:
            link, extra, remote_latency = self._remote_paths[
                (home0, socket)]
            if not (self._link_after_bank and link._free_at <= first):
                return None
        # --- commit: no fallback past this point -----------------------
        if overflow > 0:
            # evict the ``overflow`` coldest and append the batch in one
            # C-level rebuild (the batch is disjoint from the survivors)
            cache._resident = dict.fromkeys(
                chain(islice(resident, overflow, None), pages))
            cache.evictions += overflow
        else:
            resident.update(dict.fromkeys(pages))
        per_page_latency = (remote_latency if remote
                            else self._latency_per_page)
        bank_service = self._bank_service
        last = first
        for _ in range(n - 1):
            last += bank_service
        chains = self._latency_chains
        latency_stall = chains.get((per_page_latency, n))
        if latency_stall is None:
            latency_stall = 0.0
            for _ in range(n):
                latency_stall += per_page_latency
            chains[(per_page_latency, n)] = latency_stall
        bank._free_at = last
        nbytes = n * self.memory.page_bytes
        cache.misses += n
        self._f_imc.add(home0, nbytes)
        if remote:
            self._f_ht_tx.add(home0, nbytes)
            done = last + self._link_service
            link._free_at = done
            if extra:
                done += extra
            batch_done = done
            bytes_local, bytes_remote, remote_misses = 0, nbytes, n
        else:
            batch_done = last
            bytes_local, bytes_remote, remote_misses = nbytes, 0, 0
        self._f_l3_hit.add(socket, 0)
        self._f_l3_miss.add(socket, n)
        return AccessResult(
            stall_time=(batch_done - now) + latency_stall,
            hits=0,
            misses=n,
            remote_misses=remote_misses,
            bytes_local=bytes_local,
            bytes_remote=bytes_remote,
        )

    def _touch_segments(self, now: float, socket: int, cache: SharedCache,
                        pages: PageSegments) -> AccessResult | None:
        """All-miss batch over several contiguous runs.

        The piecewise analogue of :meth:`_touch_all_miss`: each run must
        be a uniform-home, cache-disjoint contiguous range (runs also
        pairwise disjoint, so later runs cannot hit pages inserted by
        earlier ones), and remote runs need the bank chain to pace the
        link.  Validation commits nothing — any disqualified run sends
        the whole batch to the scalar loop — and the link check only
        needs the *pre-batch* link backlog: a later run over the same
        link shares the same home bank, whose chain (service >= link
        service) always outruns the link it feeds.

        The commit replays the scalar loop run by run: the bank chain
        threads through ``_free_at`` exactly as consecutive pages would,
        the latency accumulator carries across runs, and the batch
        completes at the last-finishing run.  Counters are flushed once
        at the end in first-seen home order, matching the scalar tail
        (page counts and byte totals are exact integers, so per-home
        grouping cannot change the stored floats).
        """
        segments = pages._segments
        home_mem = self.memory._home
        next_page = self.memory._next_page
        bank_service = self._bank_service
        resident = cache._resident
        capacity = cache.capacity_pages
        # --- validation: no state is touched until every run qualifies
        size = len(resident)
        spans: list[tuple[int, int]] = []
        for run in segments:
            if not (type(run) is range and run.step == 1 and len(run)
                    and 0 <= run.start and run.stop <= next_page):
                return None
            for seen_start, seen_stop in spans:
                if run.start < seen_stop and seen_start < run.stop:
                    return None
            spans.append((run.start, run.stop))
            if not resident.keys().isdisjoint(run):
                return None
            n = run.stop - run.start
            span_bytes = home_mem[run.start:run.stop].tobytes()
            if span_bytes != span_bytes[:2] * n:
                return None
            home = home_mem[run.start]
            if home == UNPLACED:
                return None
            overflow = size + n - capacity
            if overflow > size:
                return None
            size += n if overflow <= 0 else n - overflow
            if home != socket:
                link = self._remote_paths[(home, socket)][0]
                first = self.banks[home]._free_at
                first = (now if now > first else first) + bank_service
                if not (self._link_after_bank and link._free_at <= first):
                    return None
        # --- commit: no fallback past this point -----------------------
        page_bytes = self.memory.page_bytes
        link_service = self._link_service
        latency_stall = 0.0
        batch_done = now
        misses = 0
        bytes_local = 0
        bytes_remote = 0
        remote_misses = 0
        imc_pages: dict[int, int] = {}
        for run in segments:
            n = run.stop - run.start
            home = home_mem[run.start]
            overflow = len(resident) + n - capacity
            if overflow > 0:
                cache._resident = resident = dict.fromkeys(
                    chain(islice(resident, overflow, None), run))
                cache.evictions += overflow
            else:
                resident.update(dict.fromkeys(run))
            bank = self.banks[home]
            free = bank._free_at
            last = (now if now > free else free) + bank_service
            for _ in range(n - 1):
                last += bank_service
            bank._free_at = last
            if home != socket:
                link, extra, remote_latency = self._remote_paths[
                    (home, socket)]
                for _ in range(n):
                    latency_stall += remote_latency
                done = last + link_service
                link._free_at = done
                if extra:
                    done += extra
                bytes_remote += n * page_bytes
                remote_misses += n
            else:
                latency_per_page = self._latency_per_page
                for _ in range(n):
                    latency_stall += latency_per_page
                done = last
                bytes_local += n * page_bytes
            if done > batch_done:
                batch_done = done
            imc_pages[home] = imc_pages.get(home, 0) + n
            misses += n
        cache.misses += misses
        for home, n_pages in imc_pages.items():
            self._f_imc.add(home, n_pages * page_bytes)
            if home != socket:
                self._f_ht_tx.add(home, n_pages * page_bytes)
        self._f_l3_hit.add(socket, 0)
        self._f_l3_miss.add(socket, misses)
        return AccessResult(
            stall_time=(batch_done - now) + latency_stall,
            hits=0,
            misses=misses,
            remote_misses=remote_misses,
            bytes_local=bytes_local,
            bytes_remote=bytes_remote,
        )

    def touch_write(self, now: float, core_id: int,
                    pages: Sequence[int]) -> AccessResult:
        """Like :meth:`touch`, for written pages: writing a page also
        **invalidates** it in every other socket's L3 (the coherence
        traffic the paper's introduction blames on threads "sharing the
        same cache memory" being split across nodes).  Invalidations are
        counted per victim socket as ``l3_invalidations``."""
        socket = self.topology.node_of_core(core_id)
        for other, cache in enumerate(self.caches):
            if other == socket or not cache._resident:
                continue
            dropped = cache.invalidate(pages)
            if dropped:
                self._f_l3_inval.add(other, dropped)
        return self.touch(now, core_id, pages)

    def account_busy(self, core_id: int, seconds: float) -> None:
        """Record core busy time (the mpstat source)."""
        if seconds < 0:
            raise HardwareError("busy time cannot be negative")
        self._f_busy.add(core_id, seconds)

    def flush_caches(self) -> None:
        """Empty every L3 (used between experiment repetitions)."""
        for cache in self.caches:
            cache.flush()

    def compute_time(self, cycles: float) -> float:
        """Seconds a core needs to retire ``cycles`` of pure compute."""
        return cycles / self.config.frequency_hz
