"""Runtime machine: wires topology, caches, memory, interconnect, counters.

The single hot-path entry point is :meth:`Machine.touch` — the OS scheduler
calls it for every execution chunk with the set of pages the running thread
streams through.  It resolves each page against the executing socket's L3,
charges DRAM/interconnect time for misses, and writes every likwid-style
counter the controller and the experiment harnesses later read.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

from ..config import MachineConfig
from ..errors import HardwareError
from .cache import SharedCache
from .counters import CounterBank
from .interconnect import FifoChannel, Interconnect
from .memory import UNPLACED, MemorySystem
from .topology import Topology


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one :meth:`Machine.touch` call."""

    stall_time: float
    hits: int
    misses: int
    remote_misses: int
    bytes_local: int
    bytes_remote: int

    @property
    def bytes_total(self) -> int:
        """All bytes pulled from DRAM (local and remote)."""
        return self.bytes_local + self.bytes_remote


class Machine:
    """A live NUMA machine instance for one simulation run."""

    def __init__(self, config: MachineConfig | None = None,
                 topology: Topology | None = None):
        if topology is None:
            topology = Topology(config or MachineConfig())
        elif config is not None and topology.config is not config:
            raise HardwareError("pass either config or topology, not both")
        self.topology = topology
        self.config = topology.config
        self.counters = CounterBank()
        self.memory = MemorySystem(topology)
        self.interconnect = Interconnect(topology, self.counters)
        self.caches = [
            SharedCache(self.config.l3_pages, socket_id=s)
            for s in topology.all_nodes()
        ]
        # per-bank FIFO channels: threads sharing one memory bank queue for
        # its bandwidth (the effect that lets the paper's adaptive mode
        # "exploit the memory bandwidth of all sockets" and that bounds
        # p(nalloc), making a local optimum exist)
        self.banks = [FifoChannel(self.config.dram_bandwidth)
                      for _ in topology.all_nodes()]
        # latency-bound seconds per page miss: lines/page divided by the
        # core's miss-level parallelism, times the DRAM latency
        cfg = self.config
        lines = cfg.page_bytes / cfg.cache_line_bytes
        self._latency_per_page = (lines / cfg.memory_parallelism
                                  * cfg.dram_latency)
        # --- touch() fast-path precomputation ------------------------------
        # every page fetch moves exactly cfg.page_bytes, so bank and link
        # reservation service times are loop invariants; remote paths also
        # fix the hop count, the post-link store-and-forward extra and the
        # hop-inflated requester latency per (home, socket) pair.  All
        # values are computed with the same expressions the general-purpose
        # FifoChannel/Interconnect paths use, so results stay bit-identical.
        self._bank_service = cfg.page_bytes / cfg.dram_bandwidth
        self._remote_paths: dict[tuple[int, int],
                                 tuple[FifoChannel, float, float]] = {}
        link_service = cfg.page_bytes / self.interconnect.link_bandwidth
        for home in topology.all_nodes():
            for socket in topology.all_nodes():
                if home == socket:
                    continue
                hops = topology.distance(home, socket)
                self._remote_paths[(home, socket)] = (
                    self.interconnect.link(home, socket),
                    (hops - 1) * (cfg.page_bytes
                                  / self.interconnect.link_bandwidth)
                    if hops > 1 else 0.0,
                    self._latency_per_page * (cfg.remote_penalty ** hops),
                )
        self._link_service = link_service

    def bank_backlog(self, node: int, now: float) -> float:
        """Seconds of reserved work queued at one bank."""
        return self.banks[node].backlog(now)

    def node_of_core(self, core_id: int) -> int:
        """Convenience passthrough to the topology."""
        return self.topology.node_of_core(core_id)

    def touch(self, now: float, core_id: int,
              pages: Sequence[int]) -> AccessResult:
        """Stream ``pages`` from core ``core_id``; returns stalls/counters.

        Every page must already have a home node — the OS virtual-memory
        layer performs first-touch placement *before* handing work to the
        hardware (see :class:`repro.opsys.vm.VirtualMemory`).

        Fetches within one call pipeline: bandwidth reservations at banks
        and links overlap (the batch stalls until the *last* completion),
        while the requester-side line-latency term accumulates per page.
        """
        socket = self.topology.node_of_core(core_id)
        cache = self.caches[socket]
        page_bytes = self.memory.page_bytes

        # The loop below is the hottest code in the simulator.  It is the
        # seed implementation with every per-page function call flattened
        # into locals: the L3 LRU probe mirrors SharedCache.access, the
        # bank/link reservations mirror FifoChannel.reserve with the
        # loop-invariant service times precomputed in __init__, and the
        # remote hop latency comes from the per-pair table.  Float
        # operations keep their exact order, so traces stay bit-identical.
        resident = cache._resident
        move_to_end = resident.move_to_end
        popitem = resident.popitem
        capacity = cache.capacity_pages
        home_of = self.memory._home.get
        banks = self.banks
        remote_paths = self._remote_paths
        bank_service = self._bank_service
        link_service = self._link_service
        latency_per_page = self._latency_per_page

        latency_stall = 0.0
        batch_done = now
        hits = 0
        evictions = 0
        remote_misses = 0
        bytes_local = 0
        bytes_remote = 0
        imc_pages: dict[int, int] = {}

        for page in pages:
            if page in resident:
                move_to_end(page)
                hits += 1
                continue
            if len(resident) >= capacity:
                popitem(last=False)
                evictions += 1
            resident[page] = None
            home = home_of(page, UNPLACED)
            if home == UNPLACED:
                raise HardwareError(
                    f"page {page} touched before first-touch placement")
            imc_pages[home] = imc_pages.get(home, 0) + 1
            bank = banks[home]
            free = bank._free_at
            bank_done = ((now if now > free else free)
                         + bank_service)
            bank._free_at = bank_done
            if home == socket:
                bytes_local += page_bytes
                done = bank_done
                latency_stall += latency_per_page
            else:
                bytes_remote += page_bytes
                remote_misses += 1
                # remote miss: read from the home bank, cross the fabric,
                # and stall the requester for the extra line latency
                link, extra, remote_latency = remote_paths[(home, socket)]
                link_free = link._free_at
                done = ((bank_done if bank_done > link_free
                         else link_free) + link_service)
                link._free_at = done
                if extra:
                    done += extra
                latency_stall += remote_latency
            if done > batch_done:
                batch_done = done
        stall = (batch_done - now) + latency_stall

        misses = len(pages) - hits
        counters = self.counters
        cache.hits += hits
        cache.misses += misses
        cache.evictions += evictions
        for home, n_pages in imc_pages.items():
            counters.add("imc_bytes", home, n_pages * page_bytes)
            if home != socket:
                # outbound link traffic, attributed to the sending node
                # exactly as Interconnect.transfer does
                counters.add("ht_tx_bytes", home, n_pages * page_bytes)
        counters.add("l3_hit", socket, hits)
        counters.add("l3_miss", socket, misses)
        return AccessResult(
            stall_time=stall,
            hits=hits,
            misses=misses,
            remote_misses=remote_misses,
            bytes_local=bytes_local,
            bytes_remote=bytes_remote,
        )

    def touch_write(self, now: float, core_id: int,
                    pages: Sequence[int]) -> AccessResult:
        """Like :meth:`touch`, for written pages: writing a page also
        **invalidates** it in every other socket's L3 (the coherence
        traffic the paper's introduction blames on threads "sharing the
        same cache memory" being split across nodes).  Invalidations are
        counted per victim socket as ``l3_invalidations``."""
        socket = self.topology.node_of_core(core_id)
        for other, cache in enumerate(self.caches):
            if other == socket or not cache._resident:
                continue
            dropped = cache.invalidate(pages)
            if dropped:
                self.counters.add("l3_invalidations", other, dropped)
        return self.touch(now, core_id, pages)

    def account_busy(self, core_id: int, seconds: float) -> None:
        """Record core busy time (the mpstat source)."""
        if seconds < 0:
            raise HardwareError("busy time cannot be negative")
        self.counters.add("busy_time", core_id, seconds)

    def flush_caches(self) -> None:
        """Empty every L3 (used between experiment repetitions)."""
        for cache in self.caches:
            cache.flush()

    def compute_time(self, cycles: float) -> float:
        """Seconds a core needs to retire ``cycles`` of pure compute."""
        return cycles / self.config.frequency_hz
