"""Per-node memory banks and the global page space.

Pages are identified by dense global integers handed out by
:meth:`MemorySystem.allocate`.  A page has no *home node* until it is
**placed** — placement is the hardware half of the OS first-touch policy
(:mod:`repro.opsys.vm` decides *where*, this module records it and tracks
bank occupancy).

The home map is a dense ``array('h')`` indexed by page id (pages are
dense by construction), with :data:`UNPLACED` as the sentinel.  Batch
operations on contiguous page ranges — the common case, since
allocations are ranges — run as slice stores and one-``bytes``
uniformity probes, while per-page reads stay plain C-speed integer
indexing (a numpy home map would make every scalar probe in the touch
hot loops allocate a numpy scalar, several times the cost of the
lookup itself), and a snapshot pickles one buffer instead of one dict
entry per page.

The per-node byte counters written during accesses (``imc_bytes``) live in
the shared :class:`~repro.hardware.counters.CounterBank`, wired in by
:class:`~repro.hardware.machine.Machine`.
"""

from __future__ import annotations

from array import array
from collections.abc import Iterable, Sequence

from ..errors import HardwareError
from .topology import Topology

UNPLACED = -1

#: initial home-map capacity in pages; grown by doubling on allocate
_INITIAL_CAPACITY = 1024

#: one :data:`UNPLACED` cell in the home map's native byte order; what
#: an unplaced run looks like through ``tobytes()``
UNPLACED_PATTERN = array("h", [UNPLACED]).tobytes()


def home_run(node: int, n: int) -> array:
    """An ``array('h')`` of ``n`` cells all set to ``node`` (slice fill)."""
    return array("h", [node]) * n


class MemorySystem:
    """Page-space bookkeeping for every memory bank of the machine."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self.page_bytes = topology.config.page_bytes
        self.bank_pages = topology.config.dram_bytes // self.page_bytes
        self._next_page = 0
        #: home node per page id, :data:`UNPLACED` until first touch;
        #: sized to capacity, valid through ``_next_page``
        self._home = home_run(UNPLACED, _INITIAL_CAPACITY)
        self._pages_per_node = [0] * topology.n_sockets

    def allocate(self, n_pages: int) -> range:
        """Reserve ``n_pages`` fresh, unplaced page ids."""
        if n_pages < 0:
            raise HardwareError("cannot allocate a negative page count")
        start = self._next_page
        self._next_page += n_pages
        if self._next_page > len(self._home):
            capacity = len(self._home)
            while capacity < self._next_page:
                capacity *= 2
            self._home.extend(
                home_run(UNPLACED, capacity - len(self._home)))
        return range(start, self._next_page)

    def allocate_bytes(self, n_bytes: int) -> range:
        """Reserve enough pages to hold ``n_bytes``."""
        n_pages = -(-max(n_bytes, 0) // self.page_bytes)
        return self.allocate(n_pages)

    def is_allocated(self, page: int) -> bool:
        """Whether ``page`` was ever handed out by :meth:`allocate`."""
        return 0 <= page < self._next_page

    def place(self, page: int, node: int) -> None:
        """Assign ``page`` a home node (first touch).  Idempotent-checked."""
        if not self.is_allocated(page):
            raise HardwareError(f"page {page} was never allocated")
        if self._home[page] != UNPLACED:
            raise HardwareError(f"page {page} already placed")
        if not 0 <= node < self.topology.n_sockets:
            raise HardwareError(f"node {node} out of range")
        if self._pages_per_node[node] >= self.bank_pages:
            raise HardwareError(f"memory bank of node {node} is full")
        self._home[page] = node
        self._pages_per_node[node] += 1

    def place_batch(self, pages: Sequence[int], node: int) -> None:
        """Assign every page in ``pages`` a home node in one pass.

        The bulk first-touch path: a whole batch of fresh pages lands on
        one node, so the node-range and bank-capacity checks run once for
        the batch instead of once per page (a bad batch therefore raises
        *before* any page is placed).  The per-page allocation and
        double-placement checks of :meth:`place` still apply; duplicates
        inside ``pages`` are rejected as double placements.  A contiguous
        ascending range places as one array-slice store.
        """
        if not 0 <= node < self.topology.n_sockets:
            raise HardwareError(f"node {node} out of range")
        if self._pages_per_node[node] + len(pages) > self.bank_pages:
            raise HardwareError(f"memory bank of node {node} is full")
        home = self._home
        next_page = self._next_page
        if (type(pages) is range and pages.step == 1
                and 0 <= pages.start and pages.stop <= next_page):
            n = pages.stop - pages.start
            span_bytes = home[pages.start:pages.stop].tobytes()
            if span_bytes == UNPLACED_PATTERN * n:
                home[pages.start:pages.stop] = home_run(node, n)
                self._pages_per_node[node] += n
                return
            # a page in the range is already placed: fall through to the
            # per-page loop, which lands the prefix then aborts exactly
            # as per-page placement would
        placed = 0
        try:
            for page in pages:
                if not 0 <= page < next_page:
                    raise HardwareError(
                        f"page {page} was never allocated")
                if home[page] != UNPLACED:
                    raise HardwareError(f"page {page} already placed")
                home[page] = node
                placed += 1
        finally:
            # a bad page aborts the batch mid-way (same as per-page
            # placement would); the occupancy count must still cover
            # what did land
            self._pages_per_node[node] += placed

    def home(self, page: int) -> int:
        """Home node of ``page``, or :data:`UNPLACED` when not yet touched."""
        if not 0 <= page < self._next_page:
            return UNPLACED
        return self._home[page]

    def is_placed(self, page: int) -> bool:
        """Whether ``page`` already has a home node."""
        return (0 <= page < self._next_page
                and self._home[page] != UNPLACED)

    def free(self, pages: Iterable[int]) -> None:
        """Return pages to the system (intermediates being dropped)."""
        if (type(pages) is range and pages.step == 1
                and 0 <= pages.start and pages.stop <= self._next_page):
            n = pages.stop - pages.start
            if n:
                # uniform runs (one query's intermediates usually share a
                # home) release with one comparison and one fill
                span_bytes = self._home[pages.start:pages.stop].tobytes()
                if span_bytes == span_bytes[:2] * n:
                    node = self._home[pages.start]
                    if node != UNPLACED:
                        self._pages_per_node[node] -= n
                        self._home[pages.start:pages.stop] = home_run(
                            UNPLACED, n)
                    return
            # mixed homes: the per-page loop below handles the range
        home = self._home
        next_page = self._next_page
        per_node = self._pages_per_node
        for page in pages:
            if not 0 <= page < next_page:
                continue
            node = home[page]
            if node != UNPLACED:
                home[page] = UNPLACED
                per_node[node] -= 1

    def pages_on_node(self, node: int) -> int:
        """Number of placed pages homed on ``node``."""
        return self._pages_per_node[node]

    def placement_histogram(self) -> list[int]:
        """Placed page counts per node, indexed by node id."""
        return list(self._pages_per_node)

    def placed_total(self) -> int:
        """Number of pages currently holding a home node."""
        span = self._home[:self._next_page]
        return len(span) - sum(1 for node in span if node == UNPLACED)

    def pages_of(self, pages: Iterable[int]) -> dict[int, int]:
        """Histogram (node -> count) of where the given pages live.

        Unplaced pages are reported under :data:`UNPLACED`.  This is the
        primitive behind the adaptive mode's priority queue (§IV-B2): the
        mechanism asks where a thread's address space resides.
        """
        if (type(pages) is range and pages.step == 1
                and 0 <= pages.start and pages.stop <= self._next_page):
            n = pages.stop - pages.start
            span = self._home[pages.start:pages.stop]
            span_bytes = span.tobytes()
            if span_bytes == span_bytes[:2] * n:
                # uniform run (one allocation's pages share a home, or
                # none placed yet): the histogram is one entry
                return {span[0]: n} if n else {}
            histogram: dict[int, int] = {}
            hist_get = histogram.get
            for node in span:
                histogram[node] = hist_get(node, 0) + 1
            # report unplaced first, then nodes ascending — the order
            # the bincount-based implementation exposed
            return {node: histogram[node] for node in sorted(histogram)}
        home = self._home
        next_page = self._next_page
        histogram = {}
        for page in pages:
            node = (home[page] if 0 <= page < next_page
                    else UNPLACED)
            histogram[node] = histogram.get(node, 0) + 1
        return histogram
