"""Per-node memory banks and the global page space.

Pages are identified by dense global integers handed out by
:meth:`MemorySystem.allocate`.  A page has no *home node* until it is
**placed** — placement is the hardware half of the OS first-touch policy
(:mod:`repro.opsys.vm` decides *where*, this module records it and tracks
bank occupancy).

The home map is a dense numpy array indexed by page id (pages are dense
by construction), with :data:`UNPLACED` as the sentinel.  Batch
operations on contiguous page ranges — the common case, since
allocations are ranges — run as array slices instead of per-page dict
probes, and a snapshot pickles one buffer instead of one dict entry per
page.

The per-node byte counters written during accesses (``imc_bytes``) live in
the shared :class:`~repro.hardware.counters.CounterBank`, wired in by
:class:`~repro.hardware.machine.Machine`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from ..errors import HardwareError
from .topology import Topology

UNPLACED = -1

#: initial home-map capacity in pages; grown by doubling on allocate
_INITIAL_CAPACITY = 1024


class MemorySystem:
    """Page-space bookkeeping for every memory bank of the machine."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self.page_bytes = topology.config.page_bytes
        self.bank_pages = topology.config.dram_bytes // self.page_bytes
        self._next_page = 0
        #: home node per page id, :data:`UNPLACED` until first touch;
        #: sized to capacity, valid through ``_next_page``
        self._home = np.full(_INITIAL_CAPACITY, UNPLACED, dtype=np.int16)
        self._pages_per_node = [0] * topology.n_sockets

    def allocate(self, n_pages: int) -> range:
        """Reserve ``n_pages`` fresh, unplaced page ids."""
        if n_pages < 0:
            raise HardwareError("cannot allocate a negative page count")
        start = self._next_page
        self._next_page += n_pages
        if self._next_page > len(self._home):
            capacity = len(self._home)
            while capacity < self._next_page:
                capacity *= 2
            grown = np.full(capacity, UNPLACED, dtype=np.int16)
            grown[:len(self._home)] = self._home
            self._home = grown
        return range(start, self._next_page)

    def allocate_bytes(self, n_bytes: int) -> range:
        """Reserve enough pages to hold ``n_bytes``."""
        n_pages = -(-max(n_bytes, 0) // self.page_bytes)
        return self.allocate(n_pages)

    def is_allocated(self, page: int) -> bool:
        """Whether ``page`` was ever handed out by :meth:`allocate`."""
        return 0 <= page < self._next_page

    def place(self, page: int, node: int) -> None:
        """Assign ``page`` a home node (first touch).  Idempotent-checked."""
        if not self.is_allocated(page):
            raise HardwareError(f"page {page} was never allocated")
        if self._home[page] != UNPLACED:
            raise HardwareError(f"page {page} already placed")
        if not 0 <= node < self.topology.n_sockets:
            raise HardwareError(f"node {node} out of range")
        if self._pages_per_node[node] >= self.bank_pages:
            raise HardwareError(f"memory bank of node {node} is full")
        self._home[page] = node
        self._pages_per_node[node] += 1

    def place_batch(self, pages: Sequence[int], node: int) -> None:
        """Assign every page in ``pages`` a home node in one pass.

        The bulk first-touch path: a whole batch of fresh pages lands on
        one node, so the node-range and bank-capacity checks run once for
        the batch instead of once per page (a bad batch therefore raises
        *before* any page is placed).  The per-page allocation and
        double-placement checks of :meth:`place` still apply; duplicates
        inside ``pages`` are rejected as double placements.  A contiguous
        ascending range places as one array-slice store.
        """
        if not 0 <= node < self.topology.n_sockets:
            raise HardwareError(f"node {node} out of range")
        if self._pages_per_node[node] + len(pages) > self.bank_pages:
            raise HardwareError(f"memory bank of node {node} is full")
        home = self._home
        next_page = self._next_page
        if (type(pages) is range and pages.step == 1
                and 0 <= pages.start and pages.stop <= next_page):
            span = home[pages.start:pages.stop]
            taken = span != UNPLACED
            if taken.any():
                # mirror the per-page loop: the prefix before the first
                # double placement still lands, then the batch aborts
                first = int(np.argmax(taken))
                span[:first] = node
                self._pages_per_node[node] += first
                raise HardwareError(
                    f"page {pages.start + first} already placed")
            span[:] = node
            self._pages_per_node[node] += len(pages)
            return
        placed = 0
        try:
            for page in pages:
                if not 0 <= page < next_page:
                    raise HardwareError(
                        f"page {page} was never allocated")
                if home[page] != UNPLACED:
                    raise HardwareError(f"page {page} already placed")
                home[page] = node
                placed += 1
        finally:
            # a bad page aborts the batch mid-way (same as per-page
            # placement would); the occupancy count must still cover
            # what did land
            self._pages_per_node[node] += placed

    def home(self, page: int) -> int:
        """Home node of ``page``, or :data:`UNPLACED` when not yet touched."""
        if not 0 <= page < self._next_page:
            return UNPLACED
        return int(self._home[page])

    def is_placed(self, page: int) -> bool:
        """Whether ``page`` already has a home node."""
        return (0 <= page < self._next_page
                and self._home[page] != UNPLACED)

    def free(self, pages: Iterable[int]) -> None:
        """Return pages to the system (intermediates being dropped)."""
        if (type(pages) is range and pages.step == 1
                and 0 <= pages.start and pages.stop <= self._next_page):
            n = pages.stop - pages.start
            if n:
                # uniform runs (one query's intermediates usually share a
                # home) release with one comparison and one fill
                span_bytes = self._home[pages.start:pages.stop].tobytes()
                if span_bytes == span_bytes[:2] * n:
                    node = int(self._home[pages.start])
                    if node != UNPLACED:
                        self._pages_per_node[node] -= n
                        self._home[pages.start:pages.stop] = UNPLACED
                    return
            span = self._home[pages.start:pages.stop]
            placed = span[span != UNPLACED]
            if placed.size:
                counts = np.bincount(placed,
                                     minlength=self.topology.n_sockets)
                per_node = self._pages_per_node
                for node in np.nonzero(counts)[0]:
                    per_node[node] -= int(counts[node])
                span[:] = UNPLACED
            return
        home = self._home
        next_page = self._next_page
        for page in pages:
            if not 0 <= page < next_page:
                continue
            node = int(home[page])
            if node != UNPLACED:
                home[page] = UNPLACED
                self._pages_per_node[node] -= 1

    def pages_on_node(self, node: int) -> int:
        """Number of placed pages homed on ``node``."""
        return self._pages_per_node[node]

    def placement_histogram(self) -> list[int]:
        """Placed page counts per node, indexed by node id."""
        return list(self._pages_per_node)

    def placed_total(self) -> int:
        """Number of pages currently holding a home node."""
        span = self._home[:self._next_page]
        return int((span != UNPLACED).sum())

    def pages_of(self, pages: Iterable[int]) -> dict[int, int]:
        """Histogram (node -> count) of where the given pages live.

        Unplaced pages are reported under :data:`UNPLACED`.  This is the
        primitive behind the adaptive mode's priority queue (§IV-B2): the
        mechanism asks where a thread's address space resides.
        """
        if (type(pages) is range and pages.step == 1
                and 0 <= pages.start and pages.stop <= self._next_page):
            span = self._home[pages.start:pages.stop]
            placed = span[span != UNPLACED]
            histogram: dict[int, int] = {}
            unplaced = len(span) - placed.size
            if unplaced:
                histogram[UNPLACED] = unplaced
            if placed.size:
                counts = np.bincount(placed,
                                     minlength=self.topology.n_sockets)
                for node in np.nonzero(counts)[0]:
                    histogram[int(node)] = int(counts[node])
            return histogram
        home = self._home
        next_page = self._next_page
        histogram = {}
        for page in pages:
            node = (int(home[page]) if 0 <= page < next_page
                    else UNPLACED)
            histogram[node] = histogram.get(node, 0) + 1
        return histogram
