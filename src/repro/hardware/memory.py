"""Per-node memory banks and the global page space.

Pages are identified by dense global integers handed out by
:meth:`MemorySystem.allocate`.  A page has no *home node* until it is
**placed** — placement is the hardware half of the OS first-touch policy
(:mod:`repro.opsys.vm` decides *where*, this module records it and tracks
bank occupancy).

The per-node byte counters written during accesses (``imc_bytes``) live in
the shared :class:`~repro.hardware.counters.CounterBank`, wired in by
:class:`~repro.hardware.machine.Machine`.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

from ..errors import HardwareError
from .topology import Topology

UNPLACED = -1


class MemorySystem:
    """Page-space bookkeeping for every memory bank of the machine."""

    def __init__(self, topology: Topology):
        self.topology = topology
        self.page_bytes = topology.config.page_bytes
        self.bank_pages = topology.config.dram_bytes // self.page_bytes
        self._next_page = 0
        self._home: dict[int, int] = {}
        self._pages_per_node = [0] * topology.n_sockets

    def allocate(self, n_pages: int) -> range:
        """Reserve ``n_pages`` fresh, unplaced page ids."""
        if n_pages < 0:
            raise HardwareError("cannot allocate a negative page count")
        start = self._next_page
        self._next_page += n_pages
        return range(start, self._next_page)

    def allocate_bytes(self, n_bytes: int) -> range:
        """Reserve enough pages to hold ``n_bytes``."""
        n_pages = -(-max(n_bytes, 0) // self.page_bytes)
        return self.allocate(n_pages)

    def is_allocated(self, page: int) -> bool:
        """Whether ``page`` was ever handed out by :meth:`allocate`."""
        return 0 <= page < self._next_page

    def place(self, page: int, node: int) -> None:
        """Assign ``page`` a home node (first touch).  Idempotent-checked."""
        if not self.is_allocated(page):
            raise HardwareError(f"page {page} was never allocated")
        if page in self._home:
            raise HardwareError(f"page {page} already placed")
        if not 0 <= node < self.topology.n_sockets:
            raise HardwareError(f"node {node} out of range")
        if self._pages_per_node[node] >= self.bank_pages:
            raise HardwareError(f"memory bank of node {node} is full")
        self._home[page] = node
        self._pages_per_node[node] += 1

    def place_batch(self, pages: Sequence[int], node: int) -> None:
        """Assign every page in ``pages`` a home node in one pass.

        The bulk first-touch path: a whole batch of fresh pages lands on
        one node, so the node-range and bank-capacity checks run once for
        the batch instead of once per page (a bad batch therefore raises
        *before* any page is placed).  The per-page allocation and
        double-placement checks of :meth:`place` still apply; duplicates
        inside ``pages`` are rejected as double placements.
        """
        if not 0 <= node < self.topology.n_sockets:
            raise HardwareError(f"node {node} out of range")
        if self._pages_per_node[node] + len(pages) > self.bank_pages:
            raise HardwareError(f"memory bank of node {node} is full")
        home = self._home
        next_page = self._next_page
        placed = 0
        try:
            for page in pages:
                if not 0 <= page < next_page:
                    raise HardwareError(
                        f"page {page} was never allocated")
                if page in home:
                    raise HardwareError(f"page {page} already placed")
                home[page] = node
                placed += 1
        finally:
            # a bad page aborts the batch mid-way (same as per-page
            # placement would); the occupancy count must still cover
            # what did land
            self._pages_per_node[node] += placed

    def home(self, page: int) -> int:
        """Home node of ``page``, or :data:`UNPLACED` when not yet touched."""
        return self._home.get(page, UNPLACED)

    def is_placed(self, page: int) -> bool:
        """Whether ``page`` already has a home node."""
        return page in self._home

    def free(self, pages: Iterable[int]) -> None:
        """Return pages to the system (intermediates being dropped)."""
        for page in pages:
            node = self._home.pop(page, UNPLACED)
            if node != UNPLACED:
                self._pages_per_node[node] -= 1

    def pages_on_node(self, node: int) -> int:
        """Number of placed pages homed on ``node``."""
        return self._pages_per_node[node]

    def placement_histogram(self) -> list[int]:
        """Placed page counts per node, indexed by node id."""
        return list(self._pages_per_node)

    def pages_of(self, pages: Iterable[int]) -> dict[int, int]:
        """Histogram (node -> count) of where the given pages live.

        Unplaced pages are reported under :data:`UNPLACED`.  This is the
        primitive behind the adaptive mode's priority queue (§IV-B2): the
        mechanism asks where a thread's address space resides.
        """
        histogram: dict[int, int] = {}
        for page in pages:
            node = self._home.get(page, UNPLACED)
            histogram[node] = histogram.get(node, 0) + 1
        return histogram
