"""Factory functions for reference machine configurations."""

from __future__ import annotations

from ..config import MachineConfig
from ..units import ghz, kib, mib


def opteron_8387(**overrides) -> MachineConfig:
    """The paper's testbed: 4 sockets x 4 cores AMD Opteron 8387, 2.8 GHz,
    6 MB shared L3 per socket, DDR-2 banks, HyperTransport 3.x at 41.6 GB/s
    aggregate (Fig 2 / §V).

    Keyword overrides are forwarded to :class:`MachineConfig`, so an
    experiment can, e.g., shrink the L3 to stress capacity effects.
    """
    defaults = dict(
        n_sockets=4,
        cores_per_socket=4,
        frequency_hz=ghz(2.8),
        l3_bytes=mib(6),
    )
    defaults.update(overrides)
    return MachineConfig(**defaults)


def ring_topology(config: MachineConfig) -> "Topology":
    """A ring interconnect: distance = hop count around the shorter arc.

    The paper's Opteron is fully connected; larger NUMA boxes (8+
    sockets) often are not.  A ring makes multi-hop penalties visible
    and is used by the what-if studies and the topology tests.
    """
    from .topology import Topology

    n = config.n_sockets
    distance = [[min((i - j) % n, (j - i) % n) for j in range(n)]
                for i in range(n)]
    return Topology(config, distance=distance)


def small_numa(**overrides) -> MachineConfig:
    """A 2x2 toy machine with a tiny L3, sized so unit tests exercise cache
    evictions and remote traffic with only a handful of pages."""
    defaults = dict(
        n_sockets=2,
        cores_per_socket=2,
        frequency_hz=ghz(2.0),
        page_bytes=kib(64),
        l3_bytes=kib(512),
        dram_bytes=mib(256),
    )
    defaults.update(overrides)
    return MachineConfig(**defaults)
