"""Static NUMA topology: sockets, cores and the inter-node distance matrix.

Core ids are global and dense: node ``i`` owns cores
``[i * cores_per_socket, (i + 1) * cores_per_socket)``.  This matches the
paper's allocation-mode arithmetic ``core(i, j) = d*i + j`` (§IV-B1).
"""

from __future__ import annotations

from ..config import MachineConfig
from ..errors import HardwareError


class Topology:
    """Geometry of a NUMA machine, derived from a :class:`MachineConfig`.

    The distance matrix models a fully connected HyperTransport fabric:
    distance 0 to the local node, 1 to every remote node.  A custom matrix
    (e.g. a ring with multi-hop distances) can be supplied for what-if
    studies.
    """

    def __init__(self, config: MachineConfig,
                 distance: list[list[int]] | None = None):
        self.config = config
        self.n_sockets = config.n_sockets
        self.cores_per_socket = config.cores_per_socket
        self.n_cores = config.n_cores
        if distance is None:
            distance = [
                [0 if i == j else 1 for j in range(self.n_sockets)]
                for i in range(self.n_sockets)
            ]
        self._validate_distance(distance)
        self._distance = distance

    def _validate_distance(self, distance: list[list[int]]) -> None:
        if len(distance) != self.n_sockets:
            raise HardwareError("distance matrix must be n_sockets square")
        for i, row in enumerate(distance):
            if len(row) != self.n_sockets:
                raise HardwareError("distance matrix must be square")
            if row[i] != 0:
                raise HardwareError("self-distance must be zero")
            for j, hops in enumerate(row):
                if i != j and hops < 1:
                    raise HardwareError("remote distance must be >= 1")
                if hops != distance[j][i]:
                    raise HardwareError("distance matrix must be symmetric")

    def node_of_core(self, core_id: int) -> int:
        """NUMA node owning ``core_id``."""
        if not 0 <= core_id < self.n_cores:
            raise HardwareError(f"core {core_id} out of range")
        return core_id // self.cores_per_socket

    def cores_of_node(self, node_id: int) -> range:
        """Global core ids belonging to ``node_id``, in order."""
        if not 0 <= node_id < self.n_sockets:
            raise HardwareError(f"node {node_id} out of range")
        base = node_id * self.cores_per_socket
        return range(base, base + self.cores_per_socket)

    def core(self, node_id: int, local_index: int) -> int:
        """The paper's ``core(i, j) = d*i + j`` mapping (0-based ``j``)."""
        if not 0 <= local_index < self.cores_per_socket:
            raise HardwareError(f"local core index {local_index} out of range")
        return self.cores_of_node(node_id)[local_index]

    def distance(self, node_a: int, node_b: int) -> int:
        """Hop count between two nodes (0 when equal)."""
        return self._distance[node_a][node_b]

    def all_cores(self) -> range:
        """Every global core id."""
        return range(self.n_cores)

    def all_nodes(self) -> range:
        """Every node id."""
        return range(self.n_sockets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Topology {self.n_sockets} sockets x "
                f"{self.cores_per_socket} cores>")
