"""Runtime observability: metrics, span tracing, decision provenance.

The paper's mechanism is driven by observation — mpstat/likwid samples
feeding a rule-condition-action pipeline — and this package gives the
reproduction the matching introspection:

* :mod:`repro.obs.metrics` — a registry of counters, gauges and
  fixed-bucket histograms under per-component namespaces
  (``controller.ticks``, ``scheduler.migrations`` ...);
* :mod:`repro.obs.spans` — nested begin/end spans (controller pipeline
  stages on the host clock, query/stage execution on the simulated
  clock), exportable as Chrome ``trace_event`` JSON;
* :mod:`repro.obs.provenance` — the decision log behind
  ``repro explain``: every allocation/release with its monitor sample,
  matched guard, threshold comparison and node-choice justification;
* :mod:`repro.obs.export` — Prometheus text, JSONL, Chrome trace and
  the ``repro stats`` summary table;
* :mod:`repro.obs.recorder` — the :class:`Recorder` facade and its
  :class:`NullRecorder` twin whose no-op fast path keeps disabled
  telemetry within noise of an uninstrumented run (see
  ``benchmarks/test_obs_overhead.py``);
* :mod:`repro.obs.live` — the streaming twin of the batch exporters:
  rolling aggregators (EWMA, windowed rates, P² quantile sketch) on a
  process-wide :class:`LiveBus` flushed on simulated-time windows;
* :mod:`repro.obs.health` — controller-health analyzers (convergence to
  LONC, oscillation/flapping, allocation lag, SLO burn) computable live
  and replayable post-hoc from the decision log;
* :mod:`repro.obs.alerts` — declarative threshold/trend/absence rules
  with firing/resolved hysteresis and decision provenance links;
* :mod:`repro.obs.serve` — the ``repro monitor`` endpoint: live
  ``/metrics`` + ``/health`` HTTP, terminal dashboard, JSONL stream.

See ``docs/observability.md`` for the metric catalogue, span taxonomy
and the live-pipeline architecture.
"""

from .alerts import DEFAULT_RULES, AlertEngine, AlertRule, load_rules
from .export import (DECISIONS_JSONL, METRICS_JSONL, METRICS_PROM,
                     TRACE_JSON, dump_chrome_trace, dump_metrics_jsonl,
                     escape_label_value, export_run, load_metrics_jsonl,
                     metric_tenant, render_family, render_prometheus,
                     stats_table)
from .health import (HealthConfig, HealthSuite, SloObjective, SloTracker,
                     TenantHealth, analyze_decisions,
                     slo_burn_from_stream)
from .live import (Ewma, LiveBus, P2Quantile, Series, WindowRate,
                   install_live, live_bus, streaming, uninstall_live)
from .metrics import (HOST_TIME_BUCKETS, TIME_BUCKETS, VALUE_BUCKETS,
                      Counter, Gauge, Histogram, MetricsRegistry,
                      NullMetricsRegistry)
from .provenance import (Decision, DecisionLog, NullDecisionLog,
                         dump_decisions, explain_decision, load_decisions)
from .recorder import (NULL_RECORDER, NullRecorder, Recorder,
                       current_recorder, install, recording, uninstall)
from .spans import (NullSpanTracer, SpanRecord, SpanTracer,
                    chrome_trace_events)

__all__ = [
    # recorder facade
    "Recorder", "NullRecorder", "NULL_RECORDER",
    "install", "uninstall", "current_recorder", "recording",
    # metrics
    "MetricsRegistry", "NullMetricsRegistry",
    "Counter", "Gauge", "Histogram",
    "TIME_BUCKETS", "HOST_TIME_BUCKETS", "VALUE_BUCKETS",
    # spans
    "SpanTracer", "NullSpanTracer", "SpanRecord", "chrome_trace_events",
    # provenance
    "Decision", "DecisionLog", "NullDecisionLog", "explain_decision",
    "dump_decisions", "load_decisions",
    # exporters
    "render_prometheus", "render_family", "escape_label_value",
    "dump_metrics_jsonl", "load_metrics_jsonl",
    "dump_chrome_trace", "export_run", "stats_table", "metric_tenant",
    "METRICS_PROM", "METRICS_JSONL", "TRACE_JSON", "DECISIONS_JSONL",
    # live pipeline
    "LiveBus", "Ewma", "WindowRate", "P2Quantile", "Series",
    "install_live", "uninstall_live", "live_bus", "streaming",
    # health analyzers
    "HealthConfig", "HealthSuite", "TenantHealth", "analyze_decisions",
    "SloObjective", "SloTracker", "slo_burn_from_stream",
    # alerts
    "AlertRule", "AlertEngine", "DEFAULT_RULES", "load_rules",
]
