"""Declarative alert rules over live series, with hysteresis.

A rule names a live-series pattern and a predicate; the engine scores
every rule once per closed window and maintains firing/resolved state
with hysteresis (``for_windows`` consecutive breaches to fire,
``clear_windows`` consecutive good windows to resolve), so one noisy
sample never pages and one good sample never silences a real problem.

Three rule kinds cover the monitoring idioms the health suite needs:

* ``threshold`` — the latest value of any matching series violates
  ``op value`` (e.g. oscillation score above 0.5);
* ``trend`` — the per-second slope over the last ``window`` samples of
  any matching series violates ``op value`` (e.g. latency climbing);
* ``absence`` — *no* matching series produced a sample within the last
  ``window`` flush windows: the signal went dark, which is itself an
  anomaly (dead controller, stalled workload, broken tap).

Every firing/resolved transition carries a provenance link: the most
recent acting controller decision per tenant at transition time, so an
alert can be traced back to the mask change that caused it with
``repro explain``.

Rules are data: :func:`load_rules` reads them from a JSON file (see
``docs/observability.md`` for the schema), :data:`DEFAULT_RULES` is the
built-in set ``repro monitor`` starts with.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, fields
from fnmatch import fnmatchcase

from ..errors import ReproError

_KINDS = ("threshold", "trend", "absence")
_SEVERITIES = ("info", "warning", "critical")
_OPS = {
    "<=": lambda value, target: value <= target,
    ">=": lambda value, target: value >= target,
    "<": lambda value, target: value < target,
    ">": lambda value, target: value > target,
}


@dataclass(frozen=True, slots=True)
class AlertRule:
    """One declarative rule over live series.

    ``series`` is an ``fnmatch`` glob (``health.*.oscillation``); for
    threshold/trend rules *any* matching series in violation breaches
    the window.  ``window`` is the trend lookback in samples, or the
    absence tolerance in flush windows.
    """

    name: str
    series: str
    kind: str = "threshold"
    op: str = ">="
    value: float = 0.0
    for_windows: int = 1
    clear_windows: int = 1
    window: int = 8
    severity: str = "warning"

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ReproError(
                f"alert {self.name!r}: kind {self.kind!r} not in "
                f"{_KINDS}")
        if self.kind != "absence" and self.op not in _OPS:
            raise ReproError(
                f"alert {self.name!r}: op {self.op!r} not in "
                f"{sorted(_OPS)}")
        if self.severity not in _SEVERITIES:
            raise ReproError(
                f"alert {self.name!r}: severity {self.severity!r} "
                f"not in {_SEVERITIES}")
        if self.for_windows < 1 or self.clear_windows < 1:
            raise ReproError(
                f"alert {self.name!r}: for_windows/clear_windows "
                f"must be >= 1")
        if self.window < 1:
            raise ReproError(
                f"alert {self.name!r}: window must be >= 1")

    def breached(self, bus, now: float) -> tuple[bool, str | None,
                                                 float | None]:
        """Score one window: (breach?, offending series, value)."""
        matches = [series for name, series in sorted(bus.series.items())
                   if fnmatchcase(name, self.series)]
        if self.kind == "absence":
            horizon = now - self.window * bus.window
            for series in matches:
                if series.last_time is not None and \
                        series.last_time > horizon:
                    return False, series.name, series.last
            return True, None, None
        op = _OPS[self.op]
        for series in matches:
            if self.kind == "threshold":
                probe = series.last
            else:
                probe = series.trend(self.window)
            if probe is not None and op(probe, self.value):
                return True, series.name, probe
        return False, None, None


class AlertState:
    """Firing/resolved bookkeeping for one rule."""

    def __init__(self, rule: AlertRule):
        self.rule = rule
        self.firing = False
        self.breaches = 0
        self.oks = 0
        self.fired_at: float | None = None
        self.resolved_at: float | None = None
        self.fire_count = 0
        self.last_series: str | None = None
        self.last_value: float | None = None

    def score(self, breach: bool, now: float) -> str | None:
        """Apply one window's verdict; returns the transition if any."""
        if breach:
            self.breaches += 1
            self.oks = 0
            if not self.firing and \
                    self.breaches >= self.rule.for_windows:
                self.firing = True
                self.fired_at = now
                self.fire_count += 1
                return "firing"
        else:
            self.oks += 1
            self.breaches = 0
            if self.firing and self.oks >= self.rule.clear_windows:
                self.firing = False
                self.resolved_at = now
                return "resolved"
        return None

    def snapshot(self) -> dict:
        """JSON-ready summary."""
        return {
            "alert": self.rule.name,
            "severity": self.rule.severity,
            "kind": self.rule.kind,
            "series": self.rule.series,
            "firing": self.firing,
            "fired_at": self.fired_at,
            "resolved_at": self.resolved_at,
            "fire_count": self.fire_count,
            "last_series": self.last_series,
            "last_value": self.last_value,
        }


class AlertEngine:
    """Evaluates every rule once per closed window."""

    def __init__(self, rules=None):
        self.states = [AlertState(rule) for rule in
                       (DEFAULT_RULES if rules is None else rules)]
        self.transitions: list[dict] = []

    def evaluate(self, now: float, bus) -> list[dict]:
        """Score all rules against the bus; returns new transitions."""
        events = []
        for state in self.states:
            breach, series, value = state.rule.breached(bus, now)
            if breach:
                state.last_series, state.last_value = series, value
            transition = state.score(breach, now)
            if transition is not None:
                events.append({
                    "t": now,
                    "alert": state.rule.name,
                    "severity": state.rule.severity,
                    "event": transition,
                    "series": series,
                    "value": value,
                    "provenance": _provenance(bus),
                })
        self.transitions.extend(events)
        return events

    def firing(self) -> list[AlertState]:
        """The currently firing alerts."""
        return [state for state in self.states if state.firing]

    def snapshot(self) -> dict:
        """JSON-ready view of every rule's state plus the event log."""
        return {
            "rules": [state.snapshot() for state in self.states],
            "firing": sum(1 for state in self.states if state.firing),
            "transitions": list(self.transitions),
        }


def _provenance(bus) -> dict:
    """Per-tenant link back to the decision behind the alert."""
    return {
        tenant: health.last_action
        for tenant, health in sorted(bus.health.tenants.items())
        if health.last_action is not None
    }


#: the built-in rule set ``repro monitor`` starts with
DEFAULT_RULES = (
    AlertRule(name="controller_flapping",
              series="health.*.oscillation",
              kind="threshold", op=">=", value=0.5,
              for_windows=3, clear_windows=3, severity="warning"),
    AlertRule(name="slo_burn_high",
              series="slo.*.burn",
              kind="threshold", op=">", value=0.1,
              for_windows=2, clear_windows=2, severity="critical"),
    AlertRule(name="telemetry_absent",
              series="live.throughput",
              kind="absence", window=8,
              for_windows=4, clear_windows=1, severity="critical"),
)


def load_rules(path) -> tuple[AlertRule, ...]:
    """Read alert rules from a JSON file (a list of rule objects).

    Unknown keys are rejected so typos fail loudly instead of silently
    disabling a rule.
    """
    path = pathlib.Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except json.JSONDecodeError as exc:
        raise ReproError(f"{path}: invalid JSON rules file") from exc
    if not isinstance(payload, list):
        raise ReproError(f"{path}: want a JSON list of rule objects")
    known = {f.name for f in fields(AlertRule)}
    rules = []
    for index, entry in enumerate(payload):
        if not isinstance(entry, dict):
            raise ReproError(f"{path}: rule #{index} is not an object")
        extra = set(entry) - known
        if extra:
            raise ReproError(
                f"{path}: rule #{index} has unknown keys "
                f"{sorted(extra)}")
        if "name" not in entry or "series" not in entry:
            raise ReproError(
                f"{path}: rule #{index} needs 'name' and 'series'")
        rules.append(AlertRule(**entry))
    return tuple(rules)
