"""Telemetry exporters: Prometheus text, JSONL, Chrome trace, stats table.

One recorded run leaves the process in four shapes:

* ``metrics.prom`` — Prometheus text exposition format (scrapeable /
  diffable snapshots);
* ``metrics.jsonl`` — one JSON object per instrument, for programmatic
  post-processing;
* ``trace.json`` — Chrome ``trace_event`` JSON; load it in Perfetto or
  ``chrome://tracing`` to see controller pipeline stages (host clock)
  and query/stage execution (simulated clock) on separate tracks;
* ``decisions.jsonl`` — the decision-provenance log ``repro explain``
  reads back.

:func:`export_run` writes all four; ``repro run --telemetry DIR`` is its
CLI face.
"""

from __future__ import annotations

import json
import pathlib

from ..analysis.report import render_table
from ..errors import ReproError
from .metrics import Counter, Gauge, Histogram
from .provenance import dump_decisions
from .spans import chrome_trace_events

#: canonical file names inside a telemetry directory
METRICS_PROM = "metrics.prom"
METRICS_JSONL = "metrics.jsonl"
TRACE_JSON = "trace.json"
DECISIONS_JSONL = "decisions.jsonl"


def prometheus_name(name: str) -> str:
    """``controller.ticks`` -> ``repro_controller_ticks``."""
    return "repro_" + name.replace(".", "_")


def escape_label_value(value: str) -> str:
    """Escape a label value per the text exposition format.

    Backslash, double-quote and newline are the three characters the
    format reserves inside quoted label values.
    """
    return (str(value).replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def format_labels(labels: dict) -> str:
    """``{"le": "0.1"}`` -> ``{le="0.1"}`` (empty dict -> '')."""
    if not labels:
        return ""
    inner = ",".join(f'{key}="{escape_label_value(value)}"'
                     for key, value in labels.items())
    return "{" + inner + "}"


def render_family(name: str, kind: str, help_text: str,
                  samples) -> list[str]:
    """One metric family: ``# HELP``/``# TYPE`` once, then samples.

    ``samples`` are ``(suffix, labels, value)`` triples — the labeled
    children of the family (histogram buckets, per-tenant gauges, ...).
    Shared by the batch exporter and the live ``/metrics`` endpoint so
    both speak identical exposition format.
    """
    lines = [f"# HELP {name} {escape_help(help_text)}",
             f"# TYPE {name} {kind}"]
    for suffix, labels, value in samples:
        rendered = value if isinstance(value, int) else f"{value:g}"
        lines.append(f"{name}{suffix}{format_labels(labels)} {rendered}")
    return lines


def escape_help(text: str) -> str:
    """Escape a ``# HELP`` string (backslash and newline only)."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _instrument_samples(instrument) -> tuple[str, list]:
    """(kind, samples) of one instrument, for :func:`render_family`."""
    if isinstance(instrument, Counter):
        return "counter", [("", {}, instrument.value)]
    if isinstance(instrument, Gauge):
        return "gauge", [("", {}, instrument.value)]
    if isinstance(instrument, Histogram):
        samples = []
        cumulative = 0
        for edge, count in zip(instrument.boundaries,
                               instrument.bucket_counts):
            cumulative += count
            samples.append(("_bucket", {"le": f"{edge:g}"}, cumulative))
        # the +Inf bucket is the total count by definition — it also
        # covers the implicit overflow bucket above the last edge
        samples.append(("_bucket", {"le": "+Inf"}, instrument.count))
        samples.append(("_sum", {}, instrument.total))
        samples.append(("_count", {}, instrument.count))
        return "histogram", samples
    raise ReproError(f"cannot render instrument {instrument!r}")


def render_prometheus(metrics) -> str:
    """Render a registry in the Prometheus text exposition format.

    ``# HELP`` and ``# TYPE`` are emitted once per *family* even when
    several dotted instrument names collapse onto one Prometheus name
    (``a.b_c`` and ``a.b.c`` both map to ``repro_a_b_c``); colliding
    instruments of different kinds are an error, not silent corruption.
    """
    order: list[str] = []
    kinds: dict[str, str] = {}
    helps: dict[str, str] = {}
    samples: dict[str, list] = {}
    for instrument in metrics.all():
        pname = prometheus_name(instrument.name)
        kind, instrument_samples = _instrument_samples(instrument)
        if pname not in kinds:
            order.append(pname)
            kinds[pname] = kind
            helps[pname] = f"repro metric {instrument.name}"
            samples[pname] = []
        elif kinds[pname] != kind:
            raise ReproError(
                f"metric family {pname} rendered as both "
                f"{kinds[pname]} and {kind}")
        samples[pname].extend(instrument_samples)
    lines: list[str] = []
    for pname in order:
        lines.extend(render_family(pname, kinds[pname], helps[pname],
                                   samples[pname]))
    return "\n".join(lines) + ("\n" if lines else "")


def dump_metrics_jsonl(metrics, path) -> int:
    """One JSON object per instrument; returns the count."""
    path = pathlib.Path(path)
    snapshot = metrics.snapshot()
    with path.open("w", encoding="utf-8") as handle:
        for entry in snapshot:
            handle.write(json.dumps(entry) + "\n")
    return len(snapshot)


def load_metrics_jsonl(path) -> list[dict]:
    """Read a metrics JSONL snapshot back (plain dicts)."""
    path = pathlib.Path(path)
    entries = []
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{path}:{line_no}: invalid JSON") from exc
            if not isinstance(entry, dict) or "kind" not in entry:
                raise ReproError(
                    f"{path}:{line_no}: not a metric snapshot entry")
            entries.append(entry)
    return entries


def dump_chrome_trace(spans, path) -> int:
    """Write spans as a Chrome ``trace_event`` JSON file.

    The JSON-object form (``{"traceEvents": [...]}``) is used so the
    file is self-describing and extensible; both Perfetto and
    ``chrome://tracing`` accept it.  Returns the event count.
    """
    path = pathlib.Path(path)
    events = chrome_trace_events(
        spans.all() if hasattr(spans, "all") else spans)
    document = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "tracks": {"pid 1": "host clock (pipeline cost)",
                       "pid 2": "simulated clock (queries, stages)"},
        },
    }
    with path.open("w", encoding="utf-8") as handle:
        json.dump(document, handle)
    return len(events)


def export_run(recorder, directory) -> dict[str, pathlib.Path]:
    """Write every export format for one recorded run.

    Returns ``{"prometheus": ..., "metrics": ..., "trace": ...,
    "decisions": ...}`` paths.  The directory is created if needed.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    paths = {
        "prometheus": directory / METRICS_PROM,
        "metrics": directory / METRICS_JSONL,
        "trace": directory / TRACE_JSON,
        "decisions": directory / DECISIONS_JSONL,
    }
    paths["prometheus"].write_text(render_prometheus(recorder.metrics),
                                   encoding="utf-8")
    dump_metrics_jsonl(recorder.metrics, paths["metrics"])
    dump_chrome_trace(recorder.spans, paths["trace"])
    dump_decisions(recorder.decisions.all(), paths["decisions"])
    return paths


# ----------------------------------------------------------------------
# the `repro stats` table
# ----------------------------------------------------------------------

#: metric families that carry a tenant segment when the instrument
#: belongs to a non-default tenant (``controller.volcano.ticks``); the
#: default tenant keeps the bare historical names (``controller.ticks``)
_TENANT_FAMILIES = frozenset({"controller", "cpuset", "petrinet"})


def metric_tenant(name: str) -> str | None:
    """The tenant a per-tenant metric belongs to, or ``None``.

    ``None`` means the metric is machine-wide (``sim.events``,
    ``scheduler.migrations`` ...) and shows up regardless of any
    ``--tenant`` filter.
    """
    from ..opsys.inventory import DEFAULT_TENANT

    parts = name.split(".")
    if parts[0] not in _TENANT_FAMILIES or len(parts) < 2:
        return None
    if parts[0] == "petrinet":
        # petrinet.fired.t1 (default) vs petrinet.<tenant>.fired.t1
        return DEFAULT_TENANT if parts[1] == "fired" else parts[1]
    # controller.ticks / cpuset.cores_added (default, two segments) vs
    # controller.<tenant>.ticks / cpuset.<tenant>.cores_added
    return DEFAULT_TENANT if len(parts) == 2 else parts[1]


def _stats_rows(entries) -> list[list[object]]:
    rows: list[list[object]] = []
    for entry in entries:
        kind = entry["kind"]
        if kind in ("counter", "gauge"):
            rows.append([entry["name"], kind, entry["value"], "", ""])
        else:
            count = entry["count"]
            mean = entry["sum"] / count if count else 0.0
            spread = (f"{entry['min']:.3g}..{entry['max']:.3g}"
                      if count else "-")
            rows.append([entry["name"], kind, count, mean, spread])
    return rows


def stats_table(metrics_or_entries, title: str = "telemetry",
                tenant: str | None = None) -> str:
    """Summary table over a registry or a loaded JSONL snapshot.

    With ``tenant``, only that tenant's per-tenant instruments are
    listed — machine-wide metrics are filtered out too, so the table
    answers "what did *this* controller do".
    """
    if hasattr(metrics_or_entries, "snapshot"):
        entries = metrics_or_entries.snapshot()
    else:
        entries = list(metrics_or_entries)
    if tenant is not None:
        entries = [e for e in entries
                   if metric_tenant(e["name"]) == tenant]
        title = f"{title} (tenant {tenant})"
    if not entries:
        return "(no metrics recorded)"
    return render_table(
        ["metric", "kind", "value/count", "mean", "min..max"],
        _stats_rows(entries), title=title)
