"""Controller-health analyzers: is the mechanism converging on LONC?

The paper judges the elastic mechanism by how *fast* and how *stably*
it settles on the lowest number of cores that sustains the workload.
These analyzers reduce the decision-provenance stream to exactly those
judgements, one :class:`TenantHealth` per controller:

* **convergence time** — sim seconds from the tenant's first decision
  until the controller completes ``stable_streak`` consecutive Stable
  passes (the LONC criterion); leaving Stable afterwards counts a
  *divergence* and restarts the clock;
* **oscillation score** — direction flips (allocate -> release or back)
  among the last ``osc_window`` acting decisions, normalised to [0, 1];
  a controller ping-ponging cores scores high even if each step is
  locally justified;
* **flapping score** — Petri-net state changes per sliding window of
  passes, the mode-change rate;
* **allocation lag** — ticks from a threshold crossing (the pass that
  left Stable) until a core change is actually applied (``core`` is not
  ``None``); cooldowns and starvation stretch this;
* **SLO burn** — fraction of closed live windows in breach of a
  latency/throughput objective (:class:`SloTracker`); empty windows are
  skipped, not counted as good.

Everything here is *pure replay*: :func:`analyze_decisions` recomputes
the same numbers post-hoc from a decisions JSONL file, and the golden
monitor test pins live == post-hoc on the same run.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..errors import ReproError

#: Petri-net performance state that satisfies the LONC criterion
STABLE = "Stable"

_DIRECTIONS = {"allocate": 1, "release": -1}


@dataclass(frozen=True, slots=True)
class HealthConfig:
    """Tunables for the health analyzers."""

    #: consecutive Stable passes that count as converged-on-LONC
    stable_streak: int = 3
    #: sliding-window length (decisions) for oscillation/flapping
    osc_window: int = 20

    def __post_init__(self) -> None:
        if self.stable_streak < 1:
            raise ReproError("stable_streak must be >= 1")
        if self.osc_window < 2:
            raise ReproError("osc_window must be >= 2")


class TenantHealth:
    """Rolling health state of one tenant's controller."""

    def __init__(self, tenant: str, config: HealthConfig):
        self.tenant = tenant
        self.config = config
        self.decisions = 0
        self.first_time: float | None = None
        self.last_time: float | None = None
        # convergence
        self._streak = 0
        self.converged = False
        self.convergence_time: float | None = None
        self.divergences = 0
        # oscillation / flapping windows
        self._directions: deque[int] = deque(maxlen=config.osc_window)
        self._states: deque[str] = deque(maxlen=config.osc_window)
        # allocation lag: tick that left Stable, pending application
        self._episode_tick: int | None = None
        self.last_lag: int | None = None
        self.lags: list[int] = []
        self.cores: int | None = None
        #: the most recent acting decision (provenance for alerts)
        self.last_action: dict | None = None

    def observe(self, decision) -> None:
        """Fold one controller pass into the rolling state."""
        self.decisions += 1
        if self.first_time is None:
            self.first_time = decision.time
        self.last_time = decision.time
        self.cores = decision.cores_after
        self._states.append(decision.state)
        direction = _DIRECTIONS.get(decision.action or "")
        if direction is not None:
            self._directions.append(direction)
            self.last_action = {
                "time": decision.time, "tick": decision.tick,
                "action": decision.action, "core": decision.core,
                "state": decision.state,
                "cores_after": decision.cores_after,
            }
        # convergence to LONC: a streak of Stable passes
        if decision.state == STABLE:
            self._streak += 1
            if not self.converged and \
                    self._streak >= self.config.stable_streak:
                self.converged = True
                self.convergence_time = decision.time - self.first_time
        else:
            if self.converged:
                self.divergences += 1
                self.converged = False
            self._streak = 0
        # allocation lag: threshold crossing -> applied core change
        if decision.state == STABLE:
            self._episode_tick = None
        elif self._episode_tick is None:
            self._episode_tick = decision.tick
        if decision.core is not None and self._episode_tick is not None:
            lag = decision.tick - self._episode_tick + 1
            self.last_lag = lag
            self.lags.append(lag)
            self._episode_tick = None

    @property
    def oscillation(self) -> float:
        """Direction-flip rate over the acting-decision window [0, 1]."""
        directions = self._directions
        if len(directions) < 2:
            return 0.0
        flips = sum(1 for a, b in zip(directions, list(directions)[1:])
                    if a != b)
        return flips / (len(directions) - 1)

    @property
    def flapping(self) -> float:
        """State-change rate over the sliding window [0, 1]."""
        states = self._states
        if len(states) < 2:
            return 0.0
        changes = sum(1 for a, b in zip(states, list(states)[1:])
                      if a != b)
        return changes / (len(states) - 1)

    @property
    def mean_lag(self) -> float | None:
        """Mean allocation lag in ticks (``None`` before any)."""
        if not self.lags:
            return None
        return sum(self.lags) / len(self.lags)

    def snapshot(self) -> dict:
        """JSON-ready summary."""
        return {
            "tenant": self.tenant,
            "decisions": self.decisions,
            "converged": self.converged,
            "convergence_time": self.convergence_time,
            "divergences": self.divergences,
            "oscillation": self.oscillation,
            "flapping": self.flapping,
            "last_lag": self.last_lag,
            "mean_lag": self.mean_lag,
            "cores": self.cores,
            "last_action": self.last_action,
        }


class HealthSuite:
    """Per-tenant :class:`TenantHealth`, created on first decision."""

    def __init__(self, config: HealthConfig | None = None):
        self.config = config or HealthConfig()
        self.tenants: dict[str, TenantHealth] = {}

    def observe(self, decision) -> TenantHealth:
        """Route one decision; returns the tenant's health record."""
        tenant = self.tenants.get(decision.tenant)
        if tenant is None:
            tenant = TenantHealth(decision.tenant, self.config)
            self.tenants[decision.tenant] = tenant
        tenant.observe(decision)
        return tenant

    def snapshot(self) -> dict:
        """JSON-ready per-tenant summaries."""
        return {name: tenant.snapshot()
                for name, tenant in sorted(self.tenants.items())}


def analyze_decisions(decisions: Iterable,
                      config: HealthConfig | None = None) -> HealthSuite:
    """Post-hoc replay: the numbers the live suite would have computed.

    Feed it ``load_decisions(path)``; the golden monitor test asserts
    this matches the live bus on the same run.
    """
    suite = HealthSuite(config)
    for decision in decisions:
        suite.observe(decision)
    return suite


# ----------------------------------------------------------------------
# SLO objectives
# ----------------------------------------------------------------------

_OPS = {
    "<=": lambda value, target: value <= target,
    ">=": lambda value, target: value >= target,
    "<": lambda value, target: value < target,
    ">": lambda value, target: value > target,
}


@dataclass(frozen=True, slots=True)
class SloObjective:
    """One service-level objective over a live series.

    The window is *good* when ``value <op> target`` holds, e.g.
    ``SloObjective("latency", "live.latency.p95", "<=", 0.5)``.
    """

    name: str
    series: str
    op: str
    target: float

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ReproError(
                f"SLO op {self.op!r}: want one of {sorted(_OPS)}")

    def good(self, value: float) -> bool:
        """Does ``value`` meet the objective?"""
        return _OPS[self.op](value, self.target)


class SloTracker:
    """Burn-rate accounting for one objective.

    Burn = breached windows / counted windows.  A window with no sample
    on the series is *skipped* (not counted either way): an idle window
    says nothing about whether the objective held.
    """

    def __init__(self, objective: SloObjective):
        self.objective = objective
        self.counted = 0
        self.breached = 0
        self.skipped = 0

    def observe_window(self, value: float | None) -> float | None:
        """Score one closed window; returns the burn so far.

        ``value`` is the window's sample on the objective's series, or
        ``None`` when the window was empty.  Returns ``None`` until a
        first window has been counted.
        """
        if value is None:
            self.skipped += 1
        else:
            self.counted += 1
            if not self.objective.good(value):
                self.breached += 1
        return self.burn

    @property
    def burn(self) -> float | None:
        """Fraction of counted windows in breach (``None`` before any)."""
        if self.counted == 0:
            return None
        return self.breached / self.counted

    def snapshot(self) -> dict:
        """JSON-ready summary."""
        return {
            "objective": self.objective.name,
            "series": self.objective.series,
            "op": self.objective.op,
            "target": self.objective.target,
            "counted": self.counted,
            "breached": self.breached,
            "skipped": self.skipped,
            "burn": self.burn,
        }


def slo_burn_from_stream(entries: Sequence[dict],
                         objective: SloObjective) -> float | None:
    """Recompute an SLO burn from a JSONL stream's sample entries.

    ``entries`` are parsed stream records (``kind == "sample"`` rows
    carry ``series``/``value``/``t``); the replay buckets them into the
    same windows the live tracker saw and scores each window's last
    sample, mirroring :meth:`LiveBus.flush`.
    """
    tracker = SloTracker(objective)
    pending: float | None = None
    for entry in entries:
        kind = entry.get("kind")
        if kind == "sample" and entry.get("series") == objective.series:
            pending = float(entry["value"])
        elif kind == "window":
            tracker.observe_window(pending)
            pending = None
    return tracker.burn
