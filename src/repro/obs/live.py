"""The live telemetry bus: streaming aggregation over a *running* sim.

The batch exporters of :mod:`repro.obs.export` leave the process only
after an experiment ends; nothing can observe, alert on, or react to a
run while it executes.  This module is the streaming twin: a process-wide
:class:`LiveBus` receives samples tick-by-tick — controller decisions
through the :meth:`LiveBus.on_decision` stage hook, core-lease edits
through :meth:`LiveBus.on_core_change`, and time-windowed *flushes* that
read the run's metrics registry incrementally (the Elasecutor
monitor -> depository loop, SNIPPETS.md §1) — and keeps rolling
aggregates the monitor endpoint, the alert engine and the terminal
dashboard read concurrently.

Three aggregator primitives do the rolling work:

* :class:`Ewma` — exponentially weighted moving average with an explicit
  warm-up (``value`` is ``None`` until the first observation);
* :class:`WindowRate` — per-second rate of a cumulative counter between
  flushes, following the Prometheus reset convention (a decrease means
  the counter restarted, and the post-reset value is the delta);
* :class:`P2Quantile` — the P² streaming quantile sketch (Jain & Chlamtac
  1985): five markers, O(1) memory, exact below five observations.

Everything on the bus is keyed by **simulated time**.  The flush cadence
is driven by the simulation itself: :class:`LiveFlushTimer` is a
self-rescheduling sim event armed by ``OperatingSystem.run*`` whenever a
bus is installed, so windows close as sim time advances and stop when
the machine goes idle.  The bus is deliberately *not* part of any
captured system graph — emission sites reach it through
:func:`live_bus` at call time, so warm-start forks (whose recorders are
pickle copies) still stream into the one process-wide bus.

Thread-safety: the experiment thread emits, the HTTP server thread
scrapes.  One lock guards the bus; readers take consistent snapshots
through :meth:`LiveBus.snapshot`.
"""

from __future__ import annotations

import contextlib
import threading
from collections import deque
from collections.abc import Iterable, Sequence

from ..errors import ReproError
from .health import HealthConfig, HealthSuite, SloObjective, SloTracker

#: flush-window length in simulated seconds (default; CLI-overridable)
DEFAULT_WINDOW = 0.25

#: ring-buffer depth per series (samples kept for trend rules/sparklines)
DEFAULT_KEEP = 512


# ----------------------------------------------------------------------
# rolling aggregators
# ----------------------------------------------------------------------

class Ewma:
    """Exponentially weighted moving average with explicit warm-up.

    ``value`` stays ``None`` until the first observation (an EWMA seeded
    with 0.0 would report a phantom cold start); the first observation
    initialises it exactly, later ones blend with weight ``alpha``.
    """

    __slots__ = ("alpha", "value", "count")

    def __init__(self, alpha: float = 0.3):
        if not 0.0 < alpha <= 1.0:
            raise ReproError(f"EWMA alpha {alpha} outside (0, 1]")
        self.alpha = alpha
        self.value: float | None = None
        self.count = 0

    def update(self, value: float) -> float:
        """Blend in one observation; returns the new average."""
        self.count += 1
        if self.value is None:
            self.value = float(value)
        else:
            self.value += self.alpha * (value - self.value)
        return self.value


class WindowRate:
    """Per-second rate of a cumulative counter, reset-aware.

    Feed it ``(time, cumulative_value)`` once per flush; it returns the
    rate over the closed window, or ``None`` for the very first call
    (no window exists yet).  A value *below* the previous one means the
    counter restarted (a forked run replaying a warm prefix, a process
    handover); per the Prometheus convention the counter is assumed to
    have restarted from zero, so the post-reset value is the delta.
    """

    __slots__ = ("_prev_time", "_prev_value")

    def __init__(self) -> None:
        self._prev_time: float | None = None
        self._prev_value = 0.0

    def update(self, time: float, value: float) -> float | None:
        """Close one window; returns its rate (``None`` on the first)."""
        prev_t, prev_v = self._prev_time, self._prev_value
        self._prev_time, self._prev_value = time, float(value)
        if prev_t is None:
            return None
        delta = value - prev_v if value >= prev_v else value
        dt = time - prev_t
        if dt <= 0:
            return 0.0
        return delta / dt

    def delta(self, value: float) -> float:
        """The reset-aware increment the *next* update would see."""
        return value - self._prev_value if value >= self._prev_value \
            else value


class P2Quantile:
    """The P² single-quantile streaming sketch (Jain & Chlamtac 1985).

    Five markers track (min, q/2, q, (1+q)/2, max); marker heights are
    adjusted with a piecewise-parabolic fit as observations arrive.
    Exact for the first five observations, O(1) memory after.
    ``value()`` is ``None`` while empty — an empty window has no
    quantile, and callers must not invent one.
    """

    __slots__ = ("q", "_heights", "_positions", "_desired", "_rates",
                 "count")

    def __init__(self, q: float):
        if not 0.0 < q < 1.0:
            raise ReproError(f"quantile {q} outside (0, 1)")
        self.q = q
        self._heights: list[float] = []
        self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
        self._desired = [1.0, 1 + 2 * q, 1 + 4 * q, 3 + 2 * q, 5.0]
        self._rates = [0.0, q / 2, q, (1 + q) / 2, 1.0]
        self.count = 0

    def observe(self, value: float) -> None:
        """Fold one observation into the sketch."""
        self.count += 1
        heights = self._heights
        if self.count <= 5:
            heights.append(float(value))
            heights.sort()
            return
        positions = self._positions
        # locate the cell and clamp the extremes
        if value < heights[0]:
            heights[0] = float(value)
            cell = 0
        elif value >= heights[4]:
            heights[4] = float(value)
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for i in range(cell + 1, 5):
            positions[i] += 1.0
        desired = self._desired
        for i in range(5):
            desired[i] += self._rates[i]
        # adjust the three interior markers
        for i in (1, 2, 3):
            drift = desired[i] - positions[i]
            right = positions[i + 1] - positions[i]
            left = positions[i - 1] - positions[i]
            if (drift >= 1.0 and right > 1.0) or \
                    (drift <= -1.0 and left < -1.0):
                step = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(i, step)
                if heights[i - 1] < candidate < heights[i + 1]:
                    heights[i] = candidate
                else:
                    heights[i] = self._linear(i, step)
                positions[i] += step

    def _parabolic(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        return h[i] + step / (n[i + 1] - n[i - 1]) * (
            (n[i] - n[i - 1] + step) * (h[i + 1] - h[i])
            / (n[i + 1] - n[i])
            + (n[i + 1] - n[i] - step) * (h[i] - h[i - 1])
            / (n[i] - n[i - 1]))

    def _linear(self, i: int, step: float) -> float:
        h, n = self._heights, self._positions
        j = i + int(step)
        return h[i] + step * (h[j] - h[i]) / (n[j] - n[i])

    def value(self) -> float | None:
        """The current quantile estimate (``None`` while empty)."""
        count = self.count
        if count == 0:
            return None
        heights = self._heights
        if count <= 5:
            # exact: interpolation-free order statistic on what we hold
            rank = max(0, min(count - 1, int(self.q * count)))
            return heights[rank]
        return heights[2]


# ----------------------------------------------------------------------
# series
# ----------------------------------------------------------------------

class Series:
    """One named live series: last value, EWMA, bounded sample ring."""

    __slots__ = ("name", "samples", "ewma", "last", "last_time", "count")

    def __init__(self, name: str, keep: int = DEFAULT_KEEP,
                 alpha: float = 0.3):
        self.name = name
        self.samples: deque[tuple[float, float]] = deque(maxlen=keep)
        self.ewma = Ewma(alpha)
        self.last: float | None = None
        self.last_time: float | None = None
        self.count = 0

    def add(self, time: float, value: float) -> None:
        """Record one sample at simulated ``time``."""
        value = float(value)
        self.samples.append((time, value))
        self.ewma.update(value)
        self.last = value
        self.last_time = time
        self.count += 1

    def trend(self, lookback: int) -> float | None:
        """Per-second slope over the last ``lookback`` samples.

        ``None`` with fewer than two samples or zero elapsed time — a
        trend needs an interval to exist.
        """
        if lookback < 2 or len(self.samples) < 2:
            return None
        window = list(self.samples)[-lookback:]
        (t0, v0), (t1, v1) = window[0], window[-1]
        if t1 <= t0:
            return None
        return (v1 - v0) / (t1 - t0)

    def as_dict(self) -> dict:
        """JSON-ready summary (not the full ring)."""
        return {"name": self.name, "last": self.last,
                "last_time": self.last_time, "count": self.count,
                "ewma": self.ewma.value}


# ----------------------------------------------------------------------
# registry taps
# ----------------------------------------------------------------------

class CounterTap:
    """Flush hook: cumulative counter -> windowed rate series.

    ``flush`` runs under the bus lock (the bus calls it), so it must
    emit through :meth:`LiveBus._emit_locked`, never :meth:`LiveBus.emit`.
    """

    __slots__ = ("metric", "series", "_rate")

    def __init__(self, metric: str, series: str):
        self.metric = metric
        self.series = series
        self._rate = WindowRate()

    def flush(self, bus: "LiveBus", registry, now: float) -> None:
        if self.metric not in registry:
            return
        rate = self._rate.update(now, registry.get(self.metric).value)
        if rate is not None:
            bus._emit_locked(self.series, now, rate)


class GaugeTap:
    """Flush hook: gauge level -> series sample per window."""

    __slots__ = ("metric", "series")

    def __init__(self, metric: str, series: str):
        self.metric = metric
        self.series = series

    def flush(self, bus: "LiveBus", registry, now: float) -> None:
        if self.metric not in registry:
            return
        bus._emit_locked(self.series, now,
                         registry.get(self.metric).value)


class HistogramTap:
    """Flush hook: histogram deltas -> windowed mean + quantile series.

    Quantiles are computed from the *bucket-count deltas* of the window
    (conservative upper-edge estimates, exactly like
    :meth:`~repro.obs.metrics.Histogram.quantile`); a window with no new
    observations emits nothing — an empty window has no latency.
    """

    __slots__ = ("metric", "series", "quantiles", "_prev_buckets",
                 "_prev_sum", "_prev_count")

    def __init__(self, metric: str, series: str,
                 quantiles: Sequence[float] = (0.5, 0.95)):
        self.metric = metric
        self.series = series
        self.quantiles = tuple(quantiles)
        self._prev_buckets: list[int] | None = None
        self._prev_sum = 0.0
        self._prev_count = 0

    def flush(self, bus: "LiveBus", registry, now: float) -> None:
        if self.metric not in registry:
            return
        hist = registry.get(self.metric)
        buckets = list(hist.bucket_counts)
        prev = self._prev_buckets
        if prev is None or hist.count < self._prev_count:
            # first window, or the histogram restarted (forked run)
            prev = [0] * len(buckets)
            self._prev_sum, self._prev_count = 0.0, 0
        delta_buckets = [b - p for b, p in zip(buckets, prev)]
        delta_count = hist.count - self._prev_count
        delta_sum = hist.total - self._prev_sum
        self._prev_buckets = buckets
        self._prev_sum, self._prev_count = hist.total, hist.count
        if delta_count <= 0:
            return
        bus._emit_locked(f"{self.series}.mean", now,
                         delta_sum / delta_count)
        for q in self.quantiles:
            rank = q * delta_count
            seen = 0
            value = hist.boundaries[-1]
            for edge, n in zip(hist.boundaries, delta_buckets):
                seen += n
                if seen >= rank and n:
                    value = edge
                    break
            else:
                if delta_buckets[-1]:
                    value = hist.max
            bus._emit_locked(f"{self.series}.p{int(q * 100)}", now,
                             value)


def default_taps() -> tuple:
    """The standard registry taps a monitored run starts with."""
    return (
        CounterTap("db.queries", "live.throughput"),
        HistogramTap("db.query_seconds", "live.latency"),
        GaugeTap("cpuset.allowed_cores", "live.cores_allowed"),
        CounterTap("scheduler.migrations", "live.migrations_per_s"),
    )


# ----------------------------------------------------------------------
# the bus
# ----------------------------------------------------------------------

class LiveBus:
    """Process-wide streaming hub for one monitored run.

    Sources push with :meth:`emit` / :meth:`on_decision` /
    :meth:`on_core_change`; the sim-driven flush timer calls
    :meth:`flush` once per window; readers (HTTP server, dashboard,
    tests) call :meth:`snapshot`.  All entry points lock — emissions
    come from the experiment thread, scrapes from the server thread.
    """

    def __init__(self, window: float = DEFAULT_WINDOW,
                 taps: Iterable | None = None,
                 slos: Iterable[SloObjective] = (),
                 health: HealthConfig | None = None,
                 alerts=None,
                 keep: int = DEFAULT_KEEP):
        if window <= 0:
            raise ReproError(f"flush window must be positive, got {window}")
        self.window = window
        self.keep = keep
        self.series: dict[str, Series] = {}
        self.taps = tuple(default_taps() if taps is None else taps)
        self.health = HealthSuite(health or HealthConfig())
        self.slos = tuple(SloTracker(objective) for objective in slos)
        #: the alert engine (an ``alerts.AlertEngine``); optional so the
        #: bus works headless, injected to avoid an import cycle
        self.alerts = alerts
        self.sinks: list = []
        self.windows = 0
        self.last_flush: float | None = None
        self.decisions_seen = 0
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    # ingestion
    # ------------------------------------------------------------------

    def add_sink(self, sink) -> None:
        """Attach a streaming sink (``sink.write(kind, payload)``)."""
        self.sinks.append(sink)

    def _series(self, name: str) -> Series:
        series = self.series.get(name)
        if series is None:
            series = Series(name, keep=self.keep)
            self.series[name] = series
        return series

    def _emit_locked(self, name: str, time: float, value: float) -> None:
        self._series(name).add(time, value)
        for sink in self.sinks:
            sink.write("sample", {"t": time, "series": name,
                                  "value": float(value)})

    def emit(self, name: str, time: float, value: float) -> None:
        """Record one sample on one series (thread-safe)."""
        with self._lock:
            self._emit_locked(name, time, value)

    def on_decision(self, decision) -> None:
        """Stage hook: one controller pipeline pass just completed."""
        with self._lock:
            self.decisions_seen += 1
            tenant = self.health.observe(decision)
            t = decision.time
            prefix = f"health.{decision.tenant}"
            self._emit_locked(f"live.metric.{decision.tenant}", t,
                              decision.metric)
            self._emit_locked(f"{prefix}.oscillation", t,
                              tenant.oscillation)
            self._emit_locked(f"{prefix}.flapping", t, tenant.flapping)
            if tenant.last_lag is not None:
                self._emit_locked(f"{prefix}.allocation_lag", t,
                                  float(tenant.last_lag))
            self._emit_locked(f"{prefix}.converged", t,
                              1.0 if tenant.converged else 0.0)
            if tenant.convergence_time is not None:
                self._emit_locked(f"{prefix}.convergence_time", t,
                                  tenant.convergence_time)
            for sink in self.sinks:
                sink.write("decision", {
                    "t": t, "tenant": decision.tenant,
                    "tick": decision.tick, "state": decision.state,
                    "action": decision.action, "core": decision.core,
                    "cores_after": decision.cores_after})

    def on_core_change(self, time: float, tenant: str,
                       n_allocated: int) -> None:
        """Stage hook: an actuator changed a tenant's core holdings."""
        self.emit(f"live.cores.{tenant}", time, float(n_allocated))

    # ------------------------------------------------------------------
    # the window flush
    # ------------------------------------------------------------------

    def flush(self, os_) -> None:
        """Close one window against a running system's registry.

        Called by the :class:`LiveFlushTimer` with simulated cadence
        ``self.window``; reads cumulative instruments incrementally and
        turns them into windowed series, then scores SLO objectives and
        evaluates alert rules on the fresh values.
        """
        with self._lock:
            now = os_.now
            registry = os_.obs.metrics
            for tap in self.taps:
                tap.flush(self, registry, now)
            self.windows += 1
            self.last_flush = now
            for tracker in self.slos:
                series = self.series.get(tracker.objective.series)
                value = None
                if series is not None and series.last_time is not None \
                        and series.last_time > now - self.window:
                    value = series.last
                burn = tracker.observe_window(value)
                if burn is not None:
                    self._emit_locked(
                        f"slo.{tracker.objective.name}.burn", now, burn)
            if self.alerts is not None:
                transitions = self.alerts.evaluate(now, self)
                for event in transitions:
                    for sink in self.sinks:
                        sink.write("alert", event)
            for sink in self.sinks:
                sink.write("window", {
                    "t": now, "windows": self.windows,
                    "decisions": self.decisions_seen})
                sink.flush()

    # ------------------------------------------------------------------
    # reading
    # ------------------------------------------------------------------

    def snapshot(self) -> dict:
        """A consistent JSON-ready view for servers and dashboards."""
        with self._lock:
            out = {
                "window": self.window,
                "windows": self.windows,
                "last_flush": self.last_flush,
                "decisions": self.decisions_seen,
                "series": {name: series.as_dict()
                           for name, series in sorted(self.series.items())},
                "health": self.health.snapshot(),
                "slo": [tracker.snapshot() for tracker in self.slos],
            }
            if self.alerts is not None:
                out["alerts"] = self.alerts.snapshot()
            return out


# ----------------------------------------------------------------------
# the sim-driven flush timer
# ----------------------------------------------------------------------

class LiveFlushTimer:
    """Self-rescheduling sim event that closes bus windows.

    Armed by ``OperatingSystem.run``/``run_until_idle`` whenever a bus
    is installed.  After each flush it re-arms only while the simulation
    has other pending work, so a drained machine goes idle instead of
    ticking forever; the next ``run*`` call re-arms it.  Module-level
    class (not a closure) so captured systems stay picklable; the bus is
    looked up at fire time, never stored, so warm-start forks flush into
    the process-wide bus.
    """

    __slots__ = ("os", "event")

    def __init__(self, os_):
        self.os = os_
        self.event = None

    def arm(self) -> None:
        """Queue the next flush if none is pending."""
        bus = live_bus()
        if bus is None:
            return
        event = self.event
        if event is not None and not (event.delivered or event.cancelled):
            return
        if event is None or event.cancelled:
            self.event = self.os.sim.schedule(bus.window, self)
        else:
            self.event = self.os.sim.reschedule(event, bus.window)

    def __call__(self) -> None:
        bus = live_bus()
        if bus is None:
            return
        bus.flush(self.os)
        if self.os.sim.pending() > 0:
            self.event = self.os.sim.reschedule(self.event, bus.window)


# ----------------------------------------------------------------------
# process-wide installation
# ----------------------------------------------------------------------

_installed: LiveBus | None = None


def install_live(bus: LiveBus | None = None) -> LiveBus:
    """Make ``bus`` the process-wide live bus; returns it."""
    global _installed
    _installed = bus if bus is not None else LiveBus()
    return _installed


def uninstall_live() -> None:
    """Remove the installed bus; emission sites become no-ops again."""
    global _installed
    _installed = None


def live_bus() -> LiveBus | None:
    """The installed live bus, or ``None`` (the fast-path check)."""
    return _installed


@contextlib.contextmanager
def streaming(bus: LiveBus | None = None):
    """Install a live bus for the duration of a ``with`` block."""
    installed = install_live(bus)
    try:
        yield installed
    finally:
        uninstall_live()
