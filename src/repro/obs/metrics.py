"""The metrics registry: counters, gauges and fixed-bucket histograms.

Every instrumented component publishes under a dotted per-component
namespace (``controller.ticks``, ``scheduler.migrations``,
``db.query_seconds`` ...), so one registry aggregates a whole run and the
exporters can render it without knowing who emitted what.

Two design rules keep the hot paths cheap:

* instruments are **bound once** — components look their counter up at
  construction time and then call ``inc()`` directly, so steady-state
  recording is one method call with no dict access;
* the **null registry** hands out shared no-op singletons, so code
  instrumented against a disabled recorder pays only the call itself
  (asserted by ``benchmarks/test_obs_overhead.py``).

Histogram buckets are *fixed at creation* (no dynamic resizing), which
makes snapshots mergeable across runs and the Prometheus rendering exact.
"""

from __future__ import annotations

import re
from bisect import bisect_left
from collections.abc import Sequence

from ..errors import ReproError

#: second-scale latency buckets (simulated chunk/stage/query durations)
TIME_BUCKETS = (1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0)

#: host-side pipeline-cost buckets (microseconds to milliseconds)
HOST_TIME_BUCKETS = (1e-6, 5e-6, 1e-5, 5e-5, 1e-4, 5e-4, 1e-3, 1e-2)

#: metric-value buckets covering both %-scale (0-100) and ratio (0-1)
#: controller strategies
VALUE_BUCKETS = (0.1, 0.25, 0.5, 1.0, 10.0, 25.0, 50.0, 70.0, 90.0, 100.0)

_NAME_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)*$")


def check_name(name: str) -> str:
    """Validate a dotted metric name; returns it unchanged."""
    if not _NAME_RE.match(name):
        raise ReproError(
            f"bad metric name {name!r}: want dotted lower-case "
            f"segments like 'controller.ticks'")
    return name


class Counter:
    """A monotonically increasing value."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative)."""
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease")
        self.value += amount

    def as_dict(self) -> dict:
        """Snapshot for JSON export."""
        return {"name": self.name, "kind": "counter", "value": self.value}


class Gauge:
    """A point-in-time value that can move both ways."""

    __slots__ = ("name", "value")

    kind = "gauge"

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        """Record the current level."""
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Adjust the level by ``amount`` (may be negative)."""
        self.value += amount

    def as_dict(self) -> dict:
        """Snapshot for JSON export."""
        return {"name": self.name, "kind": "gauge", "value": self.value}


class Histogram:
    """Fixed-boundary histogram with sum/count/min/max.

    ``boundaries`` are upper bucket edges in increasing order; one
    implicit overflow bucket catches everything above the last edge.
    """

    __slots__ = ("name", "boundaries", "bucket_counts", "total", "count",
                 "min", "max")

    kind = "histogram"

    def __init__(self, name: str,
                 boundaries: Sequence[float] = TIME_BUCKETS):
        edges = tuple(float(b) for b in boundaries)
        if not edges or any(a >= b for a, b in zip(edges, edges[1:])):
            raise ReproError(
                f"histogram {name} needs strictly increasing boundaries")
        self.name = name
        self.boundaries = edges
        self.bucket_counts = [0] * (len(edges) + 1)
        self.total = 0.0
        self.count = 0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.bucket_counts[bisect_left(self.boundaries, value)] += 1
        self.total += value
        self.count += 1
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of the observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate quantile: the upper edge of the bucket holding the
        ``q``-th observation (conservative; exact only per-bucket)."""
        if not 0 <= q <= 1:
            raise ReproError(f"quantile {q} outside [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for edge, n in zip(self.boundaries, self.bucket_counts):
            seen += n
            if seen >= rank and n:
                return edge
        return self.max

    def as_dict(self) -> dict:
        """Snapshot for JSON export."""
        return {
            "name": self.name, "kind": "histogram",
            "boundaries": list(self.boundaries),
            "bucket_counts": list(self.bucket_counts),
            "sum": self.total, "count": self.count,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }


class MetricsRegistry:
    """Get-or-create home for every instrument of one run."""

    enabled = True

    def __init__(self) -> None:
        self._instruments: dict[str, object] = {}

    def _get(self, name: str, kind: type, *args):
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = kind(check_name(name), *args)
            self._instruments[name] = instrument
        elif type(instrument) is not kind:
            raise ReproError(
                f"metric {name!r} already registered as "
                f"{type(instrument).__name__}")
        return instrument

    def counter(self, name: str) -> Counter:
        """The counter called ``name`` (created on first use)."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge called ``name`` (created on first use)."""
        return self._get(name, Gauge)

    def histogram(self, name: str,
                  boundaries: Sequence[float] = TIME_BUCKETS,
                  ) -> Histogram:
        """The histogram called ``name`` (created on first use).

        ``boundaries`` only applies on creation; later calls return the
        existing instrument regardless.
        """
        return self._get(name, Histogram, boundaries)

    def get(self, name: str):
        """Look up an existing instrument or raise."""
        if name not in self._instruments:
            raise ReproError(f"unknown metric {name!r}")
        return self._instruments[name]

    def names(self) -> list[str]:
        """All registered metric names, sorted."""
        return sorted(self._instruments)

    def __len__(self) -> int:
        return len(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def all(self) -> list[object]:
        """Every instrument, sorted by name."""
        return [self._instruments[n] for n in self.names()]

    def snapshot(self) -> list[dict]:
        """JSON-ready snapshot of every instrument."""
        return [i.as_dict() for i in self.all()]  # type: ignore[attr-defined]


# ----------------------------------------------------------------------
# the disabled fast path
# ----------------------------------------------------------------------

class NullCounter:
    """No-op counter: recording against it costs one method call."""

    __slots__ = ()

    kind = "counter"
    name = "null"
    value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Discard the observation."""

    def as_dict(self) -> dict:
        return {"name": "null", "kind": "counter", "value": 0.0}


class NullGauge:
    """No-op gauge."""

    __slots__ = ()

    kind = "gauge"
    name = "null"
    value = 0.0

    def set(self, value: float) -> None:
        """Discard the observation."""

    def inc(self, amount: float = 1.0) -> None:
        """Discard the observation."""

    def as_dict(self) -> dict:
        return {"name": "null", "kind": "gauge", "value": 0.0}


class NullHistogram:
    """No-op histogram."""

    __slots__ = ()

    kind = "histogram"
    name = "null"
    count = 0
    total = 0.0
    mean = 0.0

    def observe(self, value: float) -> None:
        """Discard the observation."""

    def quantile(self, q: float) -> float:
        return 0.0

    def as_dict(self) -> dict:
        return {"name": "null", "kind": "histogram", "count": 0}


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullMetricsRegistry:
    """Hands out shared no-op instruments; holds nothing."""

    enabled = False

    def counter(self, name: str) -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str) -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str,
                  boundaries: Sequence[float] = TIME_BUCKETS,
                  ) -> NullHistogram:
        return _NULL_HISTOGRAM

    def names(self) -> list[str]:
        return []

    def __len__(self) -> int:
        return 0

    def __contains__(self, name: str) -> bool:
        return False

    def all(self) -> list[object]:
        return []

    def snapshot(self) -> list[dict]:
        return []
