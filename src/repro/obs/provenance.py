"""Decision provenance: *why* the controller changed the mask.

The flat :class:`~repro.sim.tracing.TransitionRecord` stream says what
fired; it cannot answer "why did the mechanism take core 9 at t=0.24?".
A :class:`Decision` captures the full causal chain of one
rule-condition-action pass:

* the **rule** half — the monitor sample the strategy reduced to the
  metric (CPU load, HT/IMC bytes, runnable threads, window);
* the **condition** half — the metric against both thresholds, which
  performance state that classified into, and the exact guard formulas
  of the entry and exit transitions that fired;
* the **action** half — allocate/release/none, the mode that picked the
  node, the chosen core, and (for the adaptive mode) the resident-page
  priority snapshot that justified the node choice.

``repro explain`` renders these records; :func:`explain_decision` is the
single formatter so CLI and tests agree on the wording.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from dataclasses import dataclass, field

from ..errors import ReproError


@dataclass(frozen=True, slots=True)
class Decision:
    """One controller pipeline pass, with its full causal chain."""

    time: float
    tick: int
    strategy: str
    metric: float
    th_min: float
    th_max: float
    state: str
    entry: str
    entry_guard: str
    exit: str
    exit_guard: str
    action: str | None
    mode: str
    core: int | None
    node: int | None
    cores_before: int
    cores_after: int
    #: monitor-sample values the rule half observed
    sample: dict[str, float] = field(default_factory=dict)
    #: adaptive mode's per-node resident-page counts (None otherwise)
    priorities: tuple[float, ...] | None = None
    #: tenant whose controller took the decision (multi-tenant systems
    #: run one controller per tenant; ``repro explain --tenant`` filters)
    tenant: str = "db"

    @property
    def label(self) -> str:
        """The Fig 7 chain label, e.g. ``t1-Overload-t5``."""
        return f"{self.entry}-{self.state}-{self.exit}"

    def threshold_comparison(self) -> str:
        """The condition half in words, e.g. ``82.30 >= 70.0``."""
        if self.state == "Idle":
            return f"{self.metric:.2f} <= th_min={self.th_min:g}"
        if self.state == "Overload":
            return f"{self.metric:.2f} >= th_max={self.th_max:g}"
        return (f"th_min={self.th_min:g} < {self.metric:.2f} "
                f"< th_max={self.th_max:g}")


class DecisionLog:
    """Append-only store of :class:`Decision` records."""

    enabled = True

    def __init__(self) -> None:
        self._decisions: list[Decision] = []

    def record(self, decision: Decision) -> None:
        """Append one decision."""
        self._decisions.append(decision)

    def __len__(self) -> int:
        return len(self._decisions)

    def all(self) -> list[Decision]:
        """Every decision in tick order."""
        return list(self._decisions)

    def at_tick(self, tick: int) -> Decision:
        """The decision of one controller tick."""
        for decision in self._decisions:
            if decision.tick == tick:
                return decision
        raise ReproError(f"no decision recorded for tick {tick}")

    def with_action(self) -> list[Decision]:
        """Only the decisions that changed the mask."""
        return [d for d in self._decisions if d.action is not None]

    def in_state(self, state: str) -> list[Decision]:
        """Decisions whose pass classified into ``state``."""
        return [d for d in self._decisions if d.state == state]

    def clear(self) -> None:
        """Drop all decisions."""
        self._decisions.clear()


class NullDecisionLog:
    """No-op decision sink for the disabled fast path."""

    enabled = False

    def record(self, decision: Decision) -> None:
        """Discard the decision."""

    def __len__(self) -> int:
        return 0

    def all(self) -> list[Decision]:
        return []

    def with_action(self) -> list[Decision]:
        return []

    def in_state(self, state: str) -> list[Decision]:
        return []

    def clear(self) -> None:
        """Nothing to drop."""


# ----------------------------------------------------------------------
# rendering
# ----------------------------------------------------------------------

def _fmt_bytes(value: float) -> str:
    for unit, scale in (("GB", 1e9), ("MB", 1e6), ("kB", 1e3)):
        if value >= scale:
            return f"{value / scale:.1f}{unit}"
    return f"{value:.0f}B"


def explain_decision(decision: Decision) -> str:
    """A human-readable account of one pipeline pass."""
    d = decision
    if d.action is None:
        outcome = "mask unchanged"
    else:
        where = f"core {d.core}" + (
            f" (node {d.node})" if d.node is not None else "")
        outcome = f"{d.action}d {where}"
    lines = [f"tick {d.tick} @ {d.time:.3f}s — {d.label}: {outcome}, "
             f"{d.cores_before} -> {d.cores_after} cores"]
    sample = d.sample
    if sample:
        parts = []
        if "cpu_load" in sample:
            parts.append(f"cpu_load={sample['cpu_load']:.1f}%")
        if "ht_bytes" in sample:
            parts.append(f"ht={_fmt_bytes(sample['ht_bytes'])}")
        if "imc_bytes" in sample:
            parts.append(f"imc={_fmt_bytes(sample['imc_bytes'])}")
        if "ht_imc_ratio" in sample:
            parts.append(f"ht/imc={sample['ht_imc_ratio']:.3f}")
        if "runnable_threads" in sample:
            parts.append(f"runnable={sample['runnable_threads']:.0f}")
        window = sample.get("window")
        suffix = f" over a {window:.3f}s window" if window else ""
        lines.append(f"  rule       monitor sampled "
                     f"{', '.join(parts)}{suffix}")
    lines.append(
        f"  condition  {d.strategy} u={d.metric:.2f}: "
        f"{d.threshold_comparison()} -> {d.state}")
    lines.append(
        f"             entry {d.entry} (guard: {d.entry_guard}), "
        f"exit {d.exit} (guard: {d.exit_guard})")
    if d.action is None:
        lines.append(f"  action     none ({d.exit} keeps the marking; "
                     f"mode {d.mode} not consulted)")
    else:
        detail = f"mode {d.mode} picked node {d.node}"
        if d.priorities is not None:
            counts = ", ".join(f"{v:g}" for v in d.priorities)
            detail += f" (resident pages by node: [{counts}])"
        lines.append(f"  action     {d.action} one core; {detail} "
                     f"-> core {d.core}")
    return "\n".join(lines)


# ----------------------------------------------------------------------
# persistence
# ----------------------------------------------------------------------

def dump_decisions(decisions, path) -> int:
    """Write decisions as JSON lines; returns the count."""
    path = pathlib.Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for decision in decisions:
            handle.write(json.dumps(dataclasses.asdict(decision)) + "\n")
            count += 1
    return count


def load_decisions(path) -> list[Decision]:
    """Read a decisions JSONL file back into typed records."""
    path = pathlib.Path(path)
    decisions = []
    field_names = {f.name for f in dataclasses.fields(Decision)}
    # fields with defaults may be absent (files written before the field
    # existed — e.g. ``tenant`` — still load); the rest are mandatory
    required = {f.name for f in dataclasses.fields(Decision)
                if f.default is dataclasses.MISSING
                and f.default_factory is dataclasses.MISSING}
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{path}:{line_no}: invalid JSON") from exc
            if not isinstance(payload, dict) or not required <= set(
                    payload):
                missing = required - set(payload or ())
                raise ReproError(
                    f"{path}:{line_no}: not a decision record "
                    f"(missing {sorted(missing)})")
            extra = set(payload) - field_names
            if extra:
                raise ReproError(
                    f"{path}:{line_no}: unknown fields {sorted(extra)}")
            if payload.get("priorities") is not None:
                payload["priorities"] = tuple(payload["priorities"])
            decisions.append(Decision(**payload))
    return decisions
