"""The recorder facade: one object carrying a run's telemetry sinks.

Instrumented components take a :class:`Recorder` (usually via
``OperatingSystem.obs``) and talk to its three parts — ``metrics``,
``spans`` and ``decisions``.  The :class:`NullRecorder` is the disabled
twin: every sink is a shared no-op, and ``enabled`` is ``False`` so the
few sites that build argument dicts can skip the work entirely.

Telemetry is off by default.  Either pass a recorder explicitly
(``build_system(obs=Recorder())``) or install one process-wide for code
you cannot thread it through (the CLI's ``--telemetry`` flag does this)::

    with recording(Recorder()) as rec:
        fig07_state_transitions.run(...)
    print(render_prometheus(rec.metrics))

The host clock lives *here*, outside the determinism-critical zones:
``core``/``sim``/``opsys`` components never import ``time`` themselves,
they measure through ``recorder.spans`` (see ``repro verify``'s
wall-clock lint).
"""

from __future__ import annotations

import contextlib
import time

from .metrics import MetricsRegistry, NullMetricsRegistry
from .provenance import DecisionLog, NullDecisionLog
from .spans import NullSpanTracer, SpanTracer


class Recorder:
    """Live telemetry: a metrics registry, a span tracer, a decision log."""

    enabled = True

    def __init__(self, clock=None):
        self.metrics = MetricsRegistry()
        self.spans = SpanTracer(
            clock=clock if clock is not None else time.perf_counter)
        self.decisions = DecisionLog()

    def clear(self) -> None:
        """Drop spans and decisions (metrics are cumulative and stay)."""
        self.spans.clear()
        self.decisions.clear()


class NullRecorder:
    """Disabled telemetry: every sink is a shared no-op singleton."""

    enabled = False

    def __init__(self) -> None:
        self.metrics = NullMetricsRegistry()
        self.spans = NullSpanTracer()
        self.decisions = NullDecisionLog()

    def clear(self) -> None:
        """Nothing to drop."""


#: the process-wide disabled recorder; components default to this
NULL_RECORDER = NullRecorder()

_installed: Recorder | None = None


def install(recorder: Recorder) -> Recorder:
    """Make ``recorder`` the process-wide default for new systems.

    Components built afterwards (``OperatingSystem`` without an explicit
    ``obs`` argument) record into it.  Returns the recorder.
    """
    global _installed
    _installed = recorder
    return recorder


def uninstall() -> None:
    """Remove the installed recorder; new systems fall back to null."""
    global _installed
    _installed = None


def current_recorder():
    """The installed recorder, or :data:`NULL_RECORDER`."""
    return _installed if _installed is not None else NULL_RECORDER


@contextlib.contextmanager
def recording(recorder: Recorder | None = None):
    """Install a recorder for the duration of a ``with`` block."""
    recorder = recorder if recorder is not None else Recorder()
    install(recorder)
    try:
        yield recorder
    finally:
        uninstall()
