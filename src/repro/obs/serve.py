"""The monitor endpoint: live ``/metrics`` + ``/health`` over HTTP.

``repro monitor <experiment>`` runs an experiment in a worker thread
while this module serves its telemetry concurrently:

* ``GET /metrics`` — Prometheus text exposition: the recorder's full
  registry (via :func:`~repro.obs.export.render_prometheus`) followed by
  the live families — windowed throughput/latency, per-tenant
  controller-health gauges, SLO burn, alert states — rendered through
  the same family renderer so a scraper sees one consistent format;
* ``GET /health`` — a JSON health document: overall status (``ok`` /
  ``alerting``), the per-tenant health-suite snapshot, SLO trackers and
  alert states;
* a live terminal dashboard redrawn every ``refresh`` host seconds;
* an optional JSONL streaming sink capturing every sample, decision,
  window and alert transition for headless runs (CI scrapes the
  endpoint mid-run and archives the stream).

The server runs on host threads; everything it reads comes from
:meth:`LiveBus.snapshot`, which locks, so scrapes never tear a window.
Host-clock use (``monotonic``/``sleep``) is legal here — this module is
operational tooling outside the deterministic strict zones.
"""

from __future__ import annotations

import json
import pathlib
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import ReproError
from .export import (export_run, prometheus_name, render_family,
                     render_prometheus)
from .live import DEFAULT_WINDOW, LiveBus, install_live, uninstall_live
from .recorder import Recorder, install, uninstall


# ----------------------------------------------------------------------
# the streaming sink
# ----------------------------------------------------------------------

class JsonlSink:
    """Append-only JSONL stream of everything crossing the bus.

    One object per line: ``{"kind": "sample" | "decision" | "window" |
    "alert", ...payload}``.  Bus callbacks already serialise under the
    bus lock, so writes never interleave.
    """

    def __init__(self, path):
        self.path = pathlib.Path(path)
        self._handle = self.path.open("w", encoding="utf-8")
        self.written = 0

    def write(self, kind: str, payload: dict) -> None:
        """Append one stream record."""
        record = {"kind": kind}
        record.update(payload)
        self._handle.write(json.dumps(record) + "\n")
        self.written += 1

    def flush(self) -> None:
        """Push buffered records to disk (called per closed window)."""
        self._handle.flush()

    def close(self) -> None:
        """Flush and close the stream file."""
        if not self._handle.closed:
            self._handle.flush()
            self._handle.close()


def load_stream(path) -> list[dict]:
    """Read a JSONL stream back (plain dicts, in write order)."""
    path = pathlib.Path(path)
    entries = []
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{path}:{line_no}: invalid JSON") from exc
            if not isinstance(entry, dict) or "kind" not in entry:
                raise ReproError(
                    f"{path}:{line_no}: not a stream record")
            entries.append(entry)
    return entries


# ----------------------------------------------------------------------
# live Prometheus families
# ----------------------------------------------------------------------

def live_families(snapshot: dict) -> list[tuple]:
    """Group a bus snapshot into ``(name, kind, help, samples)`` families.

    Per-tenant health series (``health.<tenant>.<what>``) become one
    labeled family per analyzer (``repro_health_<what>{tenant="..."}``),
    SLO burns label by objective, per-tenant core counts by tenant;
    everything else renders as an unlabeled gauge under its own name.
    """
    families: dict[str, tuple[str, str, list]] = {}

    def add(name, kind, help_text, suffix, labels, value):
        family = families.get(name)
        if family is None:
            family = (kind, help_text, [])
            families[name] = family
        family[2].append((suffix, labels, value))

    for name, series in snapshot["series"].items():
        value = series["last"]
        if value is None:
            continue
        parts = name.split(".")
        if parts[0] == "health" and len(parts) >= 3:
            what = "_".join(parts[2:])
            add(f"repro_health_{what}", "gauge",
                f"live controller health: {what}", "",
                {"tenant": parts[1]}, value)
        elif parts[0] == "slo" and parts[-1] == "burn":
            add("repro_slo_burn", "gauge",
                "fraction of windows in SLO breach", "",
                {"objective": ".".join(parts[1:-1])}, value)
        elif parts[:2] == ["live", "cores"] and len(parts) == 3:
            add("repro_live_cores", "gauge",
                "cores currently held, by tenant", "",
                {"tenant": parts[2]}, value)
        elif parts[:2] == ["live", "metric"] and len(parts) == 3:
            add("repro_live_metric", "gauge",
                "latest controller metric, by tenant", "",
                {"tenant": parts[2]}, value)
        else:
            add(prometheus_name(name), "gauge",
                f"live series {name}", "", {}, value)
    for state in snapshot.get("alerts", {}).get("rules", ()):
        add("repro_alert_firing", "gauge",
            "1 while the alert rule is firing", "",
            {"alert": state["alert"], "severity": state["severity"]},
            1 if state["firing"] else 0)
    add("repro_live_windows", "counter",
        "closed live-telemetry windows", "", {}, snapshot["windows"])
    add("repro_live_decisions", "counter",
        "controller decisions streamed", "", {},
        snapshot["decisions"])
    return [(name, kind, help_text, samples)
            for name, (kind, help_text, samples)
            in sorted(families.items())]


def render_live_prometheus(bus: LiveBus) -> str:
    """The live families in text exposition format."""
    lines: list[str] = []
    for name, kind, help_text, samples in live_families(bus.snapshot()):
        lines.extend(render_family(name, kind, help_text, samples))
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# HTTP server
# ----------------------------------------------------------------------

class _MonitorHandler(BaseHTTPRequestHandler):
    """Serves ``/metrics`` and ``/health``; silent access log."""

    server: "MonitorServer"

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0].rstrip("/") or "/"
        if path == "/metrics":
            body = self.server.metrics_text()
            content_type = "text/plain; version=0.0.4; charset=utf-8"
        elif path == "/health":
            body = json.dumps(self.server.health_document(), indent=2)
            content_type = "application/json"
        elif path == "/":
            body = "repro monitor: try /metrics or /health\n"
            content_type = "text/plain; charset=utf-8"
        else:
            self.send_error(404, "unknown path (try /metrics, /health)")
            return
        payload = body.encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(payload)))
        self.end_headers()
        self.wfile.write(payload)

    def log_message(self, format: str, *args) -> None:
        """Drop the per-request access log (it would fight the dashboard)."""


class MonitorServer(ThreadingHTTPServer):
    """HTTP server bound to one recorder + live bus pair."""

    daemon_threads = True

    def __init__(self, host: str, port: int, recorder, bus: LiveBus):
        super().__init__((host, port), _MonitorHandler)
        self.recorder = recorder
        self.bus = bus
        self._thread: threading.Thread | None = None

    @property
    def port(self) -> int:
        """The bound port (useful with ``--port 0``)."""
        return self.server_address[1]

    def metrics_text(self) -> str:
        """Registry snapshot + live families, one exposition document."""
        return render_prometheus(self.recorder.metrics) + \
            render_live_prometheus(self.bus)

    def health_document(self) -> dict:
        """The ``/health`` JSON body."""
        snapshot = self.bus.snapshot()
        firing = snapshot.get("alerts", {}).get("firing", 0)
        return {
            "status": "alerting" if firing else "ok",
            "firing": firing,
            "sim_time": snapshot["last_flush"],
            "windows": snapshot["windows"],
            "decisions": snapshot["decisions"],
            "health": snapshot["health"],
            "slo": snapshot["slo"],
            "alerts": snapshot.get("alerts", {}).get("rules", []),
        }

    def start(self) -> None:
        """Serve on a daemon thread until :meth:`stop`."""
        self._thread = threading.Thread(
            target=self.serve_forever, name="repro-monitor-http",
            daemon=True)
        self._thread.start()

    def stop(self) -> None:
        """Shut the server down and join its thread."""
        self.shutdown()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
        self.server_close()


# ----------------------------------------------------------------------
# terminal dashboard
# ----------------------------------------------------------------------

_DASH_SERIES = ("live.throughput", "live.latency.p50",
                "live.latency.p95", "live.cores_allowed")


def render_dashboard(snapshot: dict, title: str) -> str:
    """One frame of the live dashboard (plain text, no ANSI)."""
    sim_t = snapshot["last_flush"]
    head = (f"repro monitor — {title}  "
            f"sim t={sim_t:.3f}s  " if sim_t is not None
            else f"repro monitor — {title}  warming up  ")
    head += (f"windows={snapshot['windows']}  "
             f"decisions={snapshot['decisions']}")
    lines = [head, "-" * len(head)]
    series = snapshot["series"]
    for name in _DASH_SERIES:
        info = series.get(name)
        if info is None or info["last"] is None:
            continue
        lines.append(f"  {name:<22} last={info['last']:<12.6g} "
                     f"ewma={info['ewma']:.6g}  n={info['count']}")
    for tenant, health in snapshot["health"].items():
        converged = "yes" if health["converged"] else "no"
        convergence = (f"{health['convergence_time']:.3f}s"
                       if health["convergence_time"] is not None
                       else "-")
        lag = health["last_lag"] if health["last_lag"] is not None \
            else "-"
        lines.append(
            f"  health[{tenant}]: converged={converged} "
            f"({convergence})  osc={health['oscillation']:.2f}  "
            f"flap={health['flapping']:.2f}  lag={lag}  "
            f"cores={health['cores']}")
    for slo in snapshot["slo"]:
        burn = (f"{100 * slo['burn']:.1f}%" if slo["burn"] is not None
                else "-")
        lines.append(
            f"  slo[{slo['objective']}]: burn={burn} "
            f"({slo['breached']}/{slo['counted']} windows, "
            f"{slo['skipped']} empty)")
    alerts = snapshot.get("alerts")
    if alerts is not None:
        firing = [state["alert"] for state in alerts["rules"]
                  if state["firing"]]
        lines.append("  alerts: " + (", ".join(
            f"FIRING {name}" for name in firing) if firing
            else "none firing"))
    return "\n".join(lines)


# ----------------------------------------------------------------------
# the monitor driver
# ----------------------------------------------------------------------

class _ExperimentWorker(threading.Thread):
    """Runs the experiment; the main thread owns the dashboard."""

    def __init__(self, runner, kwargs: dict):
        super().__init__(name="repro-monitor-experiment", daemon=True)
        self.runner = runner
        self.kwargs = kwargs
        self.result = None
        self.error: BaseException | None = None

    def run(self) -> None:
        try:
            self.result = self.runner(**self.kwargs)
        except BaseException as exc:  # re-raised on the main thread
            self.error = exc


def run_monitor(runner, kwargs: dict, *, title: str = "experiment",
                host: str = "127.0.0.1", port: int = 8765,
                window: float = DEFAULT_WINDOW, rules=None, slos=(),
                jsonl=None, refresh: float = 1.0,
                dashboard: bool = True, serve_grace: float = 0.0,
                telemetry=None, fail_on_alert: bool = False,
                out=None) -> int:
    """Run one experiment under live monitoring; returns an exit code.

    Installs a fresh :class:`~repro.obs.recorder.Recorder` and a
    :class:`LiveBus`, serves ``/metrics`` + ``/health`` for the whole
    run (plus ``serve_grace`` host seconds afterwards, so scrapers can
    catch the final state), streams to ``jsonl`` when given, and redraws
    the dashboard every ``refresh`` seconds.  With ``fail_on_alert`` the
    exit code is 1 if any alert is still firing at the end.
    """
    from ..runner import cache as result_cache
    from .alerts import AlertEngine

    out = out if out is not None else sys.stdout
    engine = AlertEngine(rules)
    bus = LiveBus(window=window, slos=slos, alerts=engine)
    sink = JsonlSink(jsonl) if jsonl is not None else None
    if sink is not None:
        bus.add_sink(sink)
    recorder = Recorder()
    install(recorder)
    install_live(bus)
    server = MonitorServer(host, port, recorder, bus)
    server.start()
    print(f"serving http://{host}:{server.port}/metrics and /health",
          file=out)
    worker = _ExperimentWorker(runner, kwargs)
    interactive = dashboard and getattr(out, "isatty", lambda: False)()
    # a replayed (cached) run never simulates, so the bus would have
    # nothing to stream: force the result cache off for the duration
    result_cache.configure(False)
    try:
        worker.start()
        while worker.is_alive():
            worker.join(timeout=max(refresh, 0.05))
            if dashboard:
                frame = render_dashboard(bus.snapshot(), title)
                if interactive:
                    print("\x1b[2J\x1b[H" + frame, file=out, flush=True)
                else:
                    print(frame, file=out, flush=True)
        if worker.error is not None:
            raise worker.error
        print(render_dashboard(bus.snapshot(), title), file=out)
        if worker.result is not None and \
                hasattr(worker.result, "table"):
            print(worker.result.table(), file=out)
        if telemetry is not None:
            paths = export_run(recorder, telemetry)
            exported = "\n".join(f"  {p}" for p in paths.values())
            print(f"telemetry written to:\n{exported}", file=out)
        if serve_grace > 0:
            print(f"serving for another {serve_grace:g}s "
                  f"(--serve-grace)", file=out)
            deadline = time.monotonic() + serve_grace
            while time.monotonic() < deadline:
                time.sleep(min(0.2, serve_grace))
    finally:
        result_cache.configure(None)
        server.stop()
        uninstall_live()
        uninstall()
        if sink is not None:
            sink.close()
            print(f"stream: {sink.written} records -> {sink.path}",
                  file=out)
    if fail_on_alert and engine.firing():
        names = ", ".join(state.rule.name
                          for state in engine.firing())
        print(f"alerts still firing: {names}", file=out)
        return 1
    return 0
