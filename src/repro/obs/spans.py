"""Span tracing: nested begin/end intervals, exportable as Chrome traces.

Two time domains coexist in one trace:

* **host** spans measure real pipeline cost (the controller's
  sample -> evaluate -> fire -> apply stages) on the process clock;
* **sim** spans place query and plan-stage execution on the simulated
  clock, where durations are the modelled ones.

Both kinds collect into flat :class:`SpanRecord` lists; the Chrome
``trace_event`` exporter maps each domain to its own ``pid`` so Perfetto
and ``chrome://tracing`` render them as separate process tracks and never
mix the clocks on one row.

Host-side begin/end pairs nest per ``(track, tid)`` — unbalanced ``end``
calls raise, so a dropped span is a bug, not silent data loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import ReproError

#: track names -> Chrome pid; anything else gets pid 99
TRACK_PIDS = {"host": 1, "sim": 2}


@dataclass(frozen=True, slots=True)
class SpanRecord:
    """One completed interval on one track."""

    name: str
    start: float
    duration: float
    track: str = "host"
    tid: int = 0
    depth: int = 0
    args: dict[str, Any] = field(default_factory=dict)

    @property
    def end(self) -> float:
        """Interval end time (same clock as ``start``)."""
        return self.start + self.duration


class _OpenSpan:
    __slots__ = ("name", "start", "args")

    def __init__(self, name: str, start: float, args: dict | None):
        self.name = name
        self.start = start
        self.args = args


class _SpanContext:
    """Context-manager handle returned by :meth:`SpanTracer.span`."""

    __slots__ = ("tracer", "name", "tid", "args")

    def __init__(self, tracer: "SpanTracer", name: str, tid: int,
                 args: dict | None):
        self.tracer = tracer
        self.name = name
        self.tid = tid
        self.args = args

    def __enter__(self) -> "_SpanContext":
        self.tracer.begin(self.name, tid=self.tid, args=self.args)
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.tracer.end(tid=self.tid)


class SpanTracer:
    """Collects spans; host-side nesting driven by ``clock``.

    ``clock`` is any zero-argument callable returning seconds; the
    recorder wires in ``time.perf_counter`` so reproducibility-critical
    zones never import a host clock themselves.
    """

    enabled = True

    def __init__(self, clock=None):
        self.clock = clock if clock is not None else (lambda: 0.0)
        self._records: list[SpanRecord] = []
        self._open: dict[int, list[_OpenSpan]] = {}

    # -- host-time nested spans ----------------------------------------

    def span(self, name: str, tid: int = 0,
             args: dict | None = None) -> _SpanContext:
        """``with tracer.span("controller.fire"): ...``"""
        return _SpanContext(self, name, tid, args)

    def begin(self, name: str, tid: int = 0,
              args: dict | None = None) -> None:
        """Open a nested host-time span."""
        stack = self._open.setdefault(tid, [])
        stack.append(_OpenSpan(name, self.clock(), args))

    def end(self, tid: int = 0) -> SpanRecord:
        """Close the innermost open span on ``tid``."""
        stack = self._open.get(tid)
        if not stack:
            raise ReproError(f"end() with no open span on tid {tid}")
        top = stack.pop()
        record = SpanRecord(
            name=top.name, start=top.start,
            duration=max(self.clock() - top.start, 0.0),
            track="host", tid=tid, depth=len(stack),
            args=top.args or {})
        self._records.append(record)
        return record

    def open_depth(self, tid: int = 0) -> int:
        """How many spans are currently open on ``tid``."""
        return len(self._open.get(tid, ()))

    # -- sim-time complete spans ---------------------------------------

    def add_complete(self, name: str, start: float, duration: float,
                     track: str = "sim", tid: int = 0,
                     args: dict | None = None) -> None:
        """Record an already-measured interval (simulated time)."""
        if duration < 0:
            raise ReproError(f"span {name!r} has negative duration")
        self._records.append(SpanRecord(
            name=name, start=start, duration=duration, track=track,
            tid=tid, args=args or {}))

    def instant(self, name: str, time: float, track: str = "sim",
                tid: int = 0, args: dict | None = None) -> None:
        """Record a zero-duration marker event."""
        self._records.append(SpanRecord(
            name=name, start=time, duration=0.0, track=track, tid=tid,
            args=args or {}))

    # -- retrieval ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._records)

    def all(self) -> list[SpanRecord]:
        """Every completed span, in completion order."""
        return list(self._records)

    def of_track(self, track: str) -> list[SpanRecord]:
        """Completed spans of one time domain."""
        return [r for r in self._records if r.track == track]

    def clear(self) -> None:
        """Drop completed spans (open stacks are preserved)."""
        self._records.clear()


def chrome_trace_events(spans) -> list[dict]:
    """Render spans as Chrome ``trace_event`` dicts.

    Duration spans become ``ph: "X"`` complete events, zero-duration
    markers become ``ph: "i"`` instants; timestamps are microseconds.
    Each track maps to its own ``pid`` so host and simulated clocks stay
    on separate process rows.
    """
    events: list[dict] = []
    for span in spans:
        pid = TRACK_PIDS.get(span.track, 99)
        event: dict[str, Any] = {
            "name": span.name,
            "cat": span.track,
            "ts": span.start * 1e6,
            "pid": pid,
            "tid": span.tid,
        }
        if span.duration > 0:
            event["ph"] = "X"
            event["dur"] = span.duration * 1e6
        else:
            event["ph"] = "i"
            event["s"] = "t"
        if span.args:
            event["args"] = dict(span.args)
        events.append(event)
    return events


class _NullSpanContext:
    """Shared no-op span handle."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpanContext":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        return None


_NULL_CONTEXT = _NullSpanContext()


class NullSpanTracer:
    """No-op tracer: ``span()`` hands back one shared context manager."""

    enabled = False

    def span(self, name: str, tid: int = 0,
             args: dict | None = None) -> _NullSpanContext:
        return _NULL_CONTEXT

    def begin(self, name: str, tid: int = 0,
              args: dict | None = None) -> None:
        """Discard the span."""

    def end(self, tid: int = 0) -> None:
        """Discard the span."""

    def add_complete(self, name: str, start: float, duration: float,
                     track: str = "sim", tid: int = 0,
                     args: dict | None = None) -> None:
        """Discard the span."""

    def instant(self, name: str, time: float, track: str = "sim",
                tid: int = 0, args: dict | None = None) -> None:
        """Discard the marker."""

    def open_depth(self, tid: int = 0) -> int:
        return 0

    def __len__(self) -> int:
        return 0

    def all(self) -> list[SpanRecord]:
        return []

    def of_track(self, track: str) -> list[SpanRecord]:
        return []

    def clear(self) -> None:
        """Nothing to drop."""
