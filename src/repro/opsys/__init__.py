"""Simulated operating system: threads, scheduler, virtual memory, cpusets.

This package stands in for the Linux kernel facilities the paper relies on:

* the **CFS-style scheduler** with per-core run queues, periodic load
  balancing and task stealing (whose NUMA-obliviousness motivates the paper);
* the **node-local first-touch** memory policy and minor-fault accounting;
* **cpuset masks** (the cgroups role) through which the elastic mechanism
  hands cores to the OS;
* **mpstat-style load sampling** over the hardware counter bank.
"""

from .cpuset import CpuSet
from .inventory import DEFAULT_TENANT, CoreInventory, CoreLease
from .loadstats import LoadSample, LoadSampler
from .scheduler import Scheduler
from .system import OperatingSystem
from .thread import SimThread, ThreadState, WorkSource
from .vm import VirtualMemory
from .workitem import ListWorkSource, WorkItem

__all__ = [
    "WorkItem",
    "ListWorkSource",
    "SimThread",
    "ThreadState",
    "WorkSource",
    "CpuSet",
    "CoreInventory",
    "CoreLease",
    "DEFAULT_TENANT",
    "VirtualMemory",
    "Scheduler",
    "LoadSampler",
    "LoadSample",
    "OperatingSystem",
]
