"""Cpuset masks: the cgroups facility through which cores are handed out.

The elastic mechanism never talks to the scheduler directly; it edits a
:class:`CpuSet` (allocate core / release core) and the scheduler honours the
mask — exactly the paper's division of labour where the prototype drives
cgroups/cpuset and the unmodified OS does the thread mapping (§IV-A, Fig 1).

Listeners (the scheduler) are notified after every change so queued threads
can be evicted from released cores.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from ..errors import AllocationError


class CpuSet:
    """A mutable set of allowed core ids with change notification.

    Masks change rarely (controller ticks) but are *read* on every
    placement and balancing decision, so the set is shadowed by an int
    bitmask and a cached sorted tuple: membership is one bit test and
    ordered iteration allocates nothing.  Both caches are rebuilt only
    when the mask actually changes.
    """

    def __init__(self, n_cores: int, initial: Iterable[int] | None = None):
        if n_cores < 1:
            raise AllocationError("a cpuset needs at least one core")
        self.n_cores = n_cores
        if initial is None:
            allowed = set(range(n_cores))
        else:
            allowed = set(initial)
        self._check_cores(allowed)
        if not allowed:
            raise AllocationError("initial mask cannot be empty")
        self._allowed = allowed
        self._rebuild_caches()
        self._listeners: list[Callable[[set[int], set[int]], None]] = []

    def _rebuild_caches(self) -> None:
        self._sorted: tuple[int, ...] = tuple(sorted(self._allowed))
        self._mask = 0
        for core in self._sorted:
            self._mask |= 1 << core

    def _check_cores(self, cores: Iterable[int]) -> None:
        for core in cores:
            if not 0 <= core < self.n_cores:
                raise AllocationError(f"core {core} out of range")

    def subscribe(self,
                  listener: Callable[[set[int], set[int]], None]) -> None:
        """Register ``listener(added, removed)`` for mask changes."""
        self._listeners.append(listener)

    def _notify(self, added: set[int], removed: set[int]) -> None:
        if not added and not removed:
            return
        for listener in self._listeners:
            listener(added, removed)

    def is_allowed(self, core: int) -> bool:
        """Whether ``core`` is currently exposed to the OS."""
        return bool(self._mask >> core & 1)

    def allowed(self) -> frozenset[int]:
        """The current mask."""
        return frozenset(self._allowed)

    def allowed_mask(self) -> int:
        """The current mask as an int bitmask (bit ``c`` = core ``c``)."""
        return self._mask

    def allowed_tuple(self) -> tuple[int, ...]:
        """The current mask, sorted, as a shared immutable tuple.

        This is the zero-allocation read path: the tuple is rebuilt only
        on mask changes, so hot callers may iterate it directly (but must
        not hold it across a mask change they care about).
        """
        return self._sorted

    def allowed_sorted(self) -> list[int]:
        """The current mask as a sorted list (stable iteration order)."""
        return list(self._sorted)

    def __len__(self) -> int:
        return len(self._allowed)

    def __contains__(self, core: int) -> bool:
        return core in self._allowed

    def allow(self, core: int) -> None:
        """Add one core to the mask (mechanism 'allocates' it)."""
        self._check_cores((core,))
        if core in self._allowed:
            raise AllocationError(f"core {core} is already allocated")
        self._allowed.add(core)
        self._rebuild_caches()
        self._notify({core}, set())

    def disallow(self, core: int) -> None:
        """Remove one core from the mask (mechanism 'releases' it)."""
        if core not in self._allowed:
            raise AllocationError(f"core {core} is not allocated")
        if len(self._allowed) == 1:
            raise AllocationError("cannot release the last core")
        self._allowed.discard(core)
        self._rebuild_caches()
        self._notify(set(), {core})

    def set_mask(self, cores: Iterable[int]) -> None:
        """Replace the whole mask atomically."""
        new = set(cores)
        self._check_cores(new)
        if not new:
            raise AllocationError("mask cannot be empty")
        added = new - self._allowed
        removed = self._allowed - new
        self._allowed = new
        self._rebuild_caches()
        self._notify(added, removed)
