"""Core leases: per-tenant arbitration of one machine's cores.

The paper runs "one controller instance per DBMS" — but the seed
implementation let that single controller edit the machine-wide cpuset
directly, so a second governed engine on the same machine would clobber
the first one's mask.  The :class:`CoreInventory` closes that gap: cores
are *leased* per tenant, the cpuset a tenant's threads see is derived
from its leases, and the inventory arbitrates conflicting claims — two
concurrent controllers (say a Volcano engine and a NUMA-aware engine)
can now shrink and grow side by side without ever overlapping.

Semantics:

* every tenant owns a :class:`~repro.opsys.cpuset.CpuSet`; the *default*
  tenant (``"db"``) owns the legacy machine-wide mask, so single-tenant
  programs behave exactly as before;
* a tenant is **governed** once a controller seeds its mask
  (:meth:`CoreInventory.seed`); from then on its cpuset contents and its
  leases are the same set;
* leases are **exclusive**: :meth:`acquire` refuses a core leased to a
  different tenant (:class:`~repro.errors.LeaseError`);
* :meth:`release` refuses to drop a tenant below its ``min_cores``
  floor, independently of the controller's own ``t7`` guard.

The invariants (leases disjoint, union within the online cores, release
only what is held, ``min_cores`` respected) are stated as hypothesis
property tests in ``tests/test_props_inventory.py``.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass

from ..errors import LeaseError
from .cpuset import CpuSet

#: name of the tenant owning the legacy machine-wide cpuset
DEFAULT_TENANT = "db"


@dataclass(frozen=True, slots=True)
class CoreLease:
    """One core held by one tenant."""

    tenant: str
    core: int


@dataclass
class _TenantEntry:
    """Inventory bookkeeping for one tenant."""

    name: str
    cpuset: CpuSet
    min_cores: int = 1
    governed: bool = False


class CoreInventory:
    """Ownership ledger mapping cores to tenants."""

    def __init__(self, n_cores: int):
        if n_cores < 1:
            raise LeaseError("an inventory needs at least one core")
        self.n_cores = n_cores
        self._tenants: dict[str, _TenantEntry] = {}
        #: core id -> tenant name, for leased cores only
        self._owner: dict[int, str] = {}

    # ------------------------------------------------------------------
    # tenants
    # ------------------------------------------------------------------

    def adopt(self, tenant: str, cpuset: CpuSet,
              min_cores: int = 1) -> None:
        """Register ``tenant`` with its cpuset (no leases yet)."""
        if tenant in self._tenants:
            raise LeaseError(f"tenant {tenant!r} already registered")
        if cpuset.n_cores != self.n_cores:
            raise LeaseError("tenant cpuset size does not match the "
                             "inventory")
        if min_cores < 1:
            raise LeaseError("min_cores must be >= 1")
        self._tenants[tenant] = _TenantEntry(tenant, cpuset, min_cores)

    def tenants(self) -> list[str]:
        """Registered tenant names, in registration order."""
        return list(self._tenants)

    def cpuset_of(self, tenant: str) -> CpuSet:
        """The cpuset derived from ``tenant``'s leases."""
        return self._entry(tenant).cpuset

    def min_cores_of(self, tenant: str) -> int:
        """The release floor of ``tenant``."""
        return self._entry(tenant).min_cores

    def is_governed(self, tenant: str) -> bool:
        """Whether a controller has seeded ``tenant``'s mask."""
        return self._entry(tenant).governed

    def _entry(self, tenant: str) -> _TenantEntry:
        entry = self._tenants.get(tenant)
        if entry is None:
            raise LeaseError(f"unknown tenant {tenant!r}")
        return entry

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------

    def leases(self) -> list[CoreLease]:
        """Every lease, ordered by core id."""
        return [CoreLease(tenant=self._owner[core], core=core)
                for core in sorted(self._owner)]

    def mask_of(self, tenant: str) -> frozenset[int]:
        """Cores currently leased by ``tenant``."""
        self._entry(tenant)
        return frozenset(core for core, owner in self._owner.items()
                         if owner == tenant)

    def owner_of(self, core: int) -> str | None:
        """The tenant holding ``core``, or ``None`` when free."""
        return self._owner.get(core)

    def free_cores(self) -> frozenset[int]:
        """Cores leased by no tenant."""
        return frozenset(range(self.n_cores)) - set(self._owner)

    def unavailable_to(self, tenant: str) -> frozenset[int]:
        """Cores leased to *other* tenants (off-limits for planning)."""
        self._entry(tenant)
        return frozenset(core for core, owner in self._owner.items()
                         if owner != tenant)

    # ------------------------------------------------------------------
    # lease edits
    # ------------------------------------------------------------------

    def seed(self, tenant: str, cores: Iterable[int]) -> None:
        """Grant the initial lease set and apply it as one mask edit.

        This is the controller ``start()`` path: the tenant's cpuset is
        replaced atomically (one listener notification, exactly like the
        legacy ``set_mask``) and every core in it becomes a lease.
        """
        entry = self._entry(tenant)
        wanted = sorted(set(cores))
        for core in wanted:
            if not 0 <= core < self.n_cores:
                raise LeaseError(f"core {core} is not an online core")
            owner = self._owner.get(core)
            if owner is not None and owner != tenant:
                raise LeaseError(
                    f"core {core} is leased to tenant {owner!r}")
        if len(wanted) < entry.min_cores:
            raise LeaseError(
                f"initial lease set of {len(wanted)} cores is below "
                f"tenant {tenant!r}'s min_cores={entry.min_cores}")
        for core in sorted(self.mask_of(tenant)):
            del self._owner[core]
        for core in wanted:
            self._owner[core] = tenant
        entry.governed = True
        entry.cpuset.set_mask(wanted)

    def acquire(self, tenant: str, core: int) -> CoreLease:
        """Lease one free core to ``tenant`` and expose it in its mask."""
        entry = self._entry(tenant)
        if not 0 <= core < self.n_cores:
            raise LeaseError(f"core {core} is not an online core")
        owner = self._owner.get(core)
        if owner is not None:
            raise LeaseError(
                f"core {core} is already leased to tenant {owner!r}")
        self._owner[core] = tenant
        entry.cpuset.allow(core)
        return CoreLease(tenant=tenant, core=core)

    def release(self, tenant: str, core: int) -> None:
        """Return one of ``tenant``'s leased cores to the free pool."""
        entry = self._entry(tenant)
        if self._owner.get(core) != tenant:
            raise LeaseError(
                f"core {core} is not leased to tenant {tenant!r}")
        held = len(self.mask_of(tenant))
        if held <= entry.min_cores:
            raise LeaseError(
                f"tenant {tenant!r} holds {held} cores, at its "
                f"min_cores={entry.min_cores} floor")
        del self._owner[core]
        entry.cpuset.disallow(core)

    # ------------------------------------------------------------------
    # invariants
    # ------------------------------------------------------------------

    def check(self) -> None:
        """Assert the ledger's invariants (cheap; used by experiments).

        * leases are disjoint by construction (one owner per core) —
          what is verified here is the derived-mask agreement: every
          governed tenant's cpuset equals its lease set;
        * every lease names an online core.
        """
        for core, owner in self._owner.items():
            if not 0 <= core < self.n_cores:
                raise LeaseError(
                    f"lease of offline core {core} by {owner!r}")
        for entry in self._tenants.values():
            if not entry.governed:
                continue
            mask = self.mask_of(entry.name)
            if mask != entry.cpuset.allowed():
                raise LeaseError(
                    f"tenant {entry.name!r} cpuset "
                    f"{sorted(entry.cpuset.allowed())} disagrees with "
                    f"its leases {sorted(mask)}")
