"""mpstat-style CPU-load sampling over the hardware counter bank.

The controller's LONC definition uses ``u`` — the average load of the
*allocated* cores over a monitoring window (§IV-A).  :class:`LoadSampler`
owns the previous snapshot and produces :class:`LoadSample` values with
per-core busy and *useful* percentages.

Two utilisation flavours are reported:

``busy``
    wall-clock occupancy of the core (what raw mpstat prints; memory
    stalls count as busy).  This is the paper's ``u`` and the default
    CPU-load strategy's metric.
``useful``
    the retired-compute share, excluding memory stalls — the per-core
    analogue of utilisation inferred from IPC.  Exposed for the
    ``useful_load`` ablation strategy: it makes memory-bandwidth
    saturation visible to the controller, but it also under-allocates
    when demand is queued (stalled-but-busy cores look idle).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.counters import CounterSnapshot
from ..hardware.machine import Machine
from .cpuset import CpuSet


@dataclass(frozen=True)
class LoadSample:
    """One monitoring window's CPU-load picture (percentages, 0..100)."""

    time: float
    window: float
    per_core_busy: dict[int, float]
    per_core_useful: dict[int, float]
    allocated_cores: tuple[int, ...]

    @property
    def per_core(self) -> dict[int, float]:
        """Alias for the busy percentages (the mpstat view)."""
        return self.per_core_busy

    @property
    def average_allocated(self) -> float:
        """The paper's ``u``: mean busy load of the allocated cores."""
        return self._mean(self.per_core_busy, self.allocated_cores)

    @property
    def average_useful_allocated(self) -> float:
        """Mean retired-work share of the allocated cores."""
        return self._mean(self.per_core_useful, self.allocated_cores)

    @staticmethod
    def _mean(values: dict[int, float], cores) -> float:
        if not cores:
            return 0.0
        return sum(values.get(c, 0.0) for c in cores) / len(cores)

    def average_node(self, cores: list[int]) -> float:
        """Mean busy load of an arbitrary core group (e.g. one node)."""
        if not cores:
            return 0.0
        return self._mean(self.per_core_busy, cores)


class LoadSampler:
    """Stateful sampler: call :meth:`sample` once per monitoring tick."""

    def __init__(self, machine: Machine, cpuset: CpuSet):
        self.machine = machine
        self.cpuset = cpuset
        self._previous: CounterSnapshot | None = None
        #: the core list never changes for one machine; computed once so
        #: every monitoring tick skips the topology walk
        self._cores: tuple[int, ...] = tuple(machine.topology.all_cores())

    def prime(self, now: float) -> None:
        """Take the initial snapshot without producing a sample."""
        self._previous = self.machine.counters.snapshot(now)

    def sample(self, now: float) -> LoadSample:
        """Busy/useful percentages since the previous call."""
        current = self.machine.counters.snapshot(now)
        previous = self._previous
        self._previous = current
        cores = self._cores
        if previous is None or current.time <= previous.time:
            window = 0.0
            busy = {c: 0.0 for c in cores}
            useful = {c: 0.0 for c in cores}
        else:
            window = current.time - previous.time
            # the per-core deltas, read positionally off the two
            # snapshots' packed family arrays (same arithmetic as
            # CounterSnapshot.delta, minus two method calls per core
            # per tick).  Both snapshots come from one bank, so they
            # alias the same slot map; a slot past either array is a
            # counter born after that snapshot, read as 0.0.
            busy = self._percent(current, previous, "busy_time",
                                 cores, window)
            useful = self._percent(current, previous, "useful_time",
                                   cores, window)
        return LoadSample(
            time=now,
            window=window,
            per_core_busy=busy,
            per_core_useful=useful,
            allocated_cores=self.cpuset.allowed_tuple(),
        )

    @staticmethod
    def _percent(current: CounterSnapshot, previous: CounterSnapshot,
                 name: str, cores: tuple[int, ...],
                 window: float) -> dict[int, float]:
        """Per-core busy percentages for one time-counter family."""
        cur_family = current._families.get(name)
        if cur_family is None:
            return {c: 0.0 for c in cores}
        slots, values = cur_family
        n_cur = len(values)
        prev_family = previous._families.get(name)
        prev_values = () if prev_family is None else prev_family[1]
        n_prev = len(prev_values)
        out = {}
        for core in cores:
            pos = slots.get(core)
            if pos is None:
                out[core] = 0.0
                continue
            cur_v = values[pos] if pos < n_cur else 0.0
            prev_v = prev_values[pos] if pos < n_prev else 0.0
            out[core] = min(100.0, 100.0 * (cur_v - prev_v) / window)
        return out
