"""mpstat-style CPU-load sampling over the hardware counter bank.

The controller's LONC definition uses ``u`` — the average load of the
*allocated* cores over a monitoring window (§IV-A).  :class:`LoadSampler`
owns the previous snapshot and produces :class:`LoadSample` values with
per-core busy and *useful* percentages.

Two utilisation flavours are reported:

``busy``
    wall-clock occupancy of the core (what raw mpstat prints; memory
    stalls count as busy).  This is the paper's ``u`` and the default
    CPU-load strategy's metric.
``useful``
    the retired-compute share, excluding memory stalls — the per-core
    analogue of utilisation inferred from IPC.  Exposed for the
    ``useful_load`` ablation strategy: it makes memory-bandwidth
    saturation visible to the controller, but it also under-allocates
    when demand is queued (stalled-but-busy cores look idle).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..hardware.counters import CounterSnapshot
from ..hardware.machine import Machine
from .cpuset import CpuSet


@dataclass(frozen=True)
class LoadSample:
    """One monitoring window's CPU-load picture (percentages, 0..100)."""

    time: float
    window: float
    per_core_busy: dict[int, float]
    per_core_useful: dict[int, float]
    allocated_cores: tuple[int, ...]

    @property
    def per_core(self) -> dict[int, float]:
        """Alias for the busy percentages (the mpstat view)."""
        return self.per_core_busy

    @property
    def average_allocated(self) -> float:
        """The paper's ``u``: mean busy load of the allocated cores."""
        return self._mean(self.per_core_busy, self.allocated_cores)

    @property
    def average_useful_allocated(self) -> float:
        """Mean retired-work share of the allocated cores."""
        return self._mean(self.per_core_useful, self.allocated_cores)

    @staticmethod
    def _mean(values: dict[int, float], cores) -> float:
        if not cores:
            return 0.0
        return sum(values.get(c, 0.0) for c in cores) / len(cores)

    def average_node(self, cores: list[int]) -> float:
        """Mean busy load of an arbitrary core group (e.g. one node)."""
        if not cores:
            return 0.0
        return self._mean(self.per_core_busy, cores)


class LoadSampler:
    """Stateful sampler: call :meth:`sample` once per monitoring tick."""

    def __init__(self, machine: Machine, cpuset: CpuSet):
        self.machine = machine
        self.cpuset = cpuset
        self._previous: CounterSnapshot | None = None
        #: the core list never changes for one machine; computed once so
        #: every monitoring tick skips the topology walk
        self._cores: tuple[int, ...] = tuple(machine.topology.all_cores())

    def prime(self, now: float) -> None:
        """Take the initial snapshot without producing a sample."""
        self._previous = self.machine.counters.snapshot(now)

    def sample(self, now: float) -> LoadSample:
        """Busy/useful percentages since the previous call."""
        current = self.machine.counters.snapshot(now)
        previous = self._previous
        self._previous = current
        cores = self._cores
        if previous is None or current.time <= previous.time:
            window = 0.0
            busy = {c: 0.0 for c in cores}
            useful = {c: 0.0 for c in cores}
        else:
            window = current.time - previous.time
            # the per-core deltas, read straight off the snapshot value
            # maps (same arithmetic as CounterSnapshot.delta, minus two
            # method calls per core per tick)
            cur_get = current._values.get
            prev_get = previous._values.get
            busy = {}
            useful = {}
            for core in cores:
                busy[core] = min(
                    100.0,
                    100.0 * (cur_get(("busy_time", core), 0.0)
                             - prev_get(("busy_time", core), 0.0))
                    / window)
                useful[core] = min(
                    100.0,
                    100.0 * (cur_get(("useful_time", core), 0.0)
                             - prev_get(("useful_time", core), 0.0))
                    / window)
        return LoadSample(
            time=now,
            window=window,
            per_core_busy=busy,
            per_core_useful=useful,
            allocated_cores=self.cpuset.allowed_tuple(),
        )
