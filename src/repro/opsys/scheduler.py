"""CFS-style per-core scheduler with load balancing and task stealing.

This is the OS behaviour the paper studies (§II):

* per-core run queues; the head runs for one quantum, then round-robins;
* **wake-up spreading** — new and woken threads are placed on the least
  loaded *allowed* core anywhere in the machine, which is what scatters
  MonetDB's workers across NUMA nodes;
* a periodic **load balancer** that steals waiting tasks from the busiest
  core for the idlest one, oblivious to where the stolen thread's data
  lives (the "stolen tasks" metric of Fig 13d);
* **cpuset enforcement** — the elastic mechanism edits the mask and the
  scheduler evicts threads from released cores at their next chunk boundary.

Pinned threads (the NUMA-aware engine's workers) are placed on their pinned
core when it is allowed and are never stolen by the balancer.
"""

from __future__ import annotations

from collections import deque

from ..config import SchedulerConfig
from ..errors import SchedulerError
from ..hardware.machine import AccessResult, Machine
from ..obs.metrics import TIME_BUCKETS
from ..obs.recorder import NULL_RECORDER
from ..sim.engine import Simulator
from ..sim.tracing import (MigrationRecord, PlacementRecord, StageRecord,
                           TraceRecorder)
from .cpuset import CpuSet
from .inventory import DEFAULT_TENANT
from .thread import SimThread, ThreadState
from .vm import VirtualMemory
from .workitem import WorkItem


def _merge_access(a, b):
    """Combine two AccessResults from one chunk (reads then writes).

    Kept for API compatibility and tests; the scheduler's own chunk path
    (:meth:`Scheduler._execute`) sums the fields it needs directly and
    never allocates the merged object.
    """
    return AccessResult(
        stall_time=a.stall_time + b.stall_time,
        hits=a.hits + b.hits,
        misses=a.misses + b.misses,
        remote_misses=a.remote_misses + b.remote_misses,
        bytes_local=a.bytes_local + b.bytes_local,
        bytes_remote=a.bytes_remote + b.bytes_remote,
    )


class _TenantMaskListener:
    """Picklable cpuset subscriber forwarding mask edits to the scheduler.

    A lambda closing over the scheduler would do the same job but cannot
    pickle, and cpuset listeners sit inside every snapshot taken by
    :meth:`~repro.sim.Simulator.snapshot` (warm-start forking).
    """

    __slots__ = ("scheduler", "tenant")

    def __init__(self, scheduler: "Scheduler", tenant: str):
        self.scheduler = scheduler
        self.tenant = tenant

    def __call__(self, added: set[int], removed: set[int]) -> None:
        self.scheduler._on_mask_change(added, removed, self.tenant)


class Scheduler:
    """The simulated kernel scheduler for one machine."""

    def __init__(self, sim: Simulator, machine: Machine, vm: VirtualMemory,
                 cpuset: CpuSet, config: SchedulerConfig | None = None,
                 tracer: TraceRecorder | None = None, obs=None):
        self.sim = sim
        self.machine = machine
        self.vm = vm
        self.cpuset = cpuset
        self.config = config or SchedulerConfig()
        self.tracer = tracer if tracer is not None else TraceRecorder()
        # telemetry instruments are bound once; against a NullRecorder
        # every call below is a shared no-op (the hot-path contract
        # asserted by benchmarks/test_obs_overhead.py)
        self.obs = obs if obs is not None else NULL_RECORDER
        metrics = self.obs.metrics
        self._c_dispatches = metrics.counter("scheduler.dispatches")
        self._c_migrations = metrics.counter("scheduler.migrations")
        self._c_steals = metrics.counter("scheduler.steals")
        self._c_evictions = metrics.counter("scheduler.evictions")
        self._c_wakeups = metrics.counter("scheduler.wakeups")
        self._h_chunk = metrics.histogram("scheduler.chunk_seconds",
                                          TIME_BUCKETS)
        self._h_stage = metrics.histogram("db.stage_seconds",
                                          TIME_BUCKETS)
        n_cores = machine.topology.n_cores
        if cpuset.n_cores != n_cores:
            raise SchedulerError("cpuset size does not match the machine")
        self._queues: list[deque[SimThread]] = [deque()
                                                for _ in range(n_cores)]
        self._running: list[SimThread | None] = [None] * n_cores
        self._last_ran: list[SimThread | None] = [None] * n_cores
        #: incrementally maintained per-core load: queue length plus the
        #: running thread.  Kept exact at every queue/running mutation so
        #: placement and balancing never recount queues.
        self._load: list[int] = [0] * n_cores
        #: node id per core, precomputed (topology lookups validate the
        #: core id on every call; the scheduler's loops do not need that)
        self._node_of: list[int] = [
            machine.topology.node_of_core(c)
            for c in machine.topology.all_cores()]
        self._live_threads = 0
        # hot counter families resolved once (handles survive reset)
        counters = machine.counters
        self._f_tasks = counters.family("tasks")
        self._f_stolen = counters.family("stolen_tasks")
        self._f_useful = counters.family("useful_time")
        self._f_query_busy = counters.family("query_busy_time")
        self._f_query_ht = counters.family("query_ht_bytes")
        self._f_query_imc = counters.family("query_imc_bytes")
        self._f_query_l3 = counters.family("query_l3_miss")
        #: live (admitted, not yet exited) threads — the PID table the
        #: adaptive mode's priority queue walks
        self.threads: set[SimThread] = set()
        self._balance_scheduled = False
        #: the balancer's recycled timer cell (see Simulator.reschedule)
        self._balance_event = None
        # precompute per-page time estimate pieces for chunk sizing
        cfg = machine.config
        self._freq = cfg.frequency_hz
        lines = cfg.page_bytes / cfg.cache_line_bytes
        self._page_stream_time = (
            cfg.page_bytes / cfg.dram_bandwidth
            + lines / cfg.memory_parallelism * cfg.dram_latency)
        #: tenant name -> the cpuset confining that tenant's managed
        #: threads; the default tenant owns the legacy machine-wide mask
        self._tenant_masks: dict[str, CpuSet] = {DEFAULT_TENANT: cpuset}
        cpuset.subscribe(_TenantMaskListener(self, DEFAULT_TENANT))

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def spawn(self, thread: SimThread) -> None:
        """Admit a new thread and place it."""
        thread.require_state(ThreadState.NEW)
        thread.state = ThreadState.READY
        thread.spawned_at = self.sim.now
        self._live_threads += 1
        self.threads.add(thread)
        self._ensure_balancer()
        core = self._choose_core(thread)
        self._enqueue(thread, core)

    def wake(self, thread: SimThread) -> None:
        """Unblock a thread whose work source produced new items."""
        if thread.state is not ThreadState.BLOCKED:
            return
        thread.state = ThreadState.READY
        self._c_wakeups.inc()
        core = self._choose_core(thread)
        prev = thread.core
        if prev is not None and prev != core:
            self._note_migration(thread, prev, core, stolen=False)
        self._enqueue(thread, core)

    def live_threads(self, tenant: str | None = None) -> int:
        """Threads admitted and not yet exited (incl. blocked).

        With ``tenant`` given, only that tenant's threads are counted.
        """
        if tenant is None:
            return self._live_threads
        # commutative integer reduction: order cannot reach the result
        return sum(1 for t in self.threads  # verify: allow=flow:set-iteration
                   if t.tenant == tenant)

    def core_load(self, core: int) -> int:
        """Queue length of ``core`` including the running thread.  O(1)."""
        return self._load[core]

    def runnable_threads(self, tenant: str | None = None) -> int:
        """Ready or running threads across all cores.

        With ``tenant`` given, only that tenant's threads are counted.
        """
        if tenant is None:
            return sum(self._load)
        return (sum(1 for q in self._queues
                    for t in q if t.tenant == tenant)
                + sum(1 for t in self._running
                      if t is not None and t.tenant == tenant))

    # ------------------------------------------------------------------
    # tenant masks
    # ------------------------------------------------------------------

    def register_tenant_mask(self, tenant: str, cpuset: CpuSet) -> None:
        """Confine ``tenant``'s managed threads to ``cpuset``.

        The scheduler honours one mask per tenant exactly as it honours
        the legacy machine-wide one: placement, idle pulls, balancing
        and eviction all consult the mask of the *thread's* tenant.
        """
        if cpuset.n_cores != self.machine.topology.n_cores:
            raise SchedulerError("tenant mask size does not match "
                                 "the machine")
        if tenant in self._tenant_masks:
            raise SchedulerError(
                f"tenant {tenant!r} already has a mask")
        self._tenant_masks[tenant] = cpuset
        cpuset.subscribe(_TenantMaskListener(self, tenant))

    def _mask_for(self, thread: SimThread) -> CpuSet | None:
        """The cpuset confining ``thread`` (``None`` for unmanaged)."""
        if not thread.managed:
            return None
        return self._tenant_masks.get(thread.tenant, self.cpuset)

    def _may_run_on(self, thread: SimThread, core: int) -> bool:
        """Whether ``thread``'s tenant mask allows ``core``."""
        mask = self._mask_for(thread)
        return mask is None or mask.is_allowed(core)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def _choose_core(self, thread: SimThread) -> int:
        load = self._load
        node_of = self._node_of
        mask = self._mask_for(thread)
        if mask is not None:
            allowed = mask.allowed_tuple()
        else:
            # other applications are not confined by any DB cgroup
            allowed = self.machine.topology.all_cores()
        # historical quirk, kept deliberately: an *unmanaged* pinned
        # thread is still guarded by the default tenant's mask here
        guard = mask if mask is not None else self.cpuset
        if thread.pinned_core is not None:
            if guard.is_allowed(thread.pinned_core):
                return thread.pinned_core
            # pinned core was released: prefer a sibling on the same node
            node = node_of[thread.pinned_core]
            siblings = [c for c in allowed if node_of[c] == node]
            if siblings:
                allowed = siblings
        elif thread.pinned_node is not None:
            # soft NUMA affinity: least-loaded allowed core of the node —
            # but relaxed when the node is congested relative to the rest
            # of the mask ("less effort to maintain coherence of such
            # association" under a shrunken mask, paper §V-C1)
            siblings = [c for c in allowed
                        if node_of[c] == thread.pinned_node]
            if siblings:
                best_local = min(load[c] for c in siblings)
                best_global = min(load[c] for c in allowed)
                congested = (best_local
                             >= best_global
                             + self.config.imbalance_threshold)
                if not congested:
                    allowed = siblings
        elif not self.config.wakeup_spread and thread.core is not None:
            if guard.is_allowed(thread.core):
                return thread.core
        return min(allowed, key=lambda c: (load[c], c))

    def _enqueue(self, thread: SimThread, core: int) -> None:
        thread.core = core
        self._queues[core].append(thread)
        self._load[core] += 1
        self._dispatch(core)

    # ------------------------------------------------------------------
    # dispatch / execution
    # ------------------------------------------------------------------

    def _dispatch(self, core: int) -> None:
        if self._running[core] is not None:
            return
        queue = self._queues[core]
        load = self._load
        while queue:
            thread = queue.popleft()
            load[core] -= 1
            item = thread.acquire_item()
            if item is None:
                if thread.source.finished:
                    self._exit(thread)
                else:
                    self._block(thread)
                continue
            self._start_chunk(core, thread, item)
            return
        self._idle_pull(core)

    def _idle_pull(self, core: int) -> None:
        """New-idle balancing: a core going idle pulls a waiting thread
        from the busiest queue (CFS's newidle path).  Core-pinned threads
        never move; node-affined threads prefer their node but are pulled
        across nodes when the donor queue is long (the affinity
        relaxation under congestion).  A core outside a tenant's cpuset
        may not pull that tenant's threads (but may pull unmanaged
        ones — other applications)."""
        topo = self.machine.topology
        my_node = self._node_of[core]
        queues = self._queues
        donors = sorted((c for c in topo.all_cores() if c != core),
                        key=lambda c: -len(queues[c]))
        for donor in donors:
            queue = queues[donor]
            if not queue:
                break
            cross_node_ok = (len(queue)
                             >= self.config.imbalance_threshold)
            for thread in queue:
                if thread.pinned_core is not None:
                    continue
                if not self._may_run_on(thread, core):
                    continue
                if thread.pinned_node is not None:
                    same_node = thread.pinned_node == my_node
                    if not same_node and not cross_node_ok:
                        continue
                queue.remove(thread)
                self._load[donor] -= 1
                self._f_stolen.add(core, 1.0)
                self._note_migration(thread, donor, core, stolen=True)
                thread.core = core
                queues[core].append(thread)
                self._load[core] += 1
                self._dispatch(core)
                return

    def _start_chunk(self, core: int, thread: SimThread,
                     item: WorkItem) -> None:
        thread.state = ThreadState.RUNNING
        thread.core = core
        thread.dispatches += 1
        self._running[core] = thread
        self._load[core] += 1
        self._c_dispatches.inc()
        self._f_tasks.add(core, 1.0)
        if self._last_ran[core] is not thread:
            self._last_ran[core] = thread
            thread.pending_stall += self.config.context_switch_cost
        if item.started_at is None:
            item.started_at = self.sim.now
        if thread._last_placed_core != core:
            thread._last_placed_core = core
            self.tracer.emit(PlacementRecord(
                time=self.sim.now, thread_id=thread.tid, core_id=core,
                node_id=self._node_of[core]))
        elapsed, useful = self._execute(thread, item, core)
        self.sim.schedule(elapsed, self._chunk_done, core, thread, item,
                          elapsed, useful)

    def _execute(self, thread: SimThread, item: WorkItem,
                 core: int) -> tuple[float, float]:
        """Run up to one quantum of ``item`` on ``core``.

        Returns ``(elapsed, useful)`` — wall seconds consumed and the
        retired-compute share of them (memory stalls excluded).  The
        useful share feeds the ``useful_time`` counter, the basis of the
        controller's load metric.
        """
        machine = self.machine
        node = self._node_of[core]
        config = self.config
        budget = config.quantum
        minor_fault_cost = config.minor_fault_cost
        freq = self._freq
        touch = machine.touch
        touch_pages = self.vm.touch_pages
        now = self.sim.now
        elapsed = thread.pending_stall
        useful = 0.0
        thread.pending_stall = 0.0

        # WorkItem's done/remaining properties re-derive the same slot
        # arithmetic on every poll; the loop below reads the slots once
        # per slice instead (identical expressions, so identical floats)
        total_pages = item._total_pages
        total_cycles = item._total_cycles
        cpp = item.cycles / total_pages if total_pages else 0.0
        page_time_est = cpp / freq + self._page_stream_time
        # guarantee progress: even when carried-over stalls (migration,
        # context switch) exceed the quantum, the chunk still retires at
        # least one slice of work — otherwise two threads alternating on
        # one core could livelock on switch costs alone
        first_slice = True
        while first_slice or elapsed < budget:
            remaining_pages = total_pages - item._read_pos - item._write_pos
            if (remaining_pages == 0
                    and total_cycles - item._cycles_done <= 1e-6):
                break
            first_slice = False
            if remaining_pages:
                want = int((budget - elapsed) / page_time_est) + 1
                want = min(max(want, 1), remaining_pages)
                reads = item.take_reads(want)
                writes_from = len(reads)
                writes = (item.take_writes(want - writes_from)
                          if writes_from < want else ())
                # reads and writes stay as the work item's native page
                # ranges — the VM and machine layers resolve contiguous
                # ranges with array slices instead of per-page loops
                faults = touch_pages(reads, node, thread)
                if writes:
                    faults += touch_pages(writes, node, thread)
                n_batch = writes_from + len(writes)
                if writes:
                    # reads then writes, summed field-by-field — the same
                    # arithmetic _merge_access performs, minus the
                    # AccessResult allocation per chunk
                    read_result = (touch(now, core, reads)
                                   if writes_from else None)
                    write_result = machine.touch_write(now, core, writes)
                    if read_result is None:
                        stall = write_result.stall_time
                        misses = write_result.misses
                        bytes_local = write_result.bytes_local
                        bytes_remote = write_result.bytes_remote
                    else:
                        stall = (read_result.stall_time
                                 + write_result.stall_time)
                        misses = (read_result.misses
                                  + write_result.misses)
                        bytes_local = (read_result.bytes_local
                                       + write_result.bytes_local)
                        bytes_remote = (read_result.bytes_remote
                                        + write_result.bytes_remote)
                else:
                    result = touch(now, core, reads)
                    stall = result.stall_time
                    misses = result.misses
                    bytes_local = result.bytes_local
                    bytes_remote = result.bytes_remote
                done_cycles = item._cycles_done + n_batch * cpp
                item._cycles_done = (done_cycles
                                     if done_cycles < total_cycles
                                     else total_cycles)
                compute = n_batch * cpp / freq
                useful += compute
                elapsed += (stall + compute
                            + faults * minor_fault_cost)
                if item.query_name:
                    name = item.query_name
                    self._f_query_ht.add(name, bytes_remote)
                    self._f_query_imc.add(name, bytes_local + bytes_remote)
                    self._f_query_l3.add(name, misses)
            else:
                # trailing (or pure) compute
                need = (total_cycles - item._cycles_done) / freq
                run = min(need, max(budget - elapsed, budget * 0.25))
                if run <= 0:
                    break
                done_cycles = item._cycles_done + (run * freq + 1e-3)
                item._cycles_done = (done_cycles
                                     if done_cycles < total_cycles
                                     else total_cycles)
                useful += run
                elapsed += run
        # floats: make sure an item with no pages left ends cleanly
        if (total_pages - item._read_pos - item._write_pos == 0
                and total_cycles - item._cycles_done < 1.0):
            item._cycles_done = total_cycles
        return max(elapsed, 1e-9), useful

    def _chunk_done(self, core: int, thread: SimThread, item: WorkItem,
                    elapsed: float, useful: float) -> None:
        self.machine.account_busy(core, elapsed)
        self._f_useful.add(core, useful)
        self._h_chunk.observe(elapsed)
        if item.query_name:
            self._f_query_busy.add(item.query_name, elapsed)
        self._running[core] = None
        self._load[core] -= 1
        if item.done:
            thread.current_item = None
            if item.started_at is not None:
                stage_elapsed = self.sim.now - item.started_at
                self.tracer.emit(StageRecord(
                    time=self.sim.now, thread_id=thread.tid,
                    query_name=item.query_name, operator=item.label,
                    start_time=item.started_at,
                    elapsed=stage_elapsed, core_id=core))
                self._h_stage.observe(stage_elapsed)
                if self.obs.enabled:
                    self.obs.spans.add_complete(
                        f"stage:{item.label}", start=item.started_at,
                        duration=stage_elapsed, track="sim",
                        tid=thread.tid,
                        args={"query": item.query_name, "core": core})
            if item.on_complete is not None:
                item.on_complete(item)
        thread.state = ThreadState.READY
        target = core
        if not self._may_run_on(thread, core):
            target = self._choose_core(thread)
            self._note_migration(thread, core, target, stolen=False)
        self._queues[target].append(thread)
        self._load[target] += 1
        thread.core = target
        if target != core:
            self._dispatch(target)
        self._dispatch(core)

    # ------------------------------------------------------------------
    # blocking / exit
    # ------------------------------------------------------------------

    def _block(self, thread: SimThread) -> None:
        thread.state = ThreadState.BLOCKED
        thread.source.register_waiter(thread)

    def _exit(self, thread: SimThread) -> None:
        thread.state = ThreadState.DONE
        thread.exited_at = self.sim.now
        self._live_threads -= 1
        self.threads.discard(thread)
        if thread.on_exit is not None:
            thread.on_exit(thread)

    # ------------------------------------------------------------------
    # load balancing
    # ------------------------------------------------------------------

    def _ensure_balancer(self) -> None:
        if not self._balance_scheduled:
            self._balance_scheduled = True
            if self._balance_event is None:
                self._balance_event = self.sim.schedule(
                    self.config.balance_interval, self._balance)
            else:
                # re-arm the recycled timer cell: same ordering semantics
                # as a fresh schedule(), no Event allocation per tick
                self.sim.reschedule(self._balance_event,
                                    self.config.balance_interval)

    def _balance(self) -> None:
        self._balance_scheduled = False
        if self._live_threads == 0:
            return
        # one balancing domain per tenant mask (cgroups semantics: the
        # kernel balances within each cpuset); with a single tenant this
        # is exactly the legacy machine-wide pass
        node_of = self._node_of
        for mask in self._tenant_masks.values():
            allowed = mask.allowed_tuple()
            if len(allowed) <= 1:
                continue
            for _ in range(len(allowed)):
                if not self._steal_once(allowed):
                    break
            # second pass: node-affined threads may move within their node
            for node in self.machine.topology.all_nodes():
                siblings = [c for c in allowed
                            if node_of[c] == node]
                if len(siblings) > 1:
                    for _ in range(len(siblings)):
                        if not self._steal_within_node(node, siblings):
                            break
        self._ensure_balancer()

    def _steal_within_node(self, node: int,
                           siblings: list[int]) -> bool:
        donors = [c for c in siblings
                  if any(t.pinned_core is None for t in self._queues[c])]
        if not donors:
            return False
        busiest = max(donors, key=lambda c: (self.core_load(c), -c))
        idlest = min(siblings, key=lambda c: (self.core_load(c), c))
        gap = self.core_load(busiest) - self.core_load(idlest)
        if busiest == idlest or gap < self.config.imbalance_threshold:
            return False
        queue = self._queues[busiest]
        victim = None
        for candidate in reversed(queue):
            if (candidate.pinned_core is None
                    and self._may_run_on(candidate, idlest)):
                victim = candidate
                break
        if victim is None:
            return False
        queue.remove(victim)
        self._load[busiest] -= 1
        self._f_stolen.add(idlest, 1.0)
        self._note_migration(victim, busiest, idlest, stolen=True)
        victim.core = idlest
        self._queues[idlest].append(victim)
        self._load[idlest] += 1
        self._dispatch(idlest)
        return True

    def _steal_once(self, allowed) -> bool:
        donors = [c for c in allowed
                  if any(not t.is_pinned() for t in self._queues[c])]
        if not donors:
            return False
        busiest = max(donors, key=lambda c: (self.core_load(c), -c))
        idlest = min(allowed, key=lambda c: (self.core_load(c), c))
        gap = self.core_load(busiest) - self.core_load(idlest)
        if busiest == idlest or gap < self.config.imbalance_threshold:
            return False
        queue = self._queues[busiest]
        victim = None
        for candidate in reversed(queue):
            if (not candidate.is_pinned()
                    and self._may_run_on(candidate, idlest)):
                victim = candidate
                break
        if victim is None:
            return False
        queue.remove(victim)
        self._load[busiest] -= 1
        self._f_stolen.add(idlest, 1.0)
        self._note_migration(victim, busiest, idlest, stolen=True)
        victim.core = idlest
        self._queues[idlest].append(victim)
        self._load[idlest] += 1
        self._dispatch(idlest)
        return True

    # ------------------------------------------------------------------
    # cpuset enforcement
    # ------------------------------------------------------------------

    def _on_mask_change(self, added: set[int], removed: set[int],
                        tenant: str = DEFAULT_TENANT) -> None:
        for core in sorted(removed):
            queue = self._queues[core]
            # evict managed threads whose own tenant mask lost the core
            # (another tenant's threads queued here are unaffected)
            evicted = [t for t in queue
                       if t.managed and not self._may_run_on(t, core)]
            self._c_evictions.inc(len(evicted))
            for thread in evicted:
                queue.remove(thread)
                self._load[core] -= 1
            for thread in evicted:
                target = self._choose_core(thread)
                self._note_migration(thread, core, target, stolen=False)
                self._enqueue(thread, target)
        # newly added cores pull work immediately (new-idle balancing)
        for core in sorted(added):
            self._dispatch(core)
        if added and self._live_threads:
            self._ensure_balancer()

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------

    def _note_migration(self, thread: SimThread, src: int, dst: int,
                        stolen: bool) -> None:
        thread.migrations += 1
        thread.pending_stall += self.config.migration_cost
        self._c_migrations.inc()
        if stolen:
            self._c_steals.inc()
        self.machine.counters.increment("migrations", dst)
        self.tracer.emit(MigrationRecord(
            time=self.sim.now, thread_id=thread.tid, src_core=src,
            dst_core=dst, stolen=stolen))
