"""The OperatingSystem facade: one object wiring machine, VM and scheduler.

Database engines and workloads are written against this class rather than
the individual parts.  It owns the simulator clock, the cpuset (initially
exposing every core, like an unmanaged Linux box), and exposes convenience
constructors for threads.
"""

from __future__ import annotations

from collections.abc import Iterable

from ..config import MachineConfig, SchedulerConfig
from ..hardware.machine import Machine
from ..obs.live import LiveFlushTimer, live_bus
from ..obs.recorder import current_recorder
from ..sim.engine import Simulator
from ..sim.tracing import TraceRecorder
from .cpuset import CpuSet
from .inventory import DEFAULT_TENANT, CoreInventory
from .loadstats import LoadSampler
from .scheduler import Scheduler
from .thread import SimThread, WorkSource
from .vm import VirtualMemory


class _TenantCpusetTelemetry:
    """Picklable cpuset subscriber mirroring a tenant's mask telemetry.

    A local closure here would break snapshot pickling (warm-start
    forking captures cpuset listener lists).
    """

    __slots__ = ("cpuset", "c_added", "c_removed", "g_allowed")

    def __init__(self, cpuset: CpuSet, c_added, c_removed, g_allowed):
        self.cpuset = cpuset
        self.c_added = c_added
        self.c_removed = c_removed
        self.g_allowed = g_allowed

    def __call__(self, added: set[int], removed: set[int]) -> None:
        self.c_added.inc(len(added))
        self.c_removed.inc(len(removed))
        self.g_allowed.set(len(self.cpuset))


class OperatingSystem:
    """A booted simulated machine: hardware + kernel, ready to run threads."""

    def __init__(self, machine_config: MachineConfig | None = None,
                 scheduler_config: SchedulerConfig | None = None,
                 initial_mask: Iterable[int] | None = None,
                 tracer: TraceRecorder | None = None,
                 sim: Simulator | None = None,
                 obs=None):
        self.sim = sim if sim is not None else Simulator()
        self.machine = Machine(machine_config or MachineConfig())
        self.tracer = tracer if tracer is not None else TraceRecorder()
        #: telemetry recorder shared by every layer of this system;
        #: defaults to the installed one (or the null fast path)
        self.obs = obs if obs is not None else current_recorder()
        self.cpuset = CpuSet(self.machine.topology.n_cores, initial_mask)
        #: the core-lease ledger arbitrating between tenants; the default
        #: tenant owns the legacy machine-wide cpuset above
        self.inventory = CoreInventory(self.machine.topology.n_cores)
        self.inventory.adopt(DEFAULT_TENANT, self.cpuset)
        sched_cfg = scheduler_config or SchedulerConfig()
        self.vm = VirtualMemory(
            self.machine, numa_balancing=sched_cfg.numa_balancing,
            migration_streak=sched_cfg.numa_migration_streak)
        self.scheduler = Scheduler(self.sim, self.machine, self.vm,
                                   self.cpuset, sched_cfg, self.tracer,
                                   obs=self.obs)
        self.load_sampler = LoadSampler(self.machine, self.cpuset)
        metrics = self.obs.metrics
        self._c_sim_events = metrics.counter("sim.events")
        self._c_cores_added = metrics.counter("cpuset.cores_added")
        self._c_cores_removed = metrics.counter("cpuset.cores_removed")
        self._g_allowed = metrics.gauge("cpuset.allowed_cores")
        self._g_allowed.set(len(self.cpuset))
        self.cpuset.subscribe(self._obs_mask_change)
        #: lazily-armed live-telemetry flush timer (monitored runs only)
        self._live_timer: LiveFlushTimer | None = None

    def _obs_mask_change(self, added: set[int], removed: set[int]) -> None:
        self._c_cores_added.inc(len(added))
        self._c_cores_removed.inc(len(removed))
        self._g_allowed.set(len(self.cpuset))

    def create_tenant(self, name: str, min_cores: int = 1) -> CpuSet:
        """Register a new tenant with its own cpuset on this machine.

        The fresh cpuset starts machine-wide (like an unmanaged Linux
        box); a controller seeding the tenant's leases shrinks it.  The
        scheduler confines the tenant's managed threads to the mask, and
        per-tenant ``cpuset.<name>.*`` instruments mirror the default
        tenant's telemetry.
        """
        cpuset = CpuSet(self.machine.topology.n_cores)
        self.inventory.adopt(name, cpuset, min_cores=min_cores)
        self.scheduler.register_tenant_mask(name, cpuset)
        metrics = self.obs.metrics
        c_added = metrics.counter(f"cpuset.{name}.cores_added")
        c_removed = metrics.counter(f"cpuset.{name}.cores_removed")
        g_allowed = metrics.gauge(f"cpuset.{name}.allowed_cores")
        g_allowed.set(len(cpuset))
        cpuset.subscribe(_TenantCpusetTelemetry(cpuset, c_added,
                                                c_removed, g_allowed))
        return cpuset

    @property
    def now(self) -> float:
        """Current simulated time."""
        return self.sim.now

    @property
    def topology(self):
        """The machine topology (shortcut)."""
        return self.machine.topology

    @property
    def counters(self):
        """The hardware counter bank (shortcut)."""
        return self.machine.counters

    def spawn_thread(self, source: WorkSource, name: str = "",
                     process_id: int = 0, pinned_core: int | None = None,
                     pinned_node: int | None = None, managed: bool = True,
                     on_exit=None,
                     tenant: str = DEFAULT_TENANT) -> SimThread:
        """Create and admit a thread in one call."""
        thread = SimThread(source, name=name, process_id=process_id,
                           pinned_core=pinned_core,
                           pinned_node=pinned_node, managed=managed,
                           on_exit=on_exit, tenant=tenant)
        self.scheduler.spawn(thread)
        return thread

    def wake(self, thread: SimThread) -> None:
        """Unblock a thread (work sources call this when items appear)."""
        self.scheduler.wake(thread)

    def _arm_live_flush(self) -> None:
        """Arm the live-telemetry window timer when a bus is installed.

        The timer re-arms itself only while other events are pending, so
        it never keeps an otherwise-idle simulation alive; each ``run*``
        call re-arms it for the next burst of work.
        """
        if live_bus() is None:
            return
        if self._live_timer is None:
            self._live_timer = LiveFlushTimer(self)
        self._live_timer.arm()

    def run(self, until: float | None = None) -> int:
        """Drive the simulation; see :meth:`repro.sim.Simulator.run`."""
        self._arm_live_flush()
        delivered = self.sim.run(until=until)
        self._c_sim_events.inc(delivered)
        return delivered

    def run_until_idle(self) -> int:
        """Drive the simulation until no events remain."""
        self._arm_live_flush()
        delivered = self.sim.run_until_idle()
        self._c_sim_events.inc(delivered)
        return delivered
