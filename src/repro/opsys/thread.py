"""Simulated threads and the work-source protocol they consume from.

A :class:`SimThread` models one DBMS worker (or one pthread of the hand-coded
microbenchmark).  Threads do not carry code; they pull resumable
:class:`~repro.opsys.workitem.WorkItem` objects from a :class:`WorkSource`
and the scheduler executes those items in quantum-sized chunks.

Threads also accumulate the per-node page-residency histogram that the
paper's adaptive mode reads through its priority queue (§IV-B2): every
first-touch and remote-touch performed on behalf of the thread is counted
into :attr:`SimThread.pages_by_node`.
"""

from __future__ import annotations

import enum
from collections.abc import Callable
from typing import Protocol

from ..errors import SchedulerError
from ..sim.state import register_global_state
from .inventory import DEFAULT_TENANT
from .workitem import WorkItem


class ThreadState(enum.Enum):
    """Lifecycle of a simulated thread."""

    NEW = "new"
    READY = "ready"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


class WorkSource(Protocol):
    """Where a thread gets its next work item.

    ``next_item`` returns ``None`` when nothing is available right now; the
    scheduler then exits the thread if ``finished`` is true, otherwise blocks
    it after calling ``register_waiter`` (the source must wake it through the
    scheduler when work appears).
    """

    def next_item(self, thread: "SimThread") -> WorkItem | None: ...

    @property
    def finished(self) -> bool: ...

    def register_waiter(self, thread: "SimThread") -> None: ...


class SimThread:
    """One schedulable worker."""

    _next_id = 1

    def __init__(self, source: WorkSource, name: str = "",
                 process_id: int = 0,
                 pinned_core: int | None = None,
                 pinned_node: int | None = None,
                 managed: bool = True,
                 on_exit: Callable[["SimThread"], None] | None = None,
                 tenant: str = DEFAULT_TENANT):
        self.tid = SimThread._next_id
        SimThread._next_id += 1
        self.name = name or f"T{self.tid}"
        self.process_id = process_id
        self.source = source
        self.pinned_core = pinned_core
        #: soft NUMA affinity: float among the node's cores (SQLOS style)
        self.pinned_node = pinned_node
        #: managed threads live inside the database cgroup and obey the
        #: elastic mechanism's cpuset; unmanaged threads (other
        #: applications sharing the machine, the paper's mixed OLAP/OLTP
        #: future-work scenario) may run on any core
        self.managed = managed
        #: which tenant's cgroup (cpuset) confines the thread; only
        #: meaningful for managed threads
        self.tenant = tenant
        self.on_exit = on_exit
        self.state = ThreadState.NEW
        #: core currently hosting the thread (queue or execution)
        self.core: int | None = None
        self.current_item: WorkItem | None = None
        #: address-space residency histogram, node -> page count
        self.pages_by_node: dict[int, int] = {}
        self.migrations = 0
        self.dispatches = 0
        self.spawned_at: float | None = None
        self.exited_at: float | None = None
        #: one-shot stall charged at the next chunk (migration cost)
        self.pending_stall = 0.0
        #: last core a PlacementRecord was emitted for (trace dedup)
        self._last_placed_core: int | None = None

    def note_pages(self, node: int, count: int) -> None:
        """Record that ``count`` pages of this thread's footprint live on
        ``node`` (fed by the VM layer; consumed by the adaptive mode)."""
        self.pages_by_node[node] = self.pages_by_node.get(node, 0) + count

    def acquire_item(self) -> WorkItem | None:
        """Return the in-progress item or pull a fresh one from the source."""
        if self.current_item is not None and not self.current_item.done:
            return self.current_item
        self.current_item = self.source.next_item(self)
        return self.current_item

    def is_pinned(self) -> bool:
        """Whether the thread carries any affinity (core- or node-level);
        pinned threads are never moved by the load balancer."""
        return self.pinned_core is not None or self.pinned_node is not None

    def require_state(self, *allowed: ThreadState) -> None:
        """Assert the thread is in one of ``allowed`` states."""
        if self.state not in allowed:
            raise SchedulerError(
                f"{self.name} in state {self.state.value}, "
                f"expected one of {[s.value for s in allowed]}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<SimThread {self.name} state={self.state.value} "
                f"core={self.core}>")


def reset_thread_ids() -> None:
    """Reset the global thread id counter (between experiments, so trace
    thread ids are stable and runs remain comparable)."""
    SimThread._next_id = 1


def _get_next_thread_id() -> int:
    return SimThread._next_id


def _set_next_thread_id(value: int) -> None:
    SimThread._next_id = value


# the id counter lives outside any object graph, so snapshots record and
# reinstate it through the sim layer's global-state registry — a forked
# run hands out the same thread ids (and trace bytes) as a cold one
register_global_state("opsys.thread.next_id",
                      _get_next_thread_id, _set_next_thread_id)
