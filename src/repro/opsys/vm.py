"""Virtual-memory layer: first-touch placement and minor-fault accounting.

The paper leans on two kernel behaviours (§II-A/B):

* **first touch** — the node-local policy places a page on the node of the
  core that touches it first, raising a *minor page fault*;
* **remote access** — when a thread on a *different* node later maps the same
  page, another minor fault is raised and the data moves over the
  interconnect; the paper uses the minor-fault rate as its data-movement
  signal (Fig 4b).

This module implements both, and feeds each thread's per-node residency
histogram (the adaptive mode's raw material).
"""

from __future__ import annotations

from collections.abc import Sequence

from ..hardware.machine import Machine
from ..hardware.memory import UNPLACED
from .thread import SimThread


class VirtualMemory:
    """First-touch policy and fault counters on top of the machine.

    When ``numa_balancing`` is enabled (Linux AutoNUMA), pages that are
    accessed from the same remote node several batches in a row are
    migrated to that node; the mover pays the interconnect transfer and
    a kernel cost, and the page's old cache residency is invalidated.
    """

    def __init__(self, machine: Machine, numa_balancing: bool = False,
                 migration_streak: int = 3):
        self.machine = machine
        self.counters = machine.counters
        self.numa_balancing = numa_balancing
        self.migration_streak = migration_streak
        # page -> bitmask of nodes that have already mapped it
        self._mapped_by: dict[int, int] = {}
        # AutoNUMA bookkeeping: page -> (last remote accessor, streak)
        self._remote_streak: dict[int, tuple[int, int]] = {}

    def touch_pages(self, pages: Sequence[int], node: int,
                    thread: SimThread | None = None) -> int:
        """Prepare ``pages`` for access from ``node``.

        Unplaced pages are first-touched (placed on ``node``); already-placed
        pages seen from a new node raise a remote-access minor fault.  The
        number of minor faults raised is returned and counted per node.
        """
        memory = self.machine.memory
        mapped_by = self._mapped_by
        mapped_get = mapped_by.get
        # the per-page home probe is the hottest dict read in the system;
        # go straight at the home map (never rebound by MemorySystem)
        home_get = memory._home.get
        mask = 1 << node
        faults = 0
        to_place: list[int] = []
        for page in pages:
            seen = mapped_get(page, 0)
            if seen & mask:
                continue
            mapped_by[page] = seen | mask
            faults += 1
            if home_get(page, UNPLACED) == UNPLACED:
                to_place.append(page)
        if to_place:
            # first-touch placements flush in one batch (only first
            # occurrences queue, so the batch is duplicate-free)
            memory.place_batch(to_place, node)
        if thread is not None:
            # the thread's per-node residency histogram (adaptive mode's
            # priority-queue input), read after the flush so pages
            # first-touched above are already counted on ``node`` —
            # exactly what the place-per-page implementation saw
            histogram: dict[int, int] = {}
            hist_get = histogram.get
            for page in pages:
                home = home_get(page, UNPLACED)
                if home >= 0:
                    histogram[home] = hist_get(home, 0) + 1
            for home, count in histogram.items():
                thread.note_pages(home, count)
        if faults:
            self.counters.add("minor_faults", node, faults)
        if self.numa_balancing:
            self._autonuma(pages, node)
        return faults

    def _autonuma(self, pages: Sequence[int], node: int) -> None:
        """AutoNUMA: migrate pages hot on a remote node toward it."""
        memory = self.machine.memory
        streaks = self._remote_streak
        for page in pages:
            home = memory.home(page)
            if home == node:
                streaks.pop(page, None)
                continue
            last, streak = streaks.get(page, (node, 0))
            streak = streak + 1 if last == node else 1
            if streak >= self.migration_streak:
                self.migrate_page(page, node)
                streaks.pop(page, None)
            else:
                streaks[page] = (node, streak)

    def migrate_page(self, page: int, node: int) -> None:
        """Move one page to ``node``: re-home it, invalidate caches,
        count the traffic and the migration."""
        memory = self.machine.memory
        old_home = memory.home(page)
        if old_home == node:
            return
        memory.free([page])
        memory.place(page, node)
        # the page's contents cross the fabric once (the kernel moves it
        # in the background, so no requester stall is charged)
        self.counters.add("ht_tx_bytes", old_home, memory.page_bytes)
        for cache in self.machine.caches:
            cache.invalidate([page])
        self.counters.increment("numa_page_migrations", node)
        # remote mappings are stale after the move
        self._mapped_by[page] = 1 << node

    def forget(self, pages: Sequence[int]) -> None:
        """Drop mapping state and free the pages (intermediates released)."""
        for page in pages:
            self._mapped_by.pop(page, None)
        self.machine.memory.free(pages)

    def nodes_mapping(self, page: int) -> list[int]:
        """Which nodes have mapped ``page`` so far."""
        seen = self._mapped_by.get(page, 0)
        return [n for n in self.machine.topology.all_nodes()
                if seen & (1 << n)]

    def total_minor_faults(self) -> float:
        """Cumulative minor faults across all nodes."""
        return self.counters.total("minor_faults")
