"""Virtual-memory layer: first-touch placement and minor-fault accounting.

The paper leans on two kernel behaviours (§II-A/B):

* **first touch** — the node-local policy places a page on the node of the
  core that touches it first, raising a *minor page fault*;
* **remote access** — when a thread on a *different* node later maps the same
  page, another minor fault is raised and the data moves over the
  interconnect; the paper uses the minor-fault rate as its data-movement
  signal (Fig 4b).

This module implements both, and feeds each thread's per-node residency
histogram (the adaptive mode's raw material).

The per-page "which nodes mapped this" state is a dense ``bytearray``
bitmask indexed by page id (bit ``n`` = node ``n``), mirroring the dense
home map in :mod:`repro.hardware.memory`.  The hot
:meth:`VirtualMemory.touch_pages` call — one per execution chunk —
receives contiguous page ranges from the scheduler; fault detection runs
as one ``bytes.translate`` + ``count`` over the bitmask slice, and the
common uniform-home batches resolve placement and the residency
histogram in O(1).  Irregular inputs take the per-page path with
identical semantics.
"""

from __future__ import annotations

from collections.abc import Sequence

from ..errors import HardwareError
from ..hardware.machine import Machine
from ..hardware.memory import (UNPLACED, UNPLACED_PATTERN as
                               _UNPLACED_PATTERN, home_run)
from ..pages import PageSegments, VECTOR_MIN_PAGES
from .thread import SimThread


class VirtualMemory:
    """First-touch policy and fault counters on top of the machine.

    When ``numa_balancing`` is enabled (Linux AutoNUMA), pages that are
    accessed from the same remote node several batches in a row are
    migrated to that node; the mover pays the interconnect transfer and
    a kernel cost, and the page's old cache residency is invalidated.
    """

    def __init__(self, machine: Machine, numa_balancing: bool = False,
                 migration_streak: int = 3):
        self.machine = machine
        self.counters = machine.counters
        self._f_minor = machine.counters.family("minor_faults")
        self.numa_balancing = numa_balancing
        self.migration_streak = migration_streak
        # page -> bitmask of nodes that have already mapped it, dense
        # by page id (grown on demand to cover the allocated space)
        self._mapped = bytearray(1024)
        # per-node byte-translation tables, built lazily: _seen_tables
        # maps a bitmask byte to 1 when the node's bit is set (so
        # translate+count counts already-mapped pages in C), _set_tables
        # maps it to the same byte with the node's bit ored in
        self._seen_tables: dict[int, bytes] = {}
        self._set_tables: dict[int, bytes] = {}
        # AutoNUMA bookkeeping: page -> (last remote accessor, streak)
        self._remote_streak: dict[int, tuple[int, int]] = {}

    def _mapped_span(self, stop: int) -> bytearray:
        """The mapping bitmask, grown to cover page ids below ``stop``."""
        mapped = self._mapped
        if stop > len(mapped):
            capacity = len(mapped)
            while capacity < stop:
                capacity *= 2
            mapped.extend(bytes(capacity - len(mapped)))
        return mapped

    def _tables(self, node: int) -> tuple[bytes, bytes]:
        """The (seen-probe, bit-set) translation tables for ``node``."""
        seen = self._seen_tables.get(node)
        if seen is None:
            mask = 1 << node
            seen = bytes(1 if b & mask else 0 for b in range(256))
            self._seen_tables[node] = seen
            self._set_tables[node] = bytes(b | mask for b in range(256))
        return seen, self._set_tables[node]

    def touch_pages(self, pages: Sequence[int], node: int,
                    thread: SimThread | None = None) -> int:
        """Prepare ``pages`` for access from ``node``.

        Unplaced pages are first-touched (placed on ``node``); already-placed
        pages seen from a new node raise a remote-access minor fault.  The
        number of minor faults raised is returned and counted per node.
        """
        memory = self.machine.memory
        if (type(pages) is range and pages.step == 1
                and len(pages) >= VECTOR_MIN_PAGES
                and 0 <= pages.start
                and pages.stop <= memory._next_page
                and 0 <= node < self.machine.topology.n_sockets):
            faults = self._touch_range(pages, node, thread, memory)
        elif (type(pages) is PageSegments
                and len(pages) >= VECTOR_MIN_PAGES
                and 0 <= node < self.machine.topology.n_sockets
                and all(type(run) is range and run.step == 1 and len(run)
                        and 0 <= run.start
                        and run.stop <= memory._next_page
                        for run in pages._segments)):
            # piecewise-contiguous footprint: each run takes the bulk
            # path on its own (mapping state commits run by run, so a
            # page shared between runs still faults at most once)
            faults = 0
            for run in pages._segments:
                faults += self._touch_range(run, node, thread, memory)
        else:
            faults = self._touch_each(pages, node, thread, memory)
        if faults:
            self._f_minor.add(node, faults)
        if self.numa_balancing:
            self._autonuma(pages, node)
        return faults

    def _touch_range(self, pages: range, node: int,
                     thread: SimThread | None, memory) -> int:
        """Bulk path for one contiguous allocated range.

        The overwhelmingly common batches — a cold range first-touched in
        one piece, or a warm range re-streamed from any node — have a
        *uniform* home-map run, detected with one ``bytes`` comparison.
        Those resolve with no per-page work at all; mixed-home ranges
        fall back to the per-page loop unchanged.
        """
        start, stop = pages.start, pages.stop
        n = stop - start
        mapped = self._mapped_span(stop)
        segment = bytes(mapped[start:stop])
        seen_tbl, set_tbl = self._tables(node)
        faults = n - segment.translate(seen_tbl).count(1)
        home_arr = memory._home
        span_bytes = home_arr[start:stop].tobytes()
        if span_bytes != span_bytes[:2] * n:
            # mixed homes: per-page semantics, minus the double count
            # (the caller adds the returned faults to the counter)
            return self._touch_each(pages, node, thread, memory)
        if faults:
            if span_bytes[:2] == _UNPLACED_PATTERN:
                # uniform-unplaced implies nothing mapped it yet: the
                # whole range first-touches onto ``node`` in one store
                if (memory._pages_per_node[node] + n
                        > memory.bank_pages):
                    raise HardwareError(
                        f"memory bank of node {node} is full")
                home_arr[start:stop] = home_run(node, n)
                memory._pages_per_node[node] += n
            mapped[start:stop] = segment.translate(set_tbl)
            if thread is not None:
                thread.note_pages(home_arr[start], n)
            return faults
        if thread is not None and span_bytes[:2] != _UNPLACED_PATTERN:
            # warm uniform batch: the residency histogram is one entry
            thread.note_pages(home_arr[start], n)
        return faults

    def _touch_each(self, pages: Sequence[int], node: int,
                    thread: SimThread | None, memory) -> int:
        """Per-page path for arbitrary page sequences.

        One pass: fault detection and the residency histogram share the
        loop.  A page queued for first-touch placement is counted under
        ``node`` directly — that is the home :meth:`place_batch` assigns
        it right after the loop — and a mapped page always has a home
        (placement happens on the very first touch), so reading homes
        mid-batch equals reading them after the batch commits.
        """
        top = max(pages, default=-1) + 1
        mapped = self._mapped_span(max(top, memory._next_page))
        n_mapped = len(mapped)
        home_arr = memory._home
        next_page = memory._next_page
        mask = 1 << node
        faults = 0
        to_place: list[int] = []
        histogram: dict[int, int] = {}
        hist_get = histogram.get
        count_pages = thread is not None
        for page in pages:
            if 0 <= page < next_page:
                # allocated page: ``mapped`` covers it (grown above), so
                # the bitmask index needs no second bounds check
                seen = mapped[page]
                if not seen & mask:
                    mapped[page] = seen | mask
                    faults += 1
                    if home_arr[page] == UNPLACED:
                        to_place.append(page)
                if count_pages:
                    home = home_arr[page]
                    if home == UNPLACED:
                        # queued above (or by an earlier occurrence in
                        # this batch): lands on ``node`` at the flush
                        home = node
                    histogram[home] = hist_get(home, 0) + 1
            else:
                # never-allocated id: still raises a fault and queues,
                # so place_batch rejects it exactly as place() would
                in_range = 0 <= page < n_mapped
                seen = mapped[page] if in_range else 0
                if not seen & mask:
                    if in_range:
                        mapped[page] = seen | mask
                    faults += 1
                    to_place.append(page)
        if to_place:
            # first-touch placements flush in one batch (only first
            # occurrences queue, so the batch is duplicate-free)
            memory.place_batch(to_place, node)
        for home, count in histogram.items():
            thread.note_pages(home, count)
        return faults

    def _autonuma(self, pages: Sequence[int], node: int) -> None:
        """AutoNUMA: migrate pages hot on a remote node toward it."""
        memory = self.machine.memory
        streaks = self._remote_streak
        for page in pages:
            home = memory.home(page)
            if home == node:
                streaks.pop(page, None)
                continue
            last, streak = streaks.get(page, (node, 0))
            streak = streak + 1 if last == node else 1
            if streak >= self.migration_streak:
                self.migrate_page(page, node)
                streaks.pop(page, None)
            else:
                streaks[page] = (node, streak)

    def migrate_page(self, page: int, node: int) -> None:
        """Move one page to ``node``: re-home it, invalidate caches,
        count the traffic and the migration."""
        memory = self.machine.memory
        old_home = memory.home(page)
        if old_home == node:
            return
        memory.free([page])
        memory.place(page, node)
        # the page's contents cross the fabric once (the kernel moves it
        # in the background, so no requester stall is charged)
        self.counters.add("ht_tx_bytes", old_home, memory.page_bytes)
        for cache in self.machine.caches:
            cache.invalidate([page])
        self.counters.increment("numa_page_migrations", node)
        # remote mappings are stale after the move
        self._mapped_span(page + 1)[page] = 1 << node

    def forget(self, pages: Sequence[int]) -> None:
        """Drop mapping state and free the pages (intermediates released)."""
        if type(pages) is PageSegments:
            for run in pages._segments:
                self.forget(run)
            return
        if type(pages) is range and pages.step == 1 and len(pages):
            stop = min(pages.stop, len(self._mapped))
            begin = max(pages.start, 0)
            if begin < stop:
                self._mapped[begin:stop] = bytes(stop - begin)
        else:
            mapped = self._mapped
            n = len(mapped)
            for page in pages:
                if 0 <= page < n:
                    mapped[page] = 0
        self.machine.memory.free(pages)

    def nodes_mapping(self, page: int) -> list[int]:
        """Which nodes have mapped ``page`` so far."""
        seen = (self._mapped[page]
                if 0 <= page < len(self._mapped) else 0)
        return [n for n in self.machine.topology.all_nodes()
                if seen & (1 << n)]

    def total_minor_faults(self) -> float:
        """Cumulative minor faults across all nodes."""
        return self.counters.total("minor_faults")
