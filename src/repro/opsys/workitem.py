"""Work items: the unit of database work a thread executes.

A :class:`WorkItem` is one operator partition — e.g. "thetasubselect over
pages 120..143 of ``l_quantity``".  It carries:

* ``reads``: the input page footprint, streamed in order;
* ``writes``: output pages to materialise (first-touched on the node of the
  core that executes them — this is how intermediates end up scattered or
  clustered depending on thread placement);
* ``cycles``: total compute cost, spread uniformly across pages (plus an
  optional fixed startup cost).

Items are resumable: the scheduler executes them in quantum-sized chunks and
tracks progress inside the item.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Sequence

from ..errors import SchedulerError
from ..pages import PageSegments  # noqa: F401  (re-export: moved to repro.pages)


class WorkItem:
    """A resumable operator partition."""

    __slots__ = (
        "label", "reads", "writes", "cycles", "fixed_cycles", "query_name",
        "on_complete", "_read_pos", "_write_pos", "_cycles_done",
        "started_at", "extra_stall", "_total_pages", "_total_cycles",
    )

    def __init__(self, label: str,
                 reads: Sequence[int] = (),
                 writes: Sequence[int] = (),
                 cycles: float = 0.0,
                 fixed_cycles: float = 0.0,
                 query_name: str = "",
                 on_complete: Callable[["WorkItem"], None] | None = None):
        if cycles < 0 or fixed_cycles < 0:
            raise SchedulerError("work cycles cannot be negative")
        self.label = label
        self.reads = reads
        self.writes = writes
        self.cycles = float(cycles)
        self.fixed_cycles = float(fixed_cycles)
        self.query_name = query_name
        self.on_complete = on_complete
        self._read_pos = 0
        self._write_pos = 0
        self._cycles_done = 0.0
        # page footprint and cycle budget are fixed at construction; the
        # scheduler polls remaining_pages/done every execution slice, so
        # both totals are cached rather than recomputed per poll
        self._total_pages = len(reads) + len(writes)
        self._total_cycles = self.cycles + self.fixed_cycles
        #: set by the scheduler on first dispatch (for Tomograph records)
        self.started_at: float | None = None
        #: one-shot extra stall charged on next chunk (migration cost)
        self.extra_stall = 0.0

    @property
    def total_pages(self) -> int:
        """Input plus output page count."""
        return self._total_pages

    @property
    def total_cycles(self) -> float:
        """All compute cycles the item will retire."""
        return self._total_cycles

    @property
    def remaining_pages(self) -> int:
        """Pages not yet streamed."""
        return self._total_pages - self._read_pos - self._write_pos

    @property
    def remaining_cycles(self) -> float:
        """Cycles not yet retired."""
        return self._total_cycles - self._cycles_done

    @property
    def done(self) -> bool:
        """Whether the item has fully executed."""
        return (self._total_pages - self._read_pos - self._write_pos == 0
                and self._total_cycles - self._cycles_done <= 1e-6)

    def cycles_per_page(self) -> float:
        """Variable compute cost attributed to each page."""
        if self._total_pages == 0:
            return 0.0
        return self.cycles / self._total_pages

    def take_reads(self, n: int) -> Sequence[int]:
        """Consume up to ``n`` unread input pages."""
        start = self._read_pos
        end = min(start + n, len(self.reads))
        self._read_pos = end
        return self.reads[start:end]

    def take_writes(self, n: int) -> Sequence[int]:
        """Consume up to ``n`` unwritten output pages."""
        start = self._write_pos
        end = min(start + n, len(self.writes))
        self._write_pos = end
        return self.writes[start:end]

    def retire_cycles(self, cycles: float) -> None:
        """Mark compute progress (clamped to what remains)."""
        self._cycles_done = min(self._cycles_done + cycles,
                                self.total_cycles)

    def force_complete_cycles(self) -> None:
        """Retire whatever compute remains (used when pages finish first)."""
        self._cycles_done = self.total_cycles

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<WorkItem {self.label!r} pages={self.total_pages} "
                f"remaining={self.remaining_pages}>")


class ListWorkSource:
    """The simplest work source: a fixed queue of items per consumer.

    Used by the microbenchmark (each pthread owns its slice) and by unit
    tests.  The Volcano executor uses the richer staged source in
    :mod:`repro.db.volcano`.
    """

    def __init__(self, items: Sequence[WorkItem] = ()):
        self._queue: deque[WorkItem] = deque(items)
        self._closed = True

    def push(self, item: WorkItem) -> None:
        """Append one more item."""
        self._queue.append(item)

    def next_item(self, thread) -> WorkItem | None:
        """Hand the next item to ``thread`` (thread identity is ignored)."""
        if self._queue:
            return self._queue.popleft()
        return None

    @property
    def finished(self) -> bool:
        """A list source is finished as soon as it is empty."""
        return not self._queue

    def register_waiter(self, thread) -> None:
        """List sources never block consumers; registering is an error."""
        raise SchedulerError(
            "ListWorkSource is exhausted; thread should exit, not wait")
