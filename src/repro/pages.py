"""Page-footprint sequences shared by the DB, OS and hardware layers.

:class:`PageSegments` lives in its own dependency-free module because it
is the *interface type* between layers: query compilation
(:mod:`repro.db.cost`) produces it, work items carry it, and both the
virtual-memory layer and the machine's cache model pattern-match on it
to stream each contiguous run with their array fast paths.  Placing it
under :mod:`repro.opsys` or :mod:`repro.db` would force the hardware
layer to import upward.
"""

from __future__ import annotations

from .errors import SchedulerError

#: batches below this size skip the vectorised VM/cache fast paths:
#: their fixed per-batch costs (home-map ``tobytes`` probe, translation
#: tables, dict rebuilds) exceed a handful of scalar loop iterations,
#: and both paths are bit-identical so the cut-over is trace-neutral
VECTOR_MIN_PAGES = 8


class PageSegments:
    """A read-only concatenation of contiguous page runs.

    Query compilation produces page footprints that are concatenations
    of a few contiguous ranges (base-column slices, consumed
    intermediates, shared builds).  Materialising them into one flat
    list would destroy the contiguity the VM and cache layers exploit —
    this sequence keeps the runs, and a slice that falls inside a single
    run comes back as a native :class:`range` (the array fast-path key).
    Slices crossing run boundaries come back as another
    :class:`PageSegments` holding the sub-runs, preserving the exact
    element order of the flat concatenation, so chunked execution
    (:meth:`repro.opsys.workitem.WorkItem.take_reads`) never degrades a
    footprint into per-page work.
    """

    __slots__ = ("_segments", "_starts", "_len")

    def __init__(self, segments):
        self._segments = list(segments)
        starts = []
        total = 0
        for segment in self._segments:
            starts.append(total)
            total += len(segment)
        self._starts = starts
        self._len = total

    def __len__(self) -> int:
        return self._len

    def __iter__(self):
        for segment in self._segments:
            yield from segment

    def _locate(self, offset: int) -> int:
        """Index of the segment containing flat position ``offset``."""
        starts = self._starts
        lo, hi = 0, len(starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._len)
            if step != 1:
                raise SchedulerError("page runs slice with step 1 only")
            if start >= stop:
                return range(0)
            seg_idx = self._locate(start)
            base = self._starts[seg_idx]
            segment = self._segments[seg_idx]
            if stop - base <= len(segment):
                return segment[start - base:stop - base]
            # boundary-crossing slice: keep the runs (slicing a range
            # yields a range), same element order as the equivalent
            # slice of the concatenated list
            head = segment[start - base:]
            runs = [head]
            taken = len(head)
            want = stop - start
            for nxt in self._segments[seg_idx + 1:]:
                missing = want - taken
                if missing <= 0:
                    break
                run = nxt[:missing] if missing < len(nxt) else nxt
                runs.append(run)
                taken += len(run)
            return PageSegments(runs)
        if index < 0:
            index += self._len
        if not 0 <= index < self._len:
            raise IndexError("page index out of range")
        seg_idx = self._locate(index)
        return self._segments[seg_idx][index - self._starts[seg_idx]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<PageSegments {self._segments!r}>"
