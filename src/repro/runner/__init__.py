"""Parallel experiment runner: process fan-out and the benchmark harness.

Every figure harness is a sweep of independent *cells* — each cell builds
its own machine, OS and engine from scratch (:func:`build_system` resets
thread ids per cell), runs one configuration and returns a plain result
record.  Cells therefore parallelise embarrassingly: :mod:`.pool` fans
them across persistent spawn-safe worker processes and merges results in
submission order, so a parallel run is bit-identical to the serial one.
:mod:`.shm` publishes each run's immutable bulk atoms (TPC-H columns,
warm-start snapshot payloads) into shared-memory segments exactly once,
so a forked cell ships kilobytes of digest references per task instead
of re-pickling the dataset.

:mod:`.bench` wall-times the experiment suite (``repro bench``), writes a
``BENCH_<rev>.json`` snapshot under ``benchmarks/results/`` and compares
against the last committed baseline — the CI regression gate for the
simulation kernel's fast path.  Parallel bench passes record pool
telemetry (shipped bytes, worker utilisation, per-task seconds) that
feeds the next run's longest-expected-first dispatch.
"""

from .bench import (BENCH_SUITE, QUICK_SUITE, BenchReport, SweepSnapshot,
                    load_baseline, load_cost_hints, run_bench)
from .cache import ResultCache, configure, current, tree_fingerprint
from .pool import (PoolStats, Task, TaskError, configure_cost_hints,
                   last_pool_stats, resolve, run_tasks, task_cost_key)
from .shm import AtomClient, SharedAtomStore, ShippedAtoms

__all__ = [
    "Task",
    "TaskError",
    "resolve",
    "run_tasks",
    "PoolStats",
    "last_pool_stats",
    "configure_cost_hints",
    "task_cost_key",
    "SharedAtomStore",
    "AtomClient",
    "ShippedAtoms",
    "ResultCache",
    "configure",
    "current",
    "tree_fingerprint",
    "BENCH_SUITE",
    "QUICK_SUITE",
    "BenchReport",
    "SweepSnapshot",
    "load_baseline",
    "load_cost_hints",
    "run_bench",
]
