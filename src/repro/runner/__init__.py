"""Parallel experiment runner: process fan-out and the benchmark harness.

Every figure harness is a sweep of independent *cells* — each cell builds
its own machine, OS and engine from scratch (:func:`build_system` resets
thread ids per cell), runs one configuration and returns a plain result
record.  Cells therefore parallelise embarrassingly: :mod:`.pool` fans
them across spawn-safe worker processes and merges results in submission
order, so a parallel run is bit-identical to the serial one.

:mod:`.bench` wall-times the experiment suite (``repro bench``), writes a
``BENCH_<rev>.json`` snapshot under ``benchmarks/results/`` and compares
against the last committed baseline — the CI regression gate for the
simulation kernel's fast path.
"""

from .bench import (BENCH_SUITE, QUICK_SUITE, BenchReport, SweepSnapshot,
                    load_baseline, run_bench)
from .cache import ResultCache, configure, current, tree_fingerprint
from .pool import Task, resolve, run_tasks

__all__ = [
    "Task",
    "resolve",
    "run_tasks",
    "ResultCache",
    "configure",
    "current",
    "tree_fingerprint",
    "BENCH_SUITE",
    "QUICK_SUITE",
    "BenchReport",
    "SweepSnapshot",
    "load_baseline",
    "run_bench",
]
