"""``repro bench`` — wall-clock the experiment suite, keep a baseline.

The harness times a fixed set of figure experiments (small, pinned
parameterisations — the *bench suite*), normalises each wall time by a
calibration loop run on the same interpreter (so scores transfer across
machines of different speeds), and writes the snapshot to
``benchmarks/results/BENCH_<rev>.json``.

The latest *committed* snapshot acts as the regression baseline: CI runs
``repro bench --quick`` and fails when any experiment's headline metric
— calibrated simulation events/sec, falling back to the normalised
wall-time score against schema-1 baselines — regresses by more than the
tolerance (default 25 %).  With
``--parallel N`` the suite is additionally fanned across worker
processes (one experiment per worker) and the serial/parallel speedup is
reported and recorded.
"""

from __future__ import annotations

import json
import os
import subprocess
import time
from dataclasses import dataclass, field
from pathlib import Path

from ..analysis.report import render_table
from ..errors import ReproError
from .pool import PoolStats, Task, resolve, run_tasks, task_cost_key

#: the benchmark parameterisations.  Small enough for CI, large enough to
#: exercise the scheduler, the controller and the memory system; pinned
#: so scores stay comparable across revisions.
BENCH_SUITE: dict[str, tuple[str, dict]] = {
    "fig4": ("repro.experiments.fig04_microbench:run",
             dict(users=(1, 4, 16), repetitions=2)),
    "fig7": ("repro.experiments.fig07_state_transitions:run",
             dict(repetitions=6)),
    "fig13": ("repro.experiments.fig13_scheduling:run",
              dict(users=(1, 4, 16), repetitions=2)),
    "fig14": ("repro.experiments.fig14_memory:run",
              dict(n_clients=16, repetitions=2)),
    "fig15": ("repro.experiments.fig15_selectivity:run",
              dict(n_clients=8, repetitions=1)),
    "fig16": ("repro.experiments.fig16_migration_modes:run",
              dict(repetitions=2, warmup=2)),
    "fig17": ("repro.experiments.fig17_strategies:run",
              dict(repetitions=2, warmup=3)),
}

#: the CI smoke subset: one controller trace, one scheduling sweep, one
#: migration-map harness — the three hot paths the fast-path kernel touches
QUICK_SUITE = ("fig7", "fig13", "fig16")

RESULTS_DIR = Path("benchmarks") / "results"
#: schema 2 adds per-experiment delivered-event counts and the list of
#: cache-replayed entries; schema-1 snapshots still load (events empty)
SCHEMA = 2

#: spec string the result cache keys bench entries under
_BENCH_FN = "repro.runner.bench:_bench_one"

#: serial suite entries are timed best-of-N, like :func:`_calibrate`;
#: the shortest suite member is ~50 ms, where single-shot wall time on
#: a busy host swings further than the regression gate's tolerance
TIMING_REPEATS = 3


def _calibrate(iterations: int = 2_000_000, repeats: int = 3) -> float:
    """Time a fixed arithmetic loop; the unit of normalised scores.

    Takes the best of ``repeats`` runs — the minimum is the standard
    robust timing estimator (noise only ever makes a run slower), and a
    drifting calibration would scale *every* score and trip the
    regression tolerance spuriously.
    """
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        acc = 0.0
        for i in range(iterations):
            acc += i * 0.5 - (i & 7)
        elapsed = time.perf_counter() - start
        # keep the accumulator alive so the loop cannot be optimised away
        if acc != float("inf") and elapsed < best:
            best = elapsed
    return best


def _git_rev() -> str:
    """Short revision of the working tree, or ``local`` outside git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10)
    except OSError:
        return "local"
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else "local"


def _bench_one(name: str, fn: str, kwargs: dict,
               repeats: int = 1) -> tuple[str, float, int]:
    """Worker entry point: run and time one suite experiment.

    Returns ``(name, wall seconds, events delivered)`` — the event count
    comes from the engine's process-wide delivery counter, so it is
    exact whether the experiment ran serially or in this worker.

    With ``repeats`` > 1 the experiment runs that many times and the
    *minimum* wall time is kept — the same robust estimator
    :func:`_calibrate` uses (noise only ever makes a run slower).  The
    serial suite times with :data:`TIMING_REPEATS` so short entries
    (fig7 is ~50 ms) don't swing past the regression tolerance on a
    noisy host; the parallel pass times single runs, since it measures
    fan-out wall clock, not per-experiment throughput.  The delivered
    count is per run (every repetition delivers the same events — the
    simulation is deterministic), so rates stay comparable with
    single-run snapshots.
    """
    from ..sim.engine import delivered_total
    runner = resolve(fn)
    best = float("inf")
    events = 0
    for _ in range(max(repeats, 1)):
        before = delivered_total()
        start = time.perf_counter()
        runner(**kwargs)
        elapsed = time.perf_counter() - start
        events = delivered_total() - before
        if elapsed < best:
            best = elapsed
    return name, best, events


@dataclass
class SweepSnapshot:
    """One benchmark snapshot (what ``BENCH_<rev>.json`` serialises)."""

    rev: str
    recorded_at: float
    calibration_seconds: float
    #: experiment -> (wall seconds, normalised score)
    experiments: dict[str, tuple[float, float]] = field(
        default_factory=dict)
    #: experiment -> simulation events delivered during the timed run
    events: dict[str, int] = field(default_factory=dict)
    #: suite entries replayed from the result cache (their seconds and
    #: event counts are the original run's, not re-measured)
    cached: list[str] = field(default_factory=list)
    parallel: int = 0
    parallel_wall_seconds: float | None = None
    #: cores visible to this interpreter; a parallel speedup below 1.0
    #: on a single-core host is expected, not a defect
    cpu_count: int = field(default_factory=lambda: os.cpu_count() or 1)
    #: pool telemetry from the parallel pass
    #: (:meth:`~repro.runner.pool.PoolStats.as_dict`: shipped IPC bytes,
    #: per-worker utilisation, per-task seconds); absent in snapshots
    #: recorded before it existed and in serial-only runs
    pool: dict | None = None

    @property
    def serial_total_seconds(self) -> float:
        """Sum of the serial per-experiment wall times."""
        return sum(seconds for seconds, _ in self.experiments.values())

    @property
    def speedup(self) -> float | None:
        """Serial-total over parallel wall clock, when both were run."""
        if not self.parallel_wall_seconds:
            return None
        return self.serial_total_seconds / self.parallel_wall_seconds

    def as_dict(self) -> dict:
        """JSON-serialisable form."""
        return {
            "schema": SCHEMA,
            "rev": self.rev,
            "recorded_at": self.recorded_at,
            "calibration_seconds": self.calibration_seconds,
            "experiments": {
                name: {"seconds": seconds, "score": score,
                       "events": self.events.get(name, 0)}
                for name, (seconds, score) in self.experiments.items()},
            "cached": list(self.cached),
            "serial_total_seconds": self.serial_total_seconds,
            "parallel": self.parallel,
            "parallel_wall_seconds": self.parallel_wall_seconds,
            "speedup": self.speedup,
            "cpu_count": self.cpu_count,
            "pool": self.pool,
        }

    def _events_per_second(self, name: str) -> str:
        seconds, _ = self.experiments[name]
        events = self.events.get(name, 0)
        if not events or seconds <= 0:
            return ""
        return f"{events / seconds:,.0f}"

    def calibrated_rate(self, name: str) -> float | None:
        """Calibration-normalised throughput: events per calibration unit.

        Dividing the wall time by the calibration loop's makes the rate
        transfer across machines the same way scores do; ``None`` when
        the snapshot carries no event count for the experiment (e.g. a
        schema-1 baseline).
        """
        entry = self.experiments.get(name)
        if entry is None:
            return None
        seconds, _ = entry
        events = self.events.get(name, 0)
        if not events or seconds <= 0 or self.calibration_seconds <= 0:
            return None
        return events / (seconds / self.calibration_seconds)

    def table(self) -> str:
        """The snapshot as a text table."""
        rows: list[list[object]] = [
            [name + (" (cached)" if name in self.cached else ""),
             seconds, self._events_per_second(name), score]
            for name, (seconds, score) in self.experiments.items()]
        rows.append(["(serial total)", self.serial_total_seconds, "",
                     ""])
        if self.parallel_wall_seconds is not None:
            rows.append([f"(parallel x{self.parallel})",
                         self.parallel_wall_seconds, "",
                         f"speedup {self.speedup:.2f}x on "
                         f"{self.cpu_count} core(s)"])
        if self.pool:
            shipped = int(self.pool.get("ipc_bytes_shipped", 0) or 0)
            shm = int(self.pool.get("shm_bytes", 0) or 0)
            util = float(self.pool.get("mean_utilisation", 0.0) or 0.0)
            rows.append(["(pool)", "", "",
                         f"util {util:.0%}, {shipped:,} B IPC, "
                         f"{shm:,} B shm"])
        return render_table(
            ["experiment", "wall s", "events/s", "score (calibrated)"],
            rows,
            title=f"repro bench @ {self.rev} "
                  f"(calibration {self.calibration_seconds:.3f}s)")

    # ------------------------------------------------------------------

    def compare(self, baseline: "SweepSnapshot",
                tolerance: float = 0.25) -> tuple[str, list[str]]:
        """(comparison table, regression messages) vs a baseline.

        The headline metric is calibrated events/sec — simulation
        throughput, which is what the fast-path work actually optimises
        — whenever both snapshots carry event counts for an experiment;
        a drop beyond the tolerance is a regression.  Experiments
        missing an event count on either side (schema-1 baselines) fall
        back to the normalised wall-time score, where a *rise* beyond
        the tolerance regresses.  Both metrics are calibration-
        normalised, so a slower CI machine does not read as a
        regression.
        """
        rows: list[list[object]] = []
        regressions: list[str] = []
        for name, (_, score) in self.experiments.items():
            base = baseline.experiments.get(name)
            if base is None:
                rows.append([name, "", "", f"{score:.2f}", "new"])
                continue
            rate = self.calibrated_rate(name)
            base_rate = baseline.calibrated_rate(name)
            if rate is not None and base_rate:
                change = (rate - base_rate) / base_rate
                verdict = f"{change:+.1%}"
                if change < -tolerance:
                    verdict += " REGRESSION"
                    regressions.append(
                        f"{name}: events/s {rate:,.0f} vs baseline "
                        f"{base_rate:,.0f} ({change:+.1%} < "
                        f"-{tolerance:.0%} tolerance)")
                rows.append([name, "events/s", f"{base_rate:,.0f}",
                             f"{rate:,.0f}", verdict])
                continue
            base_score = base[1]
            change = (score - base_score) / base_score if base_score \
                else 0.0
            verdict = f"{change:+.1%}"
            if change > tolerance:
                verdict += " REGRESSION"
                regressions.append(
                    f"{name}: score {score:.2f} vs baseline "
                    f"{base_score:.2f} ({change:+.1%} > "
                    f"{tolerance:.0%} tolerance)")
            rows.append([name, "score", f"{base_score:.2f}",
                         f"{score:.2f}", verdict])
        table = render_table(
            ["experiment", "metric", f"baseline ({baseline.rev})",
             "current", "change"],
            rows, title="vs committed baseline")
        return table, regressions


#: historical name, still constructed directly by callers and tests
BenchReport = SweepSnapshot


def retry_regressions(report: SweepSnapshot, baseline: SweepSnapshot,
                      tolerance: float = 0.25, rounds: int = 2,
                      cache: object = None) -> int:
    """Re-measure regressed suite entries before declaring failure.

    On a shared host a multi-second suite entry can land entirely
    inside a neighbour's load burst, reading 2× slow while the short
    calibration loop (best-of-3 over ~0.2 s windows) slips between
    bursts and cannot compensate.  A *real* code regression reproduces
    on every re-run, so re-timing only the entries that tripped the
    gate — keeping the minimum wall time, up to ``rounds`` extra
    rounds, each re-measured against a fresh calibration so sustained
    load cancels out of the ratio — removes transient false positives
    without loosening the gate for true regressions.  Mutates
    ``report`` in place (and the
    result ``cache``, when given, so a stale slow timing is not
    replayed later); returns the number of entries re-measured.
    """
    retried = 0
    for _ in range(max(rounds, 0)):
        _, regressions = report.compare(baseline, tolerance=tolerance)
        names = [m.split(":", 1)[0] for m in regressions]
        names = [n for n in names
                 if n in BENCH_SUITE and n in report.experiments
                 and n not in report.cached]
        if not names:
            break
        # re-calibrate per round: if the load persists through the
        # retry, the fresh calibration is slow too, and scaling the
        # re-measured wall back into the report's calibration units
        # compensates — the original calibration ran in a window the
        # regressed entry did not get
        scale = report.calibration_seconds / _calibrate()
        for name in names:
            fn, kwargs = BENCH_SUITE[name]
            _, wall, events = _bench_one(name, fn, kwargs,
                                         repeats=TIMING_REPEATS)
            retried += 1
            seconds = wall * scale
            if seconds < report.experiments[name][0]:
                report.experiments[name] = (
                    seconds, seconds / report.calibration_seconds)
                report.events[name] = events
                if cache is not None:
                    key = cache.task_key(
                        _BENCH_FN, dict(name=name, fn=fn, kwargs=kwargs))
                    cache.store(key, (name, seconds, events))
    return retried


def run_bench(names: tuple[str, ...] | None = None, quick: bool = False,
              parallel: int = 0, cache: object = None) -> SweepSnapshot:
    """Time the bench suite; optionally add a parallel fan-out pass.

    ``cache`` follows the :func:`~repro.runner.pool.run_tasks`
    convention (``None`` defers to the process-wide cache, ``False``
    forces it off).  A cached suite entry replays its original wall time
    and event count instead of re-running — those entries are listed in
    the snapshot's ``cached`` field, and callers should not persist a
    snapshot whose timings were replayed.
    """
    from .cache import resolve_cache

    if names is None:
        names = QUICK_SUITE if quick else tuple(BENCH_SUITE)
    unknown = [n for n in names if n not in BENCH_SUITE]
    if unknown:
        raise ReproError(
            f"not in the bench suite: {', '.join(unknown)} "
            f"(available: {', '.join(BENCH_SUITE)})")
    report = SweepSnapshot(
        rev=_git_rev(),
        # snapshot metadata, not simulated time
        recorded_at=time.time(),  # verify: allow=lint:wall-clock
        calibration_seconds=_calibrate(),
    )
    store = resolve_cache(cache)
    results: dict[str, tuple[float, int]] = {}
    misses: list[tuple[str, str, dict, str | None]] = []
    for name in names:
        fn, kwargs = BENCH_SUITE[name]
        key = None
        if store is not None:
            key = store.task_key(
                _BENCH_FN, dict(name=name, fn=fn, kwargs=kwargs))
            hit, value = store.lookup(key)
            if hit:
                results[name] = (value[1], value[2])
                report.cached.append(name)
                continue
        misses.append((name, fn, kwargs, key))
    if misses:
        # untimed warmup: the first experiment of a run otherwise pays
        # for module imports and the shared dataset cache, which reads
        # as a spurious regression on whichever suite member goes first
        _bench_one("warmup", *BENCH_SUITE["fig7"])
        for name, fn, kwargs, key in misses:
            _, seconds, events = _bench_one(name, fn, kwargs,
                                            repeats=TIMING_REPEATS)
            results[name] = (seconds, events)
            if store is not None and key is not None:
                store.store(key, (name, seconds, events))
    for name in names:
        seconds, events = results[name]
        report.experiments[name] = (
            seconds, seconds / report.calibration_seconds)
        report.events[name] = events
    if parallel > 1:
        # cache=False: the parallel pass measures fan-out wall clock,
        # which replayed results would turn into a no-op
        tasks = [Task(_BENCH_FN,
                      dict(name=name, fn=BENCH_SUITE[name][0],
                           kwargs=BENCH_SUITE[name][1]))
                 for name in names]
        # straggler-aware dispatch: this run's own serial wall times
        # are the best available cost estimates for its parallel pass
        hints = {task_cost_key(task.fn, task.kwargs): results[name][0]
                 for name, task in zip(names, tasks)}
        pool_stats = PoolStats()
        start = time.perf_counter()
        run_tasks(tasks, parallel=parallel, cache=False,
                  cost_hints=hints, stats=pool_stats)
        report.parallel = parallel
        report.parallel_wall_seconds = time.perf_counter() - start
        report.pool = pool_stats.as_dict()
    return report


# ----------------------------------------------------------------------
# snapshot persistence


def write_report(report: SweepSnapshot,
                 out_dir: Path | str = RESULTS_DIR) -> Path:
    """Serialise the snapshot to ``<out_dir>/BENCH_<rev>.json``."""
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    path = out / f"BENCH_{report.rev}.json"
    path.write_text(json.dumps(report.as_dict(), indent=2,
                               sort_keys=True) + "\n")
    return path


def _report_from_dict(data: dict) -> SweepSnapshot:
    report = SweepSnapshot(
        rev=str(data.get("rev", "unknown")),
        recorded_at=float(data.get("recorded_at", 0.0)),
        calibration_seconds=float(data.get("calibration_seconds", 1.0)),
        parallel=int(data.get("parallel", 0) or 0),
        parallel_wall_seconds=data.get("parallel_wall_seconds"),
        cpu_count=int(data.get("cpu_count", 0) or 1),
        # absent in pre-pool snapshots; compare() never reads it
        pool=data.get("pool") or None,
    )
    report.cached = [str(name) for name in data.get("cached", [])]
    for name, entry in data.get("experiments", {}).items():
        report.experiments[name] = (float(entry["seconds"]),
                                    float(entry["score"]))
        # schema-1 snapshots carry no event counts
        events = int(entry.get("events", 0) or 0)
        if events:
            report.events[name] = events
    return report


def load_cost_hints(results_dir: Path | str = RESULTS_DIR
                    ) -> dict[str, float]:
    """Per-task timings from the latest snapshot's pool telemetry.

    Feeds :func:`~repro.runner.pool.configure_cost_hints` so a later
    parallel run dispatches longest-expected-first from the start;
    missing or pre-pool snapshots yield an empty mapping (unknown tasks
    simply dispatch in submission order).
    """
    baseline = load_baseline(results_dir)
    if baseline is None or not baseline.pool:
        return {}
    hints: dict[str, float] = {}
    for key, value in (baseline.pool.get("task_seconds") or {}).items():
        try:
            hints[str(key)] = float(value)
        except (TypeError, ValueError):
            continue
    return hints


def load_baseline(results_dir: Path | str = RESULTS_DIR,
                  exclude_rev: str | None = None) -> SweepSnapshot | None:
    """Latest snapshot under ``results_dir`` (by ``recorded_at``).

    ``exclude_rev`` skips the snapshot the current run just wrote, so a
    rerun on the same revision still compares against the previous
    baseline instead of itself.
    """
    directory = Path(results_dir)
    if not directory.is_dir():
        return None
    best: SweepSnapshot | None = None
    for path in sorted(directory.glob("BENCH_*.json")):
        try:
            data = json.loads(path.read_text())
        except (OSError, ValueError):
            continue
        if not isinstance(data, dict) or not data.get("experiments"):
            continue
        report = _report_from_dict(data)
        if exclude_rev is not None and report.rev == exclude_rev:
            continue
        if best is None or report.recorded_at > best.recorded_at:
            best = report
    return best
