"""Content-addressed result cache: skip cells whose inputs are unchanged.

Every experiment cell is a pure function of (the repro source tree, the
task's ``module:attr`` spec, its canonicalised kwargs) — the simulation
is deterministic by construction, seeds included in the kwargs.  The
cache keys cells on exactly that triple, so ``repro run`` and ``repro
bench`` replay unchanged cells from disk instead of re-simulating them,
and any edit under ``src/repro`` invalidates every key at once.

Key derivation
--------------
* **tree fingerprint** — sha256 over the relative path and content of
  every ``*.py`` file under the installed ``repro`` package.  Content-
  based (not ``git rev-parse``) so uncommitted edits invalidate too, and
  it works outside a git checkout.
* **canonical params** — kwargs normalised to a JSON document: mappings
  key-sorted, tuples/lists unified, bulk values replaced by content
  digests (bytes and numpy arrays by sha256,
  :class:`~repro.sim.SimState` captures by their
  :meth:`~repro.sim.SimState.fingerprint`, anything else by the digest
  of its pickle).

The cache is **off** in the library (``run_tasks(cache=None)`` consults
:func:`current`, which only activates via :func:`configure` or the
``REPRO_CACHE=1`` environment variable) and **on** by default in the
CLI's ``run``/``bench`` commands, where ``--no-cache`` opts out and
``repro cache stats``/``repro cache clear`` manage the store.  Entries
live under ``.repro-cache/`` (override with ``REPRO_CACHE_DIR``).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
from collections.abc import Mapping
from pathlib import Path
from typing import Any

from ..atoms import atom_hexdigest
from ..errors import ReproError

ENV_ENABLED = "REPRO_CACHE"
ENV_DIR = "REPRO_CACHE_DIR"
DEFAULT_DIR = Path(".repro-cache")

#: bump when the key material or entry layout changes
KEY_SCHEMA = 1

#: pickle protocol pinned so keys and entries are stable across the
#: supported interpreter versions
_PROTOCOL = 4

_STATS_FILE = "stats.json"
_STATS_KEYS = ("hits", "misses", "stored")

#: memoised fingerprint of the installed package (computed once per
#: process; the tree does not change mid-run)
_DEFAULT_TREE: str | None = None


def tree_fingerprint(root: Path | str | None = None) -> str:
    """sha256 over the source tree's ``*.py`` paths and contents.

    ``root`` defaults to the installed ``repro`` package; explicit roots
    (tests, forks of the layout) are never memoised.
    """
    global _DEFAULT_TREE
    if root is None:
        if _DEFAULT_TREE is not None:
            return _DEFAULT_TREE
        import repro
        value = tree_fingerprint(Path(repro.__file__).parent)
        _DEFAULT_TREE = value
        return value
    base = Path(root)
    digest = hashlib.sha256()
    for path in sorted(base.rglob("*.py")):
        digest.update(path.relative_to(base).as_posix().encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


def canonical(value: Any) -> Any:
    """Normalise one task kwarg into a JSON-serialisable form.

    Equal inputs canonicalise equally across processes; bulk values are
    replaced by content digests so keys stay small.
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        # repr round-trips floats exactly; json would too, but pin it
        return {"float": repr(value)}
    if isinstance(value, (list, tuple)):
        return [canonical(item) for item in value]
    if isinstance(value, Mapping):
        return {"map": {str(key): canonical(item)
                        for key, item in sorted(
                            value.items(), key=lambda kv: str(kv[0]))}}
    if isinstance(value, (set, frozenset)):
        return {"set": sorted(json.dumps(canonical(item), sort_keys=True)
                              for item in value)}
    if isinstance(value, (bytes, bytearray)):
        return {"bytes": hashlib.sha256(bytes(value)).hexdigest()}
    fingerprint = getattr(value, "fingerprint", None)
    if callable(fingerprint):  # SimState captures and friends
        return {"fingerprint": fingerprint()}
    tobytes = getattr(value, "tobytes", None)
    if callable(tobytes):  # numpy arrays (same scheme, memoised)
        return {"array": atom_hexdigest(value)}
    try:
        payload = pickle.dumps(value, protocol=_PROTOCOL)
    except (pickle.PicklingError, AttributeError, TypeError) as exc:
        raise ReproError(
            f"cannot canonicalise cache parameter of type "
            f"{type(value).__name__}: {exc}") from exc
    return {"pickle": hashlib.sha256(payload).hexdigest()}


class ResultCache:
    """One on-disk result store, keyed by content."""

    def __init__(self, directory: Path | str | None = None,
                 tree_root: Path | str | None = None):
        if directory is None:
            directory = os.environ.get(ENV_DIR) or DEFAULT_DIR
        self.directory = Path(directory)
        self._tree = tree_fingerprint(tree_root)

    # ------------------------------------------------------------------
    # keys

    def task_key(self, fn: str, kwargs: Mapping[str, Any]) -> str:
        """The content address of one task's result."""
        material = json.dumps(
            {"schema": KEY_SCHEMA, "tree": self._tree, "fn": fn,
             "params": canonical(dict(kwargs))},
            sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(material.encode()).hexdigest()

    def _entry_path(self, key: str) -> Path:
        return self.directory / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    # lookup / store

    def lookup(self, key: str) -> tuple[bool, Any]:
        """(hit, value); a corrupt or missing entry is a miss."""
        path = self._entry_path(key)
        try:
            payload = path.read_bytes()
            value = pickle.loads(payload)
        except (OSError, pickle.UnpicklingError, EOFError, ValueError,
                AttributeError, ImportError, IndexError):
            self._bump(misses=1)
            return False, None
        self._bump(hits=1)
        return True, value

    def store(self, key: str, value: Any) -> bool:
        """Persist one result; returns False when it cannot pickle."""
        try:
            payload = pickle.dumps(value, protocol=_PROTOCOL)
        except (pickle.PicklingError, AttributeError, TypeError):
            return False
        path = self._entry_path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        self._atomic_write(path, payload)
        self._bump(stored=1)
        return True

    @staticmethod
    def _atomic_write(path: Path, payload: bytes) -> None:
        tmp = path.with_suffix(f".tmp{os.getpid()}")
        tmp.write_bytes(payload)
        os.replace(tmp, path)

    # ------------------------------------------------------------------
    # stats / maintenance

    def _bump(self, hits: int = 0, misses: int = 0,
              stored: int = 0) -> None:
        counts = self._read_stats()
        counts["hits"] += hits
        counts["misses"] += misses
        counts["stored"] += stored
        self.directory.mkdir(parents=True, exist_ok=True)
        self._atomic_write(
            self.directory / _STATS_FILE,
            json.dumps(counts, sort_keys=True).encode() + b"\n")

    def _read_stats(self) -> dict[str, int]:
        try:
            raw = json.loads(
                (self.directory / _STATS_FILE).read_text())
        except (OSError, ValueError):
            raw = {}
        return {name: int(raw.get(name, 0) or 0)
                for name in _STATS_KEYS}

    def stats(self) -> dict[str, Any]:
        """Counters plus the store's current footprint."""
        entries = list(self.directory.glob("*/*.pkl"))
        counts: dict[str, Any] = self._read_stats()
        counts["entries"] = len(entries)
        counts["bytes"] = sum(path.stat().st_size for path in entries)
        counts["directory"] = str(self.directory)
        return counts

    def clear(self) -> int:
        """Delete every entry (and the counters); returns entries removed."""
        removed = 0
        for path in self.directory.glob("*/*.pkl"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        try:
            (self.directory / _STATS_FILE).unlink()
        except OSError:
            pass
        return removed


# ----------------------------------------------------------------------
# process-wide activation (the CLI's hook; the library default is off)

_CURRENT: "ResultCache | bool | None" = None
_ENV_CACHE: ResultCache | None = None


def configure(cache: "ResultCache | bool | None") -> None:
    """Install the process-wide cache.

    ``None`` removes a configured cache (the ``REPRO_CACHE=1``
    environment fallback applies again); ``False`` forces caching off
    even against the environment — ``repro monitor`` uses this so a
    monitored run always simulates instead of replaying, which would
    leave the live bus with nothing to stream.
    """
    global _CURRENT
    _CURRENT = cache


def current() -> ResultCache | None:
    """The active cache: configured one, else ``REPRO_CACHE=1``, else
    ``None`` (caching off); ``configure(False)`` forces off."""
    global _ENV_CACHE
    if _CURRENT is False:
        return None
    if isinstance(_CURRENT, ResultCache):
        return _CURRENT
    if os.environ.get(ENV_ENABLED, "").lower() in ("1", "true", "yes",
                                                   "on"):
        if _ENV_CACHE is None:
            _ENV_CACHE = ResultCache()
        return _ENV_CACHE
    return None


def resolve_cache(cache: "ResultCache | bool | None") -> \
        ResultCache | None:
    """Normalise a ``run_tasks(cache=...)`` argument.

    ``None`` defers to :func:`current`; ``False`` forces caching off;
    ``True`` activates the default store; a :class:`ResultCache` is used
    as-is.
    """
    if cache is None:
        return current()
    if cache is False:
        return None
    if cache is True:
        return ResultCache()
    return cache
