"""Spawn-safe process fan-out with deterministic, ordered merging.

Tasks name their function as a ``"module:attr"`` spec string instead of a
bare callable: spec strings pickle under every start method, survive
``__main__`` aliasing, and make the task list printable.  Workers import
the module and call the attribute with the task's kwargs.

The pool always uses the ``spawn`` start context.  ``fork`` would be
faster to start but inherits the parent's dataset cache, open telemetry
recorders and heap layout — ``spawn`` guarantees every worker builds its
cells from the same cold, deterministic state a serial run starts from.
Results come back in *submission order* regardless of completion order,
so merging is a ``zip`` and parallel output is bit-identical to serial.
"""

from __future__ import annotations

import importlib
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any

from ..errors import ReproError


@dataclass(frozen=True)
class Task:
    """One unit of fan-out: ``resolve(fn)(**kwargs)`` in some process."""

    fn: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)


def resolve(spec: str):
    """Import the callable named by a ``"module:attr"`` spec string."""
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise ReproError(
            f"task spec {spec!r} is not of the form 'module:attr'")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ReproError(f"cannot import task module {module_name!r}: "
                         f"{exc}") from exc
    fn = getattr(module, attr, None)
    if fn is None:
        raise ReproError(f"module {module_name!r} has no attribute "
                         f"{attr!r}")
    if not callable(fn):
        raise ReproError(f"task target {spec!r} is not callable")
    return fn


def _invoke(task: Task) -> Any:
    """Worker entry point: resolve and call one task."""
    return resolve(task.fn)(**dict(task.kwargs))


def run_tasks(tasks: Iterable[Task], parallel: int = 1,
              cache: Any = None) -> list[Any]:
    """Run every task; results in submission order.

    ``parallel <= 1`` (or a single task) short-circuits to a plain serial
    loop in this process — no pool, no pickling, no import indirection
    beyond :func:`resolve`.  Larger values fan tasks across at most
    ``parallel`` spawn workers, one task per dispatch (``chunksize=1``:
    cells have wildly different runtimes, so greedy dispatch beats
    pre-chunking).

    ``cache`` accepts a :class:`~repro.runner.cache.ResultCache`,
    ``True`` (the default store), ``False`` (off even when a
    process-wide cache is configured) or ``None`` (defer to
    :func:`~repro.runner.cache.current`).  Lookup and store both happen
    in the parent, keyed on each task's spec and canonicalised kwargs,
    so only cache misses are executed — serially or across the pool —
    and hits merge back into their original submission slots.
    """
    task_list = list(tasks)
    if parallel < 1:
        raise ReproError(f"parallel must be >= 1, got {parallel}")

    from .cache import resolve_cache
    store = resolve_cache(cache)
    if store is None:
        return _execute(task_list, parallel)

    results: list[Any] = [None] * len(task_list)
    misses: list[tuple[int, Task, str]] = []
    for index, task in enumerate(task_list):
        key = store.task_key(task.fn, task.kwargs)
        hit, value = store.lookup(key)
        if hit:
            results[index] = value
        else:
            misses.append((index, task, key))
    for (index, _, key), value in zip(
            misses, _execute([task for _, task, _ in misses], parallel)):
        results[index] = value
        store.store(key, value)
    return results


def _execute(task_list: list[Task], parallel: int) -> list[Any]:
    """Run tasks serially or across the spawn pool; submission order."""
    if parallel == 1 or len(task_list) <= 1:
        return [_invoke(task) for task in task_list]
    workers = min(parallel, len(task_list))
    context = get_context("spawn")
    with context.Pool(processes=workers) as pool:
        return pool.map(_invoke, task_list, chunksize=1)
