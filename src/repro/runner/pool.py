"""Persistent spawn-worker pool with zero-copy shared atoms.

Tasks name their function as a ``"module:attr"`` spec string instead of
a bare callable: spec strings pickle under every start method, survive
``__main__`` aliasing, and make the task list printable.  Workers import
the module and call the attribute with the task's kwargs.

The pool always uses the ``spawn`` start context.  ``fork`` would be
faster to start but inherits the parent's dataset cache, open telemetry
recorders and heap layout — ``spawn`` guarantees every worker starts
from the same cold, deterministic state a serial run starts from.

Workers are **long-lived**: each attaches the run's
:class:`~repro.runner.shm.SharedAtomStore` once, imports experiment
modules once, and keeps its warmed dataset cache across tasks — a
warm-start cell ships kilobytes of digest references instead of
re-pickling the dataset per task.  Every result is tagged with its
submission index, so merging is positional and parallel output stays
bit-identical to serial regardless of completion order.

Dispatch is **straggler-aware**: with per-task timings installed
(:func:`configure_cost_hints`, fed from ``BENCH_<rev>.json`` snapshots
or a bench run's own serial pass), tasks dispatch longest-expected-first
so the slowest cell never starts last; unknown cells go first (they
*could* be the longest).  Each parallel execution records a
:class:`PoolStats` — per-worker utilisation, shipped IPC bytes, shared-
memory bytes — retrievable via :func:`last_pool_stats`.

A failing task raises :class:`TaskError` carrying the task's ``fn``
spec, its canonicalised kwargs and the worker's traceback; a *crashing*
worker (hard exit) fails only the task it was running, and the pool
respawns a replacement while work remains.
"""

from __future__ import annotations

import hashlib
import importlib
import json
import pickle
import queue as queue_lib
import time
from collections import deque
from collections.abc import Iterable, Mapping
from dataclasses import dataclass, field
from multiprocessing import get_context
from typing import Any

from ..errors import ReproError
from .shm import (SharedAtomStore, collect_shareable_atoms,
                  dumps_with_atoms, loads_with_atoms)

_PROTOCOL = pickle.HIGHEST_PROTOCOL

#: parent poll interval while waiting on results — short enough that a
#: crashed worker is noticed promptly, long enough not to spin
_POLL_SECONDS = 0.05

#: grace between the shutdown sentinel and terminate()
_JOIN_SECONDS = 5.0


@dataclass(frozen=True)
class Task:
    """One unit of fan-out: ``resolve(fn)(**kwargs)`` in some process."""

    fn: str
    kwargs: Mapping[str, Any] = field(default_factory=dict)


class TaskError(ReproError):
    """One task failed; carries the cell's identity.

    ``fn`` is the failing task's ``"module:attr"`` spec and ``kwargs``
    its canonicalised parameters, so a failing cell in a hundred-task
    sweep is identifiable straight from the traceback.
    """

    def __init__(self, message: str, fn: str | None = None,
                 kwargs: str | None = None):
        super().__init__(message)
        self.fn = fn
        self.kwargs = kwargs


def resolve(spec: str):
    """Import the callable named by a ``"module:attr"`` spec string."""
    module_name, sep, attr = spec.partition(":")
    if not sep or not module_name or not attr:
        raise ReproError(
            f"task spec {spec!r} is not of the form 'module:attr'")
    try:
        module = importlib.import_module(module_name)
    except ImportError as exc:
        raise ReproError(f"cannot import task module {module_name!r}: "
                         f"{exc}") from exc
    fn = getattr(module, attr, None)
    if fn is None:
        raise ReproError(f"module {module_name!r} has no attribute "
                         f"{attr!r}")
    if not callable(fn):
        raise ReproError(f"task target {spec!r} is not callable")
    return fn


def _describe_kwargs(kwargs: Mapping[str, Any]) -> str:
    """Canonicalised kwargs for error messages (best effort)."""
    from .cache import canonical
    try:
        return json.dumps(canonical(dict(kwargs)), sort_keys=True,
                          separators=(",", ":"))
    except Exception:
        return repr(dict(kwargs))


def _invoke(task: Task) -> Any:
    """Resolve and call one task; failures carry the task's identity."""
    fn = resolve(task.fn)
    try:
        return fn(**dict(task.kwargs))
    except TaskError:
        raise  # nested run_tasks: already identified
    except Exception as exc:
        described = _describe_kwargs(task.kwargs)
        raise TaskError(
            f"task {task.fn!r} failed: {type(exc).__name__}: {exc}\n"
            f"  kwargs: {described}",
            fn=task.fn, kwargs=described) from exc


def task_cost_key(fn: str, kwargs: Mapping[str, Any]) -> str:
    """Stable identity for per-task timing hints.

    Unlike the result-cache key this excludes the source-tree
    fingerprint: a code edit rarely reorders cells by cost, and a stale
    hint only affects dispatch order, never results.
    """
    from .cache import canonical
    try:
        params: Any = canonical(dict(kwargs))
    except ReproError:
        params = repr(sorted(kwargs))
    material = json.dumps({"fn": fn, "params": params}, sort_keys=True,
                          separators=(",", ":"))
    return hashlib.sha256(material.encode()).hexdigest()[:16]


@dataclass
class PoolStats:
    """Telemetry for one parallel :func:`run_tasks` execution."""

    workers: int = 0
    wall_seconds: float = 0.0
    tasks: int = 0
    #: pickled task payloads sent to workers (after atom externalising)
    ipc_task_bytes: int = 0
    #: pickled result payloads received from workers
    ipc_result_bytes: int = 0
    #: bytes published once into shared-memory segments
    shm_bytes: int = 0
    respawns: int = 0
    #: worker id -> seconds spent executing tasks
    busy_seconds: dict[int, float] = field(default_factory=dict)
    #: worker id -> tasks completed
    worker_tasks: dict[int, int] = field(default_factory=dict)
    #: task cost key -> observed wall seconds (feeds future dispatch)
    task_seconds: dict[str, float] = field(default_factory=dict)

    @property
    def ipc_bytes_shipped(self) -> int:
        """Per-task bytes that crossed the process boundary, both ways."""
        return self.ipc_task_bytes + self.ipc_result_bytes

    def worker_utilisation(self) -> dict[str, float]:
        """worker id -> busy fraction of the pool's wall clock."""
        if self.wall_seconds <= 0:
            return {}
        return {str(wid): min(busy / self.wall_seconds, 1.0)
                for wid, busy in sorted(self.busy_seconds.items())}

    def mean_utilisation(self) -> float:
        util = self.worker_utilisation()
        if not util:
            return 0.0
        return sum(util.values()) / len(util)

    def as_dict(self) -> dict:
        """JSON-serialisable form (what bench snapshots embed)."""
        return {
            "workers": self.workers,
            "wall_seconds": self.wall_seconds,
            "tasks": self.tasks,
            "ipc_bytes_shipped": self.ipc_bytes_shipped,
            "ipc_task_bytes": self.ipc_task_bytes,
            "ipc_result_bytes": self.ipc_result_bytes,
            "shm_bytes": self.shm_bytes,
            "respawns": self.respawns,
            "worker_utilisation": self.worker_utilisation(),
            "mean_utilisation": self.mean_utilisation(),
            "task_seconds": dict(self.task_seconds),
        }


#: stats of the most recent parallel execution in this process
#: (diagnostics; the CLI prints them after a --parallel run)
_LAST_STATS: PoolStats | None = None

#: expected per-task seconds keyed by :func:`task_cost_key`, consulted
#: when run_tasks gets no explicit hints (installed by the CLI from the
#: latest bench snapshot)
_COST_HINTS: dict[str, float] = {}


def last_pool_stats() -> PoolStats | None:
    """Stats of this process's most recent parallel execution."""
    return _LAST_STATS


def configure_cost_hints(hints: Mapping[str, float] | None) -> None:
    """Install (or with ``None`` clear) process-wide dispatch hints."""
    _COST_HINTS.clear()
    if hints:
        _COST_HINTS.update(hints)


def run_tasks(tasks: Iterable[Task], parallel: int = 1,
              cache: Any = None,
              cost_hints: Mapping[str, float] | None = None,
              stats: PoolStats | None = None) -> list[Any]:
    """Run every task; results in submission order.

    ``parallel <= 1`` (or a single task) short-circuits to a plain
    serial loop in this process — no pool, no pickling, no import
    indirection beyond :func:`resolve`.  Larger values fan tasks across
    at most ``parallel`` persistent spawn workers: shared atoms publish
    once over shared memory, dispatch is longest-expected-first, and
    results merge back by submission index so parallel output is
    bit-identical to serial.

    ``cache`` accepts a :class:`~repro.runner.cache.ResultCache`,
    ``True`` (the default store), ``False`` (off even when a
    process-wide cache is configured) or ``None`` (defer to
    :func:`~repro.runner.cache.current`).  Lookup and store both happen
    in the parent, so only cache misses are executed and hits merge
    back into their original submission slots.

    ``cost_hints`` maps :func:`task_cost_key` to expected seconds
    (defaults to the hints installed via :func:`configure_cost_hints`);
    ``stats`` collects a caller-visible :class:`PoolStats`.
    """
    task_list = list(tasks)
    if parallel < 1:
        raise ReproError(f"parallel must be >= 1, got {parallel}")

    from .cache import resolve_cache
    store = resolve_cache(cache)
    if store is None:
        return _execute(task_list, parallel, cost_hints=cost_hints,
                        stats=stats)

    results: list[Any] = [None] * len(task_list)
    misses: list[tuple[int, Task, str]] = []
    for index, task in enumerate(task_list):
        key = store.task_key(task.fn, task.kwargs)
        hit, value = store.lookup(key)
        if hit:
            results[index] = value
        else:
            misses.append((index, task, key))
    for (index, _, key), value in zip(
            misses, _execute([task for _, task, _ in misses], parallel,
                             cost_hints=cost_hints, stats=stats)):
        results[index] = value
        store.store(key, value)
    return results


def _execute(task_list: list[Task], parallel: int,
             cost_hints: Mapping[str, float] | None = None,
             stats: PoolStats | None = None) -> list[Any]:
    """Run tasks serially or across the pool; submission order."""
    if parallel == 1 or len(task_list) <= 1:
        return [_invoke(task) for task in task_list]
    workers = min(parallel, len(task_list))
    outcomes = _run_pool(task_list, workers, get_context("spawn"),
                         cost_hints=cost_hints, stats=stats)
    failures = [(index, outcome) for index, outcome in
                enumerate(outcomes)
                if outcome is not None and outcome.failure is not None]
    if failures:
        index, outcome = failures[0]
        raise _failure_error(outcome.failure, task_list[index])
    if any(outcome is None for outcome in outcomes):
        raise ReproError(
            "pool finished without an outcome for every task")
    return [outcome.value for outcome in outcomes]


def _failure_error(info: Mapping[str, Any], task: Task) -> TaskError:
    """Rebuild a parent-side TaskError from a worker's failure record."""
    message = str(info.get("message") or f"task {task.fn!r} failed")
    trace = info.get("traceback")
    if trace:
        message = (f"{message}\n--- worker traceback ---\n"
                   f"{str(trace).rstrip()}")
    return TaskError(message, fn=str(info.get("fn") or task.fn),
                     kwargs=info.get("kwargs"))


def _failure_info(exc: BaseException) -> dict:
    """Picklable record of a worker-side failure."""
    import traceback
    info: dict[str, Any] = {
        "message": (str(exc) if isinstance(exc, TaskError)
                    else f"{type(exc).__name__}: {exc}"),
        "traceback": traceback.format_exc(),
    }
    if isinstance(exc, TaskError):
        info["fn"] = exc.fn
        info["kwargs"] = exc.kwargs
    return info


@dataclass
class _Outcome:
    """Terminal state of one task inside :func:`_run_pool`."""

    value: Any = None
    failure: dict | None = None


def _dispatch_order(keys: list[str],
                    hints: Mapping[str, float]) -> list[int]:
    """Submission indices, longest-expected-first.

    Tasks without a recorded timing dispatch first — an unknown cell
    could be the longest, and starting it late is the worst case —
    then known cells longest-first; ties keep submission order.
    """
    def rank(index: int) -> tuple:
        hint = hints.get(keys[index])
        if hint is None:
            return (0, 0.0, index)
        return (1, -float(hint), index)

    return sorted(range(len(keys)), key=rank)


def _worker_main(worker_id: int, task_queue: Any, result_queue: Any,
                 handle: Any) -> None:
    """Long-lived worker loop: attach the atom store once, then serve.

    Replies ``("done", worker id, index, ok, payload, seconds)`` per
    task; a ``None`` sentinel shuts the worker down.  Results pickle
    with attached atoms externalised back to digests, so bulk data
    never travels the result pipe either.
    """
    from .shm import AtomClient
    client = AtomClient(handle)
    while True:
        item = task_queue.get()
        if item is None:
            break
        index, payload = item
        start = time.perf_counter()
        try:
            task = loads_with_atoms(payload, client.get)
            value = _invoke(task)
            body = dumps_with_atoms(value, client.index)
            ok = True
        except Exception as exc:
            body = pickle.dumps(_failure_info(exc), protocol=_PROTOCOL)
            ok = False
        result_queue.put(("done", worker_id, index, ok, body,
                          time.perf_counter() - start))


def _run_pool(task_list: list[Task], workers: int, context: Any,
              cost_hints: Mapping[str, float] | None = None,
              stats: PoolStats | None = None,
              fail_fast: bool = True) -> list["_Outcome | None"]:
    """Drive tasks across persistent workers; one outcome per index.

    The engine behind :func:`run_tasks`'s parallel path, split out so
    the property suite can run it with an injected thread-backed
    ``context`` and inspect every outcome without the raise-on-first-
    failure policy (``fail_fast=False`` keeps dispatching after a
    failure).  Each worker has a private task queue, so the parent
    always knows which task a crashed worker was running; ``None``
    outcomes are tasks never attempted (dispatch aborted first).
    """
    global _LAST_STATS
    hints = dict(cost_hints) if cost_hints is not None \
        else dict(_COST_HINTS)
    if stats is None:
        stats = PoolStats()
    stats.workers = workers
    keys = [task_cost_key(task.fn, task.kwargs) for task in task_list]
    order = deque(_dispatch_order(keys, hints))
    outcomes: list[_Outcome | None] = [None] * len(task_list)
    start_wall = time.perf_counter()
    atom_store = SharedAtomStore()
    result_queue = context.Queue()
    procs: dict[int, Any] = {}
    queues: dict[int, Any] = {}
    try:
        atoms: list[Any] = []
        for task in task_list:
            atoms.extend(collect_shareable_atoms(task.kwargs))
        atom_store.publish(atoms)
        stats.shm_bytes = atom_store.segment_bytes
        payloads: dict[int, bytes] = {}
        for index, task in enumerate(task_list):
            try:
                payloads[index] = dumps_with_atoms(task,
                                                   atom_store.index)
            except (pickle.PicklingError, AttributeError,
                    TypeError) as exc:
                described = _describe_kwargs(task.kwargs)
                raise TaskError(
                    f"task {task.fn!r} cannot be shipped to a worker: "
                    f"{exc}\n  kwargs: {described}",
                    fn=task.fn, kwargs=described) from exc
        handle = atom_store.handle()

        pending = set(range(len(task_list)))
        assigned: dict[int, int] = {}  # worker id -> in-flight index
        idle: deque[int] = deque()
        next_worker_id = 0
        respawn_budget = workers + len(task_list)
        aborted = False

        def spawn() -> None:
            nonlocal next_worker_id
            wid = next_worker_id
            next_worker_id += 1
            task_queue = context.Queue()
            proc = context.Process(
                target=_worker_main,
                args=(wid, task_queue, result_queue, handle),
                daemon=True)
            proc.start()
            procs[wid] = proc
            queues[wid] = task_queue
            idle.append(wid)

        def abort() -> None:
            nonlocal aborted
            aborted = True
            while order:  # never-attempted tasks stay None
                pending.discard(order.popleft())

        def dispatch() -> None:
            while order and idle and not aborted:
                wid = idle.popleft()
                if wid not in procs:
                    continue
                index = order.popleft()
                payload = payloads.pop(index)
                stats.ipc_task_bytes += len(payload)
                assigned[wid] = index
                queues[wid].put((index, payload))

        def reap() -> None:
            for wid, proc in list(procs.items()):
                if proc.is_alive():
                    continue
                del procs[wid]
                try:
                    idle.remove(wid)
                except ValueError:
                    pass
                index = assigned.pop(wid, None)
                if index is not None and index in pending:
                    task = task_list[index]
                    outcomes[index] = _Outcome(failure={
                        "message": (
                            f"worker {wid} died (exit code "
                            f"{getattr(proc, 'exitcode', None)}) while "
                            f"running task {task.fn!r}"),
                        "fn": task.fn,
                        "kwargs": _describe_kwargs(task.kwargs)})
                    pending.discard(index)
                    if fail_fast:
                        abort()
            nonlocal respawn_budget
            while (not aborted and respawn_budget > 0
                   and len(procs) < min(workers, len(pending))):
                spawn()
                respawn_budget -= 1
                stats.respawns += 1
            if not procs and pending:
                # respawn budget exhausted (or aborted with casualties
                # in flight): nothing left to run the remaining tasks
                for index in sorted(pending):
                    if outcomes[index] is None:
                        task = task_list[index]
                        outcomes[index] = _Outcome(failure={
                            "message": (
                                f"worker pool lost every worker; task "
                                f"{task.fn!r} never completed"),
                            "fn": task.fn,
                            "kwargs": _describe_kwargs(task.kwargs)})
                    pending.discard(index)

        for _ in range(workers):
            spawn()
        dispatch()
        while pending:
            try:
                message = result_queue.get(timeout=_POLL_SECONDS)
            except queue_lib.Empty:
                reap()
                dispatch()
                continue
            _, wid, index, ok, body, seconds = message
            assigned.pop(wid, None)
            if wid in procs:
                idle.append(wid)
            if index in pending:
                stats.tasks += 1
                stats.ipc_result_bytes += len(body)
                stats.busy_seconds[wid] = (
                    stats.busy_seconds.get(wid, 0.0) + seconds)
                stats.worker_tasks[wid] = (
                    stats.worker_tasks.get(wid, 0) + 1)
                stats.task_seconds[keys[index]] = seconds
                if ok:
                    try:
                        value = loads_with_atoms(body, atom_store.get)
                    except Exception as exc:
                        outcomes[index] = _Outcome(failure={
                            "message": (
                                f"cannot deserialise the result of "
                                f"task {task_list[index].fn!r}: {exc}"),
                            "fn": task_list[index].fn})
                    else:
                        outcomes[index] = _Outcome(value=value)
                else:
                    outcomes[index] = _Outcome(
                        failure=pickle.loads(body))
                pending.discard(index)
                failed = outcomes[index].failure is not None
                if failed and fail_fast:
                    abort()
            dispatch()
        return outcomes
    finally:
        for wid in list(procs):
            try:
                queues[wid].put(None)
            except Exception:  # pragma: no cover - teardown races
                pass
        # drain stragglers so worker queue feeders never block on exit
        while True:
            try:
                result_queue.get_nowait()
            except Exception:
                break
        deadline = time.perf_counter() + _JOIN_SECONDS
        for proc in procs.values():
            proc.join(timeout=max(deadline - time.perf_counter(), 0.1))
            if proc.is_alive():
                terminate = getattr(proc, "terminate", None)
                if terminate is not None:  # pragma: no cover
                    terminate()
                    proc.join(timeout=1.0)
        stats.wall_seconds = time.perf_counter() - start_wall
        atom_store.close()
        _LAST_STATS = stats
