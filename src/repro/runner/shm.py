"""Zero-copy publication of immutable atoms over shared memory.

The parallel runner used to re-pickle every task's full kwargs into each
worker — including, for warm-start sweeps, the multi-megabyte TPC-H
column arrays a :class:`~repro.sim.state.SimState` capture shares across
all of its forks.  This module ships that bulk data across the process
boundary **once per run** instead of once per task:

* :class:`SharedAtomStore` (parent side) writes each distinct atom into
  a ``multiprocessing.shared_memory`` segment, content-addressed by
  :func:`repro.atoms.atom_digest` so equal atoms are published once no
  matter how many tasks reference them.  Numpy arrays are copied into
  segments raw; other atoms (the dataset object, large snapshot
  payloads) are pickled with already-published atoms externalised by
  digest.  Atoms below :data:`MIN_SEGMENT_BYTES` travel inline in the
  handle — a page-granular segment would cost more than it saves.
* :class:`ShippedAtoms` is the small picklable handle a worker needs to
  attach everything; it crosses the boundary once, at worker start.
* :class:`AtomClient` (worker side) reconstructs the atoms: array
  segments become **read-only zero-copy views** (``np.memmap`` over the
  segment's ``/dev/shm`` file where available, a tracker-safe
  ``SharedMemory`` attach elsewhere); pickled atoms resolve their digest
  references against the views.
* :func:`dumps_with_atoms` / :func:`loads_with_atoms` are the transport
  picklers: tasks and results serialise with every published atom
  replaced by its digest, so a forked warm-start cell ships kilobytes.

The parent creates segments, the parent unlinks them
(:meth:`SharedAtomStore.close`, exception paths included via the
context-manager protocol); workers only ever attach.  Attaching through
``SharedMemory`` also registers the segment with this interpreter's
``resource_tracker`` (there is no opt-out on the supported Pythons), so
the client immediately unregisters — otherwise every worker's tracker
would try to unlink the parent's segments at exit and warn about leaks
that are not.
"""

from __future__ import annotations

import io
import itertools
import os
import pickle
from collections.abc import Callable, Iterable, Mapping
from dataclasses import dataclass
from multiprocessing import shared_memory
from pathlib import Path
from typing import Any

import numpy as np

from ..atoms import atom_hexdigest
from ..errors import ReproError
from ..sim.state import SimState

#: atoms smaller than this ship inline in the handle: a shared-memory
#: segment is page-granular and costs an attach per worker
MIN_SEGMENT_BYTES = 4096

#: kwargs nesting depth scanned for shareable atoms
_SCAN_DEPTH = 3

#: process-wide segment sequence — segment names must be unique per
#: store *and* across concurrent runs (names are global to the host)
_SEGMENT_SEQ = itertools.count()

#: where the POSIX implementation backs segments; mapping the file
#: directly keeps workers out of the resource tracker entirely
_SHM_DIR = Path("/dev/shm")


@dataclass(frozen=True)
class _AtomEntry:
    """One published atom: where it lives and how to rebuild it."""

    #: ``"array"`` (raw ndarray buffer), ``"bytes"`` or ``"pickle"``
    kind: str
    #: hex content digest — the persistent-id namespace
    digest: str
    #: shared-memory segment name, or ``None`` when ``data`` is inline
    segment: str | None
    #: inline payload for sub-:data:`MIN_SEGMENT_BYTES` atoms
    data: bytes | None
    dtype: str | None
    shape: tuple[int, ...] | None
    nbytes: int


@dataclass(frozen=True)
class ShippedAtoms:
    """The picklable handle workers attach the whole store from.

    Entries are ordered so that every ``pickle`` entry only references
    digests of entries before it (arrays and bytes publish first).
    """

    entries: tuple[_AtomEntry, ...] = ()


class _AtomPickler(pickle.Pickler):
    """Pickler externalising published atoms by identity -> digest."""

    def __init__(self, file: io.BytesIO, index: Mapping[int, str]):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._index = index

    def persistent_id(self, obj: Any) -> str | None:
        return self._index.get(id(obj))


class _AtomUnpickler(pickle.Unpickler):
    """Unpickler resolving digest references back to atoms."""

    def __init__(self, file: io.BytesIO,
                 lookup: Callable[[str], Any]):
        super().__init__(file)
        self._lookup = lookup

    def persistent_load(self, pid: Any) -> Any:
        return self._lookup(pid)


def dumps_with_atoms(value: Any, index: Mapping[int, str]) -> bytes:
    """Pickle ``value`` with every indexed atom replaced by its digest."""
    buffer = io.BytesIO()
    _AtomPickler(buffer, index).dump(value)
    return buffer.getvalue()


def loads_with_atoms(data: bytes, lookup: Callable[[str], Any]) -> Any:
    """Unpickle :func:`dumps_with_atoms` output against an atom source."""
    return _AtomUnpickler(io.BytesIO(data), lookup).load()


def _is_shareable_array(atom: Any) -> bool:
    """Raw-buffer publishable: a real ndarray without object fields."""
    return (isinstance(atom, np.ndarray)
            and not atom.dtype.hasobject)


def collect_shareable_atoms(value: Any,
                            _depth: int = 0) -> list[Any]:
    """Bulk immutable atoms reachable from one task's kwargs.

    :class:`~repro.sim.state.SimState` captures contribute their shared
    atom tuple *and* their payload bytes (the pickled graph is itself
    identical across a sweep's cells, so it too ships once); bare numpy
    arrays in the kwargs tree count as well.  Containers are scanned a
    few levels deep — task kwargs are shallow by construction.
    """
    if isinstance(value, SimState):
        atoms = list(value.shared)
        atoms.append(value.payload)
        return atoms
    if isinstance(value, np.ndarray):
        return [value]
    if _depth >= _SCAN_DEPTH:
        return []
    found: list[Any] = []
    if isinstance(value, Mapping):
        for item in value.values():
            found.extend(collect_shareable_atoms(item, _depth + 1))
    elif isinstance(value, (list, tuple)):
        for item in value:
            found.extend(collect_shareable_atoms(item, _depth + 1))
    return found


class SharedAtomStore:
    """Parent-side store: publish atoms once, unlink them at the end."""

    def __init__(self) -> None:
        self._entries: list[_AtomEntry] = []
        self._segments: list[shared_memory.SharedMemory] = []
        self._atoms: dict[str, Any] = {}
        self._index: dict[int, str] = {}

    # ------------------------------------------------------------------
    # publishing

    def publish(self, atoms: Iterable[Any]) -> None:
        """Publish every distinct atom (deduplicated by content digest).

        Arrays and byte strings publish first; everything else pickles
        afterwards with the already-published atoms externalised, so a
        dataset object that owns the column arrays serialises to a
        skeleton of digest references instead of a second copy of the
        data.
        """
        deferred: list[tuple[Any, str]] = []
        for atom in atoms:
            digest = atom_hexdigest(atom)
            if digest in self._atoms:
                self._index.setdefault(id(atom), digest)
                continue
            if _is_shareable_array(atom):
                self._publish_array(atom, digest)
            elif isinstance(atom, (bytes, bytearray)):
                self._publish_blob("bytes", bytes(atom), digest,
                                   atom=atom)
            else:
                deferred.append((atom, digest))
        for atom, digest in deferred:
            if digest in self._atoms:  # duplicate within this batch
                self._index.setdefault(id(atom), digest)
                continue
            buffer = io.BytesIO()
            _AtomPickler(buffer, self._index).dump(atom)
            self._publish_blob("pickle", buffer.getvalue(), digest,
                               atom=atom)

    def _register(self, entry: _AtomEntry, atom: Any) -> None:
        self._entries.append(entry)
        self._atoms[entry.digest] = atom
        self._index[id(atom)] = entry.digest

    def _publish_array(self, arr: np.ndarray, digest: str) -> None:
        if arr.nbytes < MIN_SEGMENT_BYTES:
            self._register(_AtomEntry(
                kind="array", digest=digest, segment=None,
                data=arr.tobytes(), dtype=arr.dtype.str,
                shape=tuple(arr.shape), nbytes=arr.nbytes), arr)
            return
        segment = self._create_segment(arr.nbytes, digest)
        view = np.ndarray(arr.shape, dtype=arr.dtype,
                          buffer=segment.buf)
        try:
            view[...] = arr
        finally:
            del view  # release the exported buffer before close()
        segment.close()
        self._register(_AtomEntry(
            kind="array", digest=digest, segment=segment.name,
            data=None, dtype=arr.dtype.str, shape=tuple(arr.shape),
            nbytes=arr.nbytes), arr)

    def _publish_blob(self, kind: str, data: bytes, digest: str,
                      atom: Any) -> None:
        if len(data) < MIN_SEGMENT_BYTES:
            self._register(_AtomEntry(
                kind=kind, digest=digest, segment=None, data=data,
                dtype=None, shape=None, nbytes=len(data)), atom)
            return
        segment = self._create_segment(len(data), digest)
        segment.buf[:len(data)] = data
        segment.close()
        self._register(_AtomEntry(
            kind=kind, digest=digest, segment=segment.name, data=None,
            dtype=None, shape=None, nbytes=len(data)), atom)

    def _create_segment(self, size: int,
                        digest: str) -> shared_memory.SharedMemory:
        # short names: macOS caps POSIX shm names at 31 characters
        name = f"repro_{os.getpid():x}_{next(_SEGMENT_SEQ)}_{digest[:8]}"
        segment = shared_memory.SharedMemory(name=name, create=True,
                                             size=size)
        self._segments.append(segment)
        return segment

    # ------------------------------------------------------------------
    # parent-side access

    @property
    def index(self) -> Mapping[int, str]:
        """id(atom) -> digest, for :func:`dumps_with_atoms`."""
        return self._index

    def get(self, digest: str) -> Any:
        """The parent-side atom behind a digest reference."""
        try:
            return self._atoms[digest]
        except KeyError:
            raise ReproError(
                f"result references unpublished atom {digest[:12]}…") \
                from None

    def handle(self) -> ShippedAtoms:
        """The picklable attach handle for workers."""
        return ShippedAtoms(entries=tuple(self._entries))

    @property
    def segment_bytes(self) -> int:
        """Bytes published into shared-memory segments."""
        return sum(entry.nbytes for entry in self._entries
                   if entry.segment is not None)

    # ------------------------------------------------------------------
    # lifecycle

    def close(self) -> None:
        """Close and unlink every segment (idempotent, exception-safe)."""
        for segment in self._segments:
            try:
                segment.close()
            except BufferError:  # pragma: no cover - defensive
                pass
            try:
                _track(segment)  # balance a client unregister, if any
                segment.unlink()
            except FileNotFoundError:
                pass
        self._segments.clear()
        self._entries.clear()
        self._atoms.clear()
        self._index.clear()

    def __enter__(self) -> "SharedAtomStore":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def _track(segment: shared_memory.SharedMemory) -> None:
    """Re-register with the resource tracker before unlinking."""
    try:
        from multiprocessing import resource_tracker
        resource_tracker.register(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


def _untrack(segment: shared_memory.SharedMemory) -> None:
    """Undo the attach-time resource-tracker registration."""
    try:
        from multiprocessing import resource_tracker
        resource_tracker.unregister(segment._name, "shared_memory")
    except Exception:  # pragma: no cover - tracker internals vary
        pass


class AtomClient:
    """Worker-side attach: rebuild every shipped atom, never unlink.

    Array segments become read-only zero-copy views; attached segments
    are intentionally **never closed** here — numpy views export their
    buffers for the worker's whole life, and the parent owns unlinking.
    """

    def __init__(self, handle: ShippedAtoms):
        self._atoms: dict[str, Any] = {}
        self._index: dict[int, str] = {}
        self._segments: list[shared_memory.SharedMemory] = []
        # arrays and bytes first: pickle entries reference them
        for entry in handle.entries:
            if entry.kind != "pickle":
                self._materialise(entry)
        for entry in handle.entries:
            if entry.kind == "pickle":
                self._materialise(entry)

    def _materialise(self, entry: _AtomEntry) -> None:
        if entry.kind == "array":
            value: Any = self._attach_array(entry)
        elif entry.kind == "bytes":
            value = self._blob(entry)
        elif entry.kind == "pickle":
            value = loads_with_atoms(self._blob(entry), self.get)
        else:
            raise ReproError(f"unknown atom entry kind {entry.kind!r}")
        self._atoms[entry.digest] = value
        self._index[id(value)] = entry.digest

    def _attach_array(self, entry: _AtomEntry) -> np.ndarray:
        dtype = np.dtype(entry.dtype)
        if entry.segment is None:
            flat = np.frombuffer(entry.data or b"", dtype=dtype)
        else:
            path = _SHM_DIR / entry.segment
            count = entry.nbytes // dtype.itemsize
            if path.is_file():
                flat = np.memmap(path, dtype=dtype, mode="r",
                                 shape=(count,))
            else:  # non-POSIX fallback: attach, then untrack
                segment = shared_memory.SharedMemory(name=entry.segment)
                self._segments.append(segment)
                _untrack(segment)
                flat = np.frombuffer(segment.buf, dtype=dtype,
                                     count=count)
        shape = entry.shape if entry.shape is not None else flat.shape
        arr = flat.reshape(shape)
        arr.flags.writeable = False
        return arr

    def _blob(self, entry: _AtomEntry) -> bytes:
        if entry.segment is None:
            return entry.data or b""
        path = _SHM_DIR / entry.segment
        if path.is_file():
            return path.read_bytes()[:entry.nbytes]
        segment = shared_memory.SharedMemory(name=entry.segment)
        try:
            return bytes(segment.buf[:entry.nbytes])
        finally:
            _untrack(segment)
            segment.close()

    # ------------------------------------------------------------------

    @property
    def index(self) -> Mapping[int, str]:
        """id(atom) -> digest, for externalising worker results."""
        return self._index

    def get(self, digest: str) -> Any:
        """The attached atom behind a digest reference."""
        try:
            return self._atoms[digest]
        except KeyError:
            raise ReproError(
                f"task references unpublished atom {digest[:12]}…") \
                from None
