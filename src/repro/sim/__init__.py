"""Discrete-event simulation core.

The simulator is a classic event-heap design: components schedule callbacks
at absolute simulated times, the engine pops them in order and advances the
clock.  Everything above this layer (hardware, OS, database, controller) is
written against :class:`~repro.sim.engine.Simulator`.
"""

from .engine import Event, Simulator, delivered_total
from .export import dump_records, dump_tracer, load_records
from .process import ProcessHandle, every, spawn_process
from .state import SimState, register_global_state
from .tracing import (
    ControllerTick,
    CoreAllocation,
    MigrationRecord,
    PlacementRecord,
    QueryRecord,
    StageRecord,
    TraceRecorder,
    TransitionRecord,
)

__all__ = [
    "Event",
    "Simulator",
    "SimState",
    "register_global_state",
    "delivered_total",
    "spawn_process",
    "ProcessHandle",
    "every",
    "dump_records",
    "dump_tracer",
    "load_records",
    "TraceRecorder",
    "PlacementRecord",
    "MigrationRecord",
    "TransitionRecord",
    "CoreAllocation",
    "ControllerTick",
    "QueryRecord",
    "StageRecord",
]
