"""Calendar-queue discrete-event simulator.

Design notes
------------
* Time is a float in **seconds**.  Events scheduled at equal times are
  delivered in scheduling order (a monotone sequence number breaks ties), so
  runs are fully deterministic.
* Cancellation is *lazy*: :meth:`Simulator.cancel` marks the event and the
  main loop discards it when popped.  This keeps scheduling O(1) without
  queue surgery.
* The engine knows nothing about the domain; components close over whatever
  state they need and hand plain callables to :meth:`Simulator.schedule`.

Tiered calendar queue
---------------------
The first implementations kept one global binary heap of events; every
schedule and pop paid ``O(log n)`` sifts through Python-level
``Event.__lt__`` calls.  Simulated workloads are overwhelmingly
*near-future* and *clustered*: scheduler quanta, balance ticks and chunk
completions all land within a few tick quanta of ``now``, and many share
an exact timestamp (a chunk fan-out scheduled in one loop iteration).
The queue is therefore tiered:

* **Near tier** — a calendar of exact-timestamp buckets:
  ``dict[time -> list[Event]]`` plus a heap of the *distinct* times.
  Scheduling into an existing bucket is one dict probe and an append —
  O(1) — and the time-heap sifts compare raw floats in C instead of
  calling ``Event.__lt__``.  Because the sequence counter is monotone,
  appends keep every bucket sorted by ``seq`` for free, and the dispatch
  loop **batch-dequeues a whole bucket per pop**: one heap operation
  delivers every event sharing that timestamp.
* **Far tier** — a plain heap of ``(time, seq, event)`` tuples for
  events beyond the near *horizon* (irregular, far-future work: idle
  tails, client think times).  When the near tier drains, the horizon
  advances by ``near_span`` — sized to cover a burst of scheduler tick
  quanta — and due far events migrate into calendar buckets in
  ``(time, seq)`` order, which preserves bucket ordering exactly.

Batch dispatch contract: all events sharing a timestamp are delivered
back-to-back in scheduling (``seq``) order before time advances.  A
callback that schedules *at the current time* appends to the live bucket
and is delivered in the same batch, after everything already queued —
precisely the order the global heap produced.  Delivery order,
tie-breaking, lazy-cancel semantics and error cases are bit-identical to
the seed heap implementation; ``tests/test_props_sim_fastpath.py`` and
``tests/test_props_calendar_queue.py`` pin the equivalence against a
straight reimplementation of the original loop, and the golden traces
pin it end-to-end.

Compaction note: heavy cancellation still leaks dead cells until popped;
past the same threshold as the seed heap (``>= 64`` dead and more dead
than half the live count) the queue rebuilds without them.  Mid-run the
rebuild is deferred to the next bucket boundary — the dispatch loop
holds a reference into the live bucket — which is invisible from
outside: compaction never changes delivery order, only memory shape.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from collections.abc import Callable
from typing import Any

from ..errors import SimulationError

#: events delivered by every Simulator in this process (host telemetry
#: for ``repro bench``; deliberately not part of any snapshot)
_DELIVERED_TOTAL = 0

#: compaction floor: below this many dead cells the queue is left alone
#: (tiny queues churn more from rebuilding than from skipping)
_COMPACT_MIN_DEAD = 64

#: default near-tier horizon extent in simulated seconds: a dozen or so
#: scheduler tick quanta (0.004 s) / a few balance intervals (0.02 s),
#: so periodic timers and chunk completions land in calendar buckets
#: and only genuinely far-future work falls back to the heap tier
_NEAR_SPAN = 0.05


def delivered_total() -> int:
    """Events delivered process-wide since interpreter start."""
    return _DELIVERED_TOTAL


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Instances order by ``(time, seq)``; the far tier wraps them in
    ``(time, seq, event)`` tuples so heap sifts compare in C.  The
    public surface is :attr:`time`, :attr:`cancelled` and :meth:`cancel`
    via the simulator.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "delivered")

    def __init__(self, time: float, seq: int,
                 fn: Callable[..., Any], args: tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: set once the loop has popped and invoked the event; guards the
        #: live counter against cancel-after-delivery
        self.delivered = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Simulator:
    """The event loop.  One instance drives one experiment."""

    def __init__(self, near_span: float = _NEAR_SPAN) -> None:
        #: near tier: exact-timestamp calendar buckets, each a list of
        #: events in scheduling (seq) order
        self._buckets: dict[float, list[Event]] = {}
        #: heap of the distinct bucket times (invariant: exactly the
        #: keys of ``_buckets``, no duplicates)
        self._times: list[float] = []
        #: far tier: ``(time, seq, event)`` tuples beyond the horizon
        self._far: list[tuple[float, int, Event]] = []
        #: events at or below this absolute time go into buckets
        self._horizon = near_span
        self._span = near_span
        self._now = 0.0
        self._seq = 0
        self._running = False
        #: not-yet-cancelled events still queued (kept exact so
        #: :meth:`pending` never has to scan the queue)
        self._live = 0
        #: cancelled events still physically queued (lazy cancellation
        #: leaks these until popped or compacted away)
        self._dead = 0
        #: compaction requested mid-dispatch; honoured at the next
        #: bucket boundary (the loop holds a live bucket reference)
        self._compact_pending = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}")
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        self._enqueue(event)
        self._live += 1
        return event

    def _enqueue(self, event: Event) -> None:
        """Route one fresh-keyed event to its tier."""
        time = event.time
        if time <= self._horizon:
            bucket = self._buckets.get(time)
            if bucket is None:
                self._buckets[time] = [event]
                heappush(self._times, time)
            else:
                bucket.append(event)
        else:
            heappush(self._far, (time, event.seq, event))

    def reschedule(self, event: Event, delay: float) -> Event:
        """Re-arm a *delivered or cancelled* event ``delay`` seconds out.

        The allocation-free path for periodic timers: a delivered
        :class:`Event` cell is requeued with a fresh deadline and a
        fresh sequence number, so ordering semantics are exactly those
        of :meth:`schedule` with the same callback.  A *cancelled* event
        is still physically queued at its old key (cancellation is
        lazy), so it cannot be revived in place — the dead cell is left
        to be skipped on pop and a fresh event with the same callback is
        scheduled.  Always use the returned event for further
        cancel/reschedule calls.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        if event.cancelled:
            return self.schedule(delay, event.fn, *event.args)
        if not event.delivered:
            raise SimulationError(
                "cannot reschedule an event that is still queued")
        self._seq += 1
        event.time = self._now + delay
        event.seq = self._seq
        event.cancelled = False
        event.delivered = False
        self._enqueue(event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Mark ``event`` so it is dropped instead of delivered."""
        if not (event.cancelled or event.delivered):
            event.cancelled = True
            self._live -= 1
            self._dead += 1
            # queue hygiene: once dead cells outnumber half the live
            # ones (and there are enough to matter), rebuild without
            # them — long runs with heavy cancellation otherwise drag a
            # tail of garbage through every dispatch
            if (self._dead >= _COMPACT_MIN_DEAD
                    and self._dead * 2 > self._live):
                if self._running:
                    self._compact_pending = True
                else:
                    self._compact()

    def _compact(self) -> None:
        """Drop cancelled cells and rebuild both tiers, in place.

        In place because :meth:`run` holds local references to the
        bucket dict and time heap.  Event keys ``(time, seq)`` are
        unique, so the pop order of the rebuilt queue — and every golden
        trace — is bit-identical to the lazy-skip path it replaces.
        """
        buckets = self._buckets
        for time in list(buckets):
            bucket = buckets[time]
            bucket[:] = [event for event in bucket if not event.cancelled]
            if not bucket:
                del buckets[time]
        self._times[:] = buckets
        heapify(self._times)
        self._far[:] = [cell for cell in self._far
                        if not cell[2].cancelled]
        heapify(self._far)
        self._dead = 0
        self._compact_pending = False

    def _advance_horizon(self) -> None:
        """Near tier drained: slide the horizon and migrate due events.

        The far heap pops in ``(time, seq)`` order, so appends land in
        every bucket already sorted by sequence number — the batch
        dispatch contract survives migration unchanged.
        """
        far = self._far
        horizon = far[0][0] + self._span
        buckets = self._buckets
        times = self._times
        while far and far[0][0] <= horizon:
            time, _seq, event = heappop(far)
            bucket = buckets.get(time)
            if bucket is None:
                buckets[time] = [event]
                heappush(times, time)
            else:
                bucket.append(event)
        self._horizon = horizon

    def _queued(self) -> int:
        """Events physically queued, dead cells included (test hook)."""
        return sum(map(len, self._buckets.values())) + len(self._far)

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1)."""
        return self._live

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        buckets = self._buckets
        times = self._times
        while True:
            while times:
                time = times[0]
                bucket = buckets[time]
                drop = 0
                n = len(bucket)
                while drop < n and bucket[drop].cancelled:
                    drop += 1
                if drop:
                    del bucket[:drop]
                    self._dead -= drop
                if bucket:
                    return time
                del buckets[time]
                heappop(times)
            if not self._far:
                return None
            self._advance_horizon()

    def step(self) -> bool:
        """Deliver the next event.  Returns ``False`` when none remain."""
        global _DELIVERED_TOTAL
        if self.peek_time() is None:
            return False
        time = self._times[0]
        bucket = self._buckets[time]
        event = bucket.pop(0)
        if not bucket:
            del self._buckets[time]
            heappop(self._times)
        self._live -= 1
        event.delivered = True
        self._now = time
        event.fn(*event.args)
        _DELIVERED_TOTAL += 1
        return True

    def run(self, until: float | None = None,
            max_events: int | None = None) -> int:
        """Run the loop.

        Parameters
        ----------
        until:
            Stop once simulated time would pass this bound (events exactly at
            ``until`` are still delivered).
        max_events:
            Safety valve against runaway simulations.

        Returns
        -------
        int
            Number of events delivered.
        """
        global _DELIVERED_TOTAL
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        delivered = 0
        # the batch dispatch loop: one time-heap pop delivers a whole
        # same-timestamp bucket, all through locals.  Callbacks may
        # append to the live bucket (zero-delay schedules, re-armed
        # timers); the index loop re-reads the length so those are
        # delivered in the same batch, in seq order.
        buckets = self._buckets
        times = self._times
        try:
            while True:
                # the cap is checked before the bound clamp: a capped-out
                # run must not advance the clock to ``until`` (seed order)
                if max_events is not None and delivered >= max_events:
                    break
                if self._compact_pending:
                    self._compact()
                if not times:
                    if not self._far:
                        break
                    self._advance_horizon()
                    continue
                time = times[0]
                if until is not None and time > until:
                    # all queued times sit at or past the bucket
                    # minimum, so any live event lies beyond the bound
                    if self._live:
                        self._now = until
                    break
                bucket = buckets[time]
                i = 0
                dead = 0
                while i < len(bucket):
                    event = bucket[i]
                    if event.cancelled:
                        i += 1
                        dead += 1
                        continue
                    if max_events is not None and delivered >= max_events:
                        break
                    i += 1
                    self._live -= 1
                    event.delivered = True
                    self._now = time
                    event.fn(*event.args)
                    delivered += 1
                self._dead -= dead
                if i < len(bucket):
                    # max_events tripped mid-bucket: drop the consumed
                    # prefix and leave the rest for the next run() call
                    del bucket[:i]
                    break
                del buckets[time]
                heappop(times)
        finally:
            self._running = False
            _DELIVERED_TOTAL += delivered
        return delivered

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Drain every event; convenience wrapper over :meth:`run`."""
        return self.run(max_events=max_events)

    # ------------------------------------------------------------------
    # snapshot / fork

    def snapshot(self, root: Any = None, shared: tuple = ()):
        """Capture this simulation for later forking.

        ``root`` widens the capture to a larger graph containing the
        simulator (a whole system under test); by default only the
        simulator itself — calendar, clock, sequence and live counters,
        and everything reachable through queued callbacks — is captured.
        ``shared`` externalises immutable atoms by identity (see
        :class:`~repro.sim.state.SimState`).  Not callable from inside
        the dispatch loop: a mid-delivery queue has no consistent state.
        """
        if self._running:
            raise SimulationError("cannot snapshot while run() is active")
        from .state import SimState
        return SimState.capture(self if root is None else root,
                                shared=shared)

    @staticmethod
    def restore(state) -> Any:
        """Fork a captured graph; see :meth:`SimState.restore`."""
        return state.restore()
