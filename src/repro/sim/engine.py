"""Event-heap discrete-event simulator.

Design notes
------------
* Time is a float in **seconds**.  Events scheduled at equal times are
  delivered in scheduling order (a monotone sequence number breaks ties), so
  runs are fully deterministic.
* Cancellation is *lazy*: :meth:`Simulator.cancel` marks the event and the
  main loop discards it when popped.  This keeps scheduling O(log n) without
  heap surgery.
* The engine knows nothing about the domain; components close over whatever
  state they need and hand plain callables to :meth:`Simulator.schedule`.
"""

from __future__ import annotations

import heapq
from collections.abc import Callable
from typing import Any

from ..errors import SimulationError


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Instances order by ``(time, seq)`` so :mod:`heapq` can manage them
    directly.  The public surface is :attr:`time`, :attr:`cancelled` and
    :meth:`cancel` via the simulator.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int,
                 fn: Callable[..., Any], args: tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Simulator:
    """The event loop.  One instance drives one experiment."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._now = 0.0
        self._seq = 0
        self._running = False

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}")
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        heapq.heappush(self._heap, event)
        return event

    def cancel(self, event: Event) -> None:
        """Mark ``event`` so it is dropped instead of delivered."""
        event.cancelled = True

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued."""
        return sum(1 for e in self._heap if not e.cancelled)

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def step(self) -> bool:
        """Deliver the next event.  Returns ``False`` when none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            event.fn(*event.args)
            return True
        return False

    def run(self, until: float | None = None,
            max_events: int | None = None) -> int:
        """Run the loop.

        Parameters
        ----------
        until:
            Stop once simulated time would pass this bound (events exactly at
            ``until`` are still delivered).
        max_events:
            Safety valve against runaway simulations.

        Returns
        -------
        int
            Number of events delivered.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        delivered = 0
        try:
            while True:
                if max_events is not None and delivered >= max_events:
                    break
                next_time = self.peek_time()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if self.step():
                    delivered += 1
        finally:
            self._running = False
        return delivered

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Drain every event; convenience wrapper over :meth:`run`."""
        return self.run(max_events=max_events)
