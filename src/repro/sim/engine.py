"""Event-heap discrete-event simulator.

Design notes
------------
* Time is a float in **seconds**.  Events scheduled at equal times are
  delivered in scheduling order (a monotone sequence number breaks ties), so
  runs are fully deterministic.
* Cancellation is *lazy*: :meth:`Simulator.cancel` marks the event and the
  main loop discards it when popped.  This keeps scheduling O(log n) without
  heap surgery.
* The engine knows nothing about the domain; components close over whatever
  state they need and hand plain callables to :meth:`Simulator.schedule`.

Fast path
---------
The dispatch loop in :meth:`Simulator.run` is the innermost loop of every
experiment, so it is written against locals rather than attributes and
fuses the peek (skip cancelled, check the ``until`` bound) with the pop —
one heap operation per delivered event instead of the peek-then-step
double scan the first implementation did.  Three supporting structures
keep the rest of the engine off the profile:

* a **live-event counter** (`_live`) incremented on schedule and
  decremented on first cancel or pop, so :meth:`pending` is O(1) instead
  of an O(n) scan of the heap;
* **timer re-arming** (:meth:`reschedule`): periodic activities (the load
  balancer, the controller's monitor tick) re-arm one existing
  :class:`Event` object instead of allocating a fresh one per tick — the
  timer-wheel trick of recycling the timer cell, without the wheel's
  bucketing (which would quantise deadlines and perturb traces).  A
  re-arm draws a fresh sequence number exactly like :meth:`schedule`, so
  delivery order — and therefore every golden trace — is bit-identical
  to the cancel-and-reschedule pattern it replaces.

Behaviour (delivery order, tie-breaking, lazy-cancel semantics, error
cases) is unchanged from the seed implementation; the property tests in
``tests/test_props_sim_fastpath.py`` pin the equivalence against a
straight reimplementation of the original loop.
"""

from __future__ import annotations

from heapq import heapify, heappop, heappush
from collections.abc import Callable
from typing import Any

from ..errors import SimulationError

#: events delivered by every Simulator in this process (host telemetry
#: for ``repro bench``; deliberately not part of any snapshot)
_DELIVERED_TOTAL = 0

#: compaction floor: below this many dead cells the heap is left alone
#: (tiny heaps churn more from rebuilding than from skipping)
_COMPACT_MIN_DEAD = 64


def delivered_total() -> int:
    """Events delivered process-wide since interpreter start."""
    return _DELIVERED_TOTAL


class Event:
    """A scheduled callback.  Returned by :meth:`Simulator.schedule`.

    Instances order by ``(time, seq)`` so :mod:`heapq` can manage them
    directly.  The public surface is :attr:`time`, :attr:`cancelled` and
    :meth:`cancel` via the simulator.
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "delivered")

    def __init__(self, time: float, seq: int,
                 fn: Callable[..., Any], args: tuple[Any, ...]):
        self.time = time
        self.seq = seq
        self.fn = fn
        self.args = args
        self.cancelled = False
        #: set once the loop has popped and invoked the event; guards the
        #: live counter against cancel-after-delivery
        self.delivered = False

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "cancelled" if self.cancelled else "pending"
        name = getattr(self.fn, "__qualname__", repr(self.fn))
        return f"<Event t={self.time:.6f} {name} {state}>"


class Simulator:
    """The event loop.  One instance drives one experiment."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._now = 0.0
        self._seq = 0
        self._running = False
        #: not-yet-cancelled events still queued (kept exact so
        #: :meth:`pending` never has to scan the heap)
        self._live = 0
        #: cancelled events still physically queued (lazy cancellation
        #: leaks these until popped or compacted away)
        self._dead = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    def schedule(self, delay: float, fn: Callable[..., Any],
                 *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any],
                    *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} before now={self._now}")
        self._seq += 1
        event = Event(time, self._seq, fn, args)
        heappush(self._heap, event)
        self._live += 1
        return event

    def reschedule(self, event: Event, delay: float) -> Event:
        """Re-arm a *delivered or cancelled* event ``delay`` seconds out.

        The allocation-free path for periodic timers: a delivered
        :class:`Event` cell is pushed back onto the heap with a fresh
        deadline and a fresh sequence number, so ordering semantics are
        exactly those of :meth:`schedule` with the same callback.  A
        *cancelled* event is still physically queued at its old key
        (cancellation is lazy), so it cannot be revived in place —
        mutating the key of an in-heap entry corrupts the heap; instead
        the dead cell is left to be skipped on pop and a fresh event with
        the same callback is scheduled.  Always use the returned event
        for further cancel/reschedule calls.
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay}s in the past")
        if event.cancelled:
            return self.schedule(delay, event.fn, *event.args)
        if not event.delivered:
            raise SimulationError(
                "cannot reschedule an event that is still queued")
        self._seq += 1
        event.time = self._now + delay
        event.seq = self._seq
        event.cancelled = False
        event.delivered = False
        heappush(self._heap, event)
        self._live += 1
        return event

    def cancel(self, event: Event) -> None:
        """Mark ``event`` so it is dropped instead of delivered."""
        if not (event.cancelled or event.delivered):
            event.cancelled = True
            self._live -= 1
            self._dead += 1
            # heap hygiene: once dead cells outnumber half the live ones
            # (and there are enough to matter), rebuild without them —
            # long runs with heavy cancellation otherwise drag a tail of
            # garbage through every sift
            if (self._dead >= _COMPACT_MIN_DEAD
                    and self._dead * 2 > self._live):
                self._compact()

    def _compact(self) -> None:
        """Drop cancelled cells and re-heapify, in place.

        In place because :meth:`run` holds a local reference to the heap
        list.  Event keys ``(time, seq)`` are unique, so the pop order of
        the rebuilt heap — and every golden trace — is bit-identical to
        the lazy-skip path it replaces.
        """
        heap = self._heap
        heap[:] = [event for event in heap if not event.cancelled]
        heapify(heap)
        self._dead = 0

    def pending(self) -> int:
        """Number of not-yet-cancelled events still queued.  O(1)."""
        return self._live

    def peek_time(self) -> float | None:
        """Time of the next live event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0].cancelled:
            heappop(heap)
            self._dead -= 1
        return heap[0].time if heap else None

    def step(self) -> bool:
        """Deliver the next event.  Returns ``False`` when none remain."""
        global _DELIVERED_TOTAL
        heap = self._heap
        while heap:
            event = heappop(heap)
            if event.cancelled:
                self._dead -= 1
                continue
            self._live -= 1
            event.delivered = True
            self._now = event.time
            event.fn(*event.args)
            _DELIVERED_TOTAL += 1
            return True
        return False

    def run(self, until: float | None = None,
            max_events: int | None = None) -> int:
        """Run the loop.

        Parameters
        ----------
        until:
            Stop once simulated time would pass this bound (events exactly at
            ``until`` are still delivered).
        max_events:
            Safety valve against runaway simulations.

        Returns
        -------
        int
            Number of events delivered.
        """
        global _DELIVERED_TOTAL
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        delivered = 0
        # the fused dispatch loop: skip-cancelled, bound-check and pop in
        # one pass over the heap head, all through locals
        heap = self._heap
        pop = heappop
        try:
            while heap:
                if max_events is not None and delivered >= max_events:
                    break
                head = heap[0]
                if head.cancelled:
                    pop(heap)
                    self._dead -= 1
                    continue
                if until is not None and head.time > until:
                    self._now = until
                    break
                pop(heap)
                self._live -= 1
                head.delivered = True
                self._now = head.time
                head.fn(*head.args)
                delivered += 1
        finally:
            self._running = False
            _DELIVERED_TOTAL += delivered
        return delivered

    def run_until_idle(self, max_events: int = 50_000_000) -> int:
        """Drain every event; convenience wrapper over :meth:`run`."""
        return self.run(max_events=max_events)

    # ------------------------------------------------------------------
    # snapshot / fork

    def snapshot(self, root: Any = None, shared: tuple = ()):
        """Capture this simulation for later forking.

        ``root`` widens the capture to a larger graph containing the
        simulator (a whole system under test); by default only the
        simulator itself — heap, clock, sequence and live counters, and
        everything reachable through queued callbacks — is captured.
        ``shared`` externalises immutable atoms by identity (see
        :class:`~repro.sim.state.SimState`).  Not callable from inside
        the dispatch loop: a mid-delivery heap has no consistent state.
        """
        if self._running:
            raise SimulationError("cannot snapshot while run() is active")
        from .state import SimState
        return SimState.capture(self if root is None else root,
                                shared=shared)

    @staticmethod
    def restore(state) -> Any:
        """Fork a captured graph; see :meth:`SimState.restore`."""
        return state.restore()
