"""Trace export/import: JSON-lines serialisation of trace records.

A recorded simulation is most useful when it can leave the process —
for plotting, for diffing two runs, for regression baselines.  Records
are dataclasses, so they serialise naturally; each line carries the
record type and its fields:

    {"type": "MigrationRecord", "time": 0.04, "thread_id": 7, ...}

``load_records`` reconstructs the typed records, so a round-trip through
disk is lossless.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib

from ..errors import ReproError
from . import tracing

#: every exportable record type, by class name — derived from
#: :mod:`repro.sim.tracing` by introspection so a record type added
#: there cannot be silently dropped on export
RECORD_TYPES = {
    cls.__name__: cls
    for cls in vars(tracing).values()
    if isinstance(cls, type) and dataclasses.is_dataclass(cls)
    and cls.__module__ == tracing.__name__
}


def dump_records(records, path) -> int:
    """Write records to ``path`` as JSON lines; returns the count.

    Unknown (non-dataclass or unregistered) records are rejected rather
    than silently skipped.
    """
    path = pathlib.Path(path)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            name = type(record).__name__
            if name not in RECORD_TYPES:
                raise ReproError(f"cannot export record type {name}")
            payload = dataclasses.asdict(record)
            payload["type"] = name
            handle.write(json.dumps(payload) + "\n")
            count += 1
    return count


def dump_tracer(tracer: tracing.TraceRecorder, path) -> int:
    """Export everything a recorder holds."""
    return dump_records(tracer.all(), path)


def load_records(path) -> list:
    """Read a JSON-lines trace back into typed records."""
    path = pathlib.Path(path)
    records = []
    with path.open("r", encoding="utf-8") as handle:
        for line_no, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                payload = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ReproError(
                    f"{path}:{line_no}: invalid JSON") from exc
            name = payload.pop("type", None)
            cls = RECORD_TYPES.get(name)
            if cls is None:
                raise ReproError(
                    f"{path}:{line_no}: unknown record type {name!r}")
            try:
                records.append(cls(**payload))
            except TypeError as exc:
                raise ReproError(
                    f"{path}:{line_no}: bad fields for {name}") from exc
    return records
