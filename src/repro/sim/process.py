"""Coroutine-style simulated activities on top of the event engine.

Periodic probes, phased drivers and other "scripted" behaviours read much
better as generators than as chains of callback re-scheduling.  A process
is a generator that *yields the number of simulated seconds to sleep*;
the runner re-schedules it after each yield:

    def sampler(os_):
        while os_.scheduler.live_threads():
            take_sample(os_)
            yield 0.1                      # sleep 100 ms

    handle = spawn_process(os_.sim, sampler(os_))
    ...
    handle.cancel()                        # optional early stop

The generator finishing (or raising ``StopIteration``) ends the process.
Yielded values must be non-negative numbers.
"""

from __future__ import annotations

from collections.abc import Generator

from ..errors import SimulationError
from .engine import Event, Simulator


class ProcessHandle:
    """Control handle for a spawned process."""

    def __init__(self, sim: Simulator, generator: Generator):
        self._sim = sim
        self._generator = generator
        self._event: Event | None = None
        self.finished = False
        self.cancelled = False
        self.steps = 0

    def _advance(self) -> None:
        self._event = None
        if self.cancelled or self.finished:
            return
        try:
            delay = next(self._generator)
        except StopIteration:
            self.finished = True
            return
        if not isinstance(delay, (int, float)) or delay < 0:
            self.finished = True
            raise SimulationError(
                f"process yielded invalid sleep {delay!r}")
        self.steps += 1
        self._event = self._sim.schedule(float(delay), self._advance)

    def cancel(self) -> None:
        """Stop the process; the pending wake-up (if any) is dropped."""
        self.cancelled = True
        if self._event is not None:
            self._sim.cancel(self._event)
            self._event = None
        self._generator.close()

    @property
    def alive(self) -> bool:
        """Whether the process will run again."""
        return not (self.finished or self.cancelled)


def spawn_process(sim: Simulator, generator: Generator,
                  start_delay: float = 0.0) -> ProcessHandle:
    """Start a generator-process; its first step runs after
    ``start_delay`` simulated seconds."""
    handle = ProcessHandle(sim, generator)
    handle._event = sim.schedule(start_delay, handle._advance)
    return handle


def every(interval: float, fn, *args,
          while_condition=None) -> Generator:
    """Build a periodic process body: call ``fn(*args)`` every
    ``interval`` seconds while ``while_condition()`` (if given) holds."""
    if interval <= 0:
        raise SimulationError("interval must be positive")

    def _body():
        while while_condition is None or while_condition():
            fn(*args)
            yield interval

    return _body()
