"""Snapshot/fork support: capture a simulation graph, restore it N times.

A sweep re-simulates the same warm-up prefix (data load, first-touch page
placement, thread spawning) once per cell.  :class:`SimState` captures the
*entire* object graph of a warmed system — event heap, live counter, RNG
streams, page tables, per-core load counters — as one pickle payload, so
the prefix runs once and every cell forks from it.  Restoring is pure
deserialisation: each call to :meth:`SimState.restore` produces a fresh,
fully independent copy, and because pickling preserves within-graph object
identity, the copy's internal wiring (scheduler -> machine -> counters,
bound-method callbacks queued on the heap) is exactly the original's.

Two mechanisms make the capture faithful *and* cheap:

* **Shared atoms** — immutable bulk data (the TPC-H dataset and its numpy
  columns) is externalised by identity via the pickle persistent-id hook
  instead of being serialised into the payload.  Every fork references the
  same arrays, which is safe because the simulation never mutates them,
  and keeps a snapshot at tens of kilobytes instead of tens of megabytes.
* **Registered process globals** — state that lives outside any object
  graph (the :class:`~repro.opsys.thread.SimThread` id counter) is
  registered here with getter/setter pairs; :meth:`SimState.capture`
  records the values and :meth:`SimState.restore` reinstates them, so a
  forked run hands out the same thread ids as an uninterrupted one.

A :class:`SimState` is itself picklable (payload bytes + shared tuple +
plain values), so snapshots travel across the spawn pool: the parent warms
one system, and ``repro run --parallel N`` ships the capture to workers
that fork their cells from it.
"""

from __future__ import annotations

import hashlib
import io
import pickle
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from typing import Any

from ..atoms import atom_digest as _atom_digest
from ..errors import SimulationError

#: name -> (get, set) for process-global state that must survive a
#: capture/restore round trip (registered at module-import time by the
#: layers that own such state)
_GLOBAL_STATE: dict[str, tuple[Callable[[], Any],
                               Callable[[Any], None]]] = {}


def register_global_state(name: str, get: Callable[[], Any],
                          set_: Callable[[Any], None]) -> None:
    """Register process-global state to capture alongside object graphs.

    ``get`` is called at capture time; ``set_`` replays the recorded value
    at restore time, before the payload is deserialised.  Registering the
    same name twice replaces the accessors (idempotent module reloads).
    """
    _GLOBAL_STATE[name] = (get, set_)


def registered_globals() -> tuple[str, ...]:
    """Names currently registered (introspection/tests)."""
    return tuple(_GLOBAL_STATE)


class _SharedPickler(pickle.Pickler):
    """Pickler externalising shared atoms by object identity."""

    def __init__(self, file: io.BytesIO, index: dict[int, int]):
        super().__init__(file, protocol=pickle.HIGHEST_PROTOCOL)
        self._index = index

    def persistent_id(self, obj: Any) -> int | None:
        return self._index.get(id(obj))


class _SharedUnpickler(pickle.Unpickler):
    """Unpickler resolving persistent ids back to the shared atoms."""

    def __init__(self, file: io.BytesIO, shared: tuple[Any, ...]):
        super().__init__(file)
        self._shared = shared

    def persistent_load(self, pid: Any) -> Any:
        try:
            return self._shared[pid]
        except (TypeError, IndexError):
            raise SimulationError(
                f"snapshot references unknown shared atom {pid!r}") \
                from None


@dataclass(frozen=True)
class SimState:
    """One captured simulation graph; restore as many times as needed."""

    #: the pickled object graph (shared atoms externalised)
    payload: bytes
    #: the atoms referenced by identity from the payload
    shared: tuple[Any, ...] = ()
    #: registered process-global values at capture time
    globals_: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def capture(cls, root: Any, shared: Iterable[Any] = ()) -> "SimState":
        """Snapshot ``root``'s full object graph.

        ``shared`` lists immutable objects to externalise by identity
        (compared with ``is``, not ``==``); everything else reachable
        from ``root`` is serialised into the payload.
        """
        shared_atoms = tuple(shared)
        index = {id(obj): i for i, obj in enumerate(shared_atoms)}
        buffer = io.BytesIO()
        try:
            _SharedPickler(buffer, index).dump(root)
        except (pickle.PicklingError, AttributeError, TypeError) as exc:
            raise SimulationError(
                f"cannot capture simulation state: {exc} (lambdas and "
                f"local closures do not pickle; use a module-level "
                f"class with __call__ instead)") from exc
        values = {name: get() for name, (get, _) in _GLOBAL_STATE.items()}
        return cls(payload=buffer.getvalue(), shared=shared_atoms,
                   globals_=values)

    def restore(self) -> Any:
        """Materialise a fresh, independent copy of the captured graph.

        Registered process globals are reinstated first, then the payload
        is deserialised against the shared atoms.  Each call returns a
        new copy; forks never alias each other's mutable state.
        """
        for name, value in self.globals_.items():
            entry = _GLOBAL_STATE.get(name)
            if entry is not None:
                entry[1](value)
        return _SharedUnpickler(io.BytesIO(self.payload),
                                self.shared).load()

    # ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """Content hash of the capture (cache-key canonicalisation).

        Stable across processes for identical captures: the payload bytes
        pin the graph, the shared atoms are digested by value (numpy
        arrays via their raw buffer), and the registered globals by repr.
        Memoised — the shared atoms can be megabytes.
        """
        cached = self.__dict__.get("_fingerprint")
        if cached is not None:
            return cached
        digest = hashlib.sha256()
        digest.update(self.payload)
        for atom in self.shared:
            digest.update(_atom_digest(atom))
        for name in sorted(self.globals_):
            digest.update(name.encode())
            digest.update(repr(self.globals_[name]).encode())
        value = digest.hexdigest()
        self.__dict__["_fingerprint"] = value
        return value

    def size_bytes(self) -> int:
        """Payload size (diagnostics; excludes the shared atoms)."""
        return len(self.payload)
