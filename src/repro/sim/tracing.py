"""Structured trace records emitted by the simulation layers.

The paper's figures are mostly *traces*: thread placement over time (Figs 5
and 16), per-operator worker activity (Fig 6, the Tomograph view), fired
PetriNet transitions with the allocated-core staircase (Fig 7), and
per-socket memory throughput over time (Fig 18).  Every layer therefore
reports what it does to a shared :class:`TraceRecorder`; the experiment
harness filters the record stream afterwards.

Records are small frozen dataclasses (``slots=True``: traces are
high-volume).  They are intentionally denormalised
(they repeat ids rather than hold object references) so a trace can outlive
the simulation objects and be compared across runs.
"""

from __future__ import annotations

from collections.abc import Iterator
from dataclasses import dataclass
from typing import TypeVar


@dataclass(frozen=True, slots=True)
class PlacementRecord:
    """A thread started running on a core (scheduling dispatch)."""

    time: float
    thread_id: int
    core_id: int
    node_id: int

    def __reduce__(self):
        # snapshots pickle traces wholesale; rebuilding via the
        # positional __init__ skips the generic dataclass state
        # machinery (fields() + per-field setattr lists)
        return (PlacementRecord, (self.time, self.thread_id, self.core_id, self.node_id))



@dataclass(frozen=True, slots=True)
class MigrationRecord:
    """A thread moved between cores; ``stolen`` marks load-balancer steals."""

    time: float
    thread_id: int
    src_core: int
    dst_core: int
    stolen: bool

    def __reduce__(self):
        # snapshots pickle traces wholesale; rebuilding via the
        # positional __init__ skips the generic dataclass state
        # machinery (fields() + per-field setattr lists)
        return (MigrationRecord, (self.time, self.thread_id, self.src_core, self.dst_core, self.stolen))



@dataclass(frozen=True, slots=True)
class TransitionRecord:
    """A PrT transition (or chain) fired, e.g. ``t1-Overload-t5``."""

    time: float
    label: str
    state: str
    value: float
    cores_after: int

    def __reduce__(self):
        # snapshots pickle traces wholesale; rebuilding via the
        # positional __init__ skips the generic dataclass state
        # machinery (fields() + per-field setattr lists)
        return (TransitionRecord, (self.time, self.label, self.state, self.value, self.cores_after))



@dataclass(frozen=True, slots=True)
class CoreAllocation:
    """The cpuset mask changed; ``core_id`` was added or removed."""

    time: float
    core_id: int
    node_id: int
    allocated: bool
    n_allocated: int

    def __reduce__(self):
        # snapshots pickle traces wholesale; rebuilding via the
        # positional __init__ skips the generic dataclass state
        # machinery (fields() + per-field setattr lists)
        return (CoreAllocation, (self.time, self.core_id, self.node_id, self.allocated, self.n_allocated))



@dataclass(frozen=True, slots=True)
class ControllerTick:
    """One pass of the rule-condition-action pipeline."""

    time: float
    metric: float
    state: str
    n_allocated: int

    def __reduce__(self):
        # snapshots pickle traces wholesale; rebuilding via the
        # positional __init__ skips the generic dataclass state
        # machinery (fields() + per-field setattr lists)
        return (ControllerTick, (self.time, self.metric, self.state, self.n_allocated))



@dataclass(frozen=True, slots=True)
class QueryRecord:
    """A query finished; the basic throughput/latency unit."""

    time: float
    client_id: int
    query_name: str
    start_time: float
    elapsed: float

    def __reduce__(self):
        # snapshots pickle traces wholesale; rebuilding via the
        # positional __init__ skips the generic dataclass state
        # machinery (fields() + per-field setattr lists)
        return (QueryRecord, (self.time, self.client_id, self.query_name, self.start_time, self.elapsed))



@dataclass(frozen=True, slots=True)
class StageRecord:
    """One worker finished one plan-stage partition (Tomograph rows)."""

    time: float
    thread_id: int
    query_name: str
    operator: str
    start_time: float
    elapsed: float
    core_id: int

    def __reduce__(self):
        # snapshots pickle traces wholesale; rebuilding via the
        # positional __init__ skips the generic dataclass state
        # machinery (fields() + per-field setattr lists)
        return (StageRecord, (self.time, self.thread_id, self.query_name, self.operator, self.start_time, self.elapsed, self.core_id))



_R = TypeVar("_R")


class TraceRecorder:
    """Append-only sink for trace records, with typed retrieval.

    Recording can be muted per record type (high-volume experiments disable
    :class:`PlacementRecord` to save memory) via :meth:`mute`.
    """

    def __init__(self) -> None:
        self._records: list[object] = []
        self._muted: set[type] = set()

    def mute(self, record_type: type) -> None:
        """Stop recording instances of ``record_type``."""
        self._muted.add(record_type)

    def unmute(self, record_type: type) -> None:
        """Resume recording instances of ``record_type``."""
        self._muted.discard(record_type)

    def emit(self, record: object) -> None:
        """Append a record unless its type is muted."""
        if type(record) not in self._muted:
            self._records.append(record)

    def __len__(self) -> int:
        return len(self._records)

    def all(self) -> list[object]:
        """Every record in emission order."""
        return list(self._records)

    def of(self, record_type: type[_R]) -> list[_R]:
        """All records of one type, in emission order."""
        return [r for r in self._records if type(r) is record_type]

    def iter_of(self, record_type: type[_R]) -> Iterator[_R]:
        """Lazy variant of :meth:`of`."""
        return (r for r in self._records if type(r) is record_type)

    def clear(self) -> None:
        """Drop all records (muting state is preserved)."""
        self._records.clear()
