"""Unit helpers and conversions used across the simulator.

Internally the simulator uses a single set of base units:

* **time** — seconds (floats; sub-microsecond resolution is never needed),
* **data** — bytes (ints where possible),
* **bandwidth** — bytes per second,
* **frequency** — hertz,
* **energy** — joules.

These helpers exist so that call sites read like the paper ("41.6 GB/s",
"6 MB L3", "2.8 GHz") instead of bare exponents.
"""

from __future__ import annotations

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KB = 1000
MB = 1000 * KB
GB = 1000 * MB

MICROSECOND = 1e-6
MILLISECOND = 1e-3

GHZ = 1e9
MHZ = 1e6


def kib(n: float) -> int:
    """Kibibytes to bytes."""
    return int(n * KIB)


def mib(n: float) -> int:
    """Mebibytes to bytes."""
    return int(n * MIB)


def gib(n: float) -> int:
    """Gibibytes to bytes."""
    return int(n * GIB)


def gb_per_s(n: float) -> float:
    """Decimal gigabytes per second to bytes per second."""
    return n * GB


def mb_per_s(n: float) -> float:
    """Decimal megabytes per second to bytes per second."""
    return n * MB


def ghz(n: float) -> float:
    """Gigahertz to hertz."""
    return n * GHZ


def usec(n: float) -> float:
    """Microseconds to seconds."""
    return n * MICROSECOND


def msec(n: float) -> float:
    """Milliseconds to seconds."""
    return n * MILLISECOND


def fmt_bytes(n: float) -> str:
    """Render a byte count with a binary suffix, for reports."""
    value = float(n)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or suffix == "TiB":
            return f"{value:.2f} {suffix}"
        value /= 1024
    raise AssertionError("unreachable")


def fmt_bandwidth(bytes_per_s: float) -> str:
    """Render a bandwidth with a decimal suffix, matching the paper's GB/s."""
    value = float(bytes_per_s)
    for suffix in ("B/s", "KB/s", "MB/s", "GB/s"):
        if abs(value) < 1000 or suffix == "GB/s":
            return f"{value:.2f} {suffix}"
        value /= 1000
    raise AssertionError("unreachable")


def fmt_seconds(t: float) -> str:
    """Render a duration with an adaptive unit."""
    if t < 1e-3:
        return f"{t * 1e6:.1f} us"
    if t < 1.0:
        return f"{t * 1e3:.2f} ms"
    return f"{t:.3f} s"
