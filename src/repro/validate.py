"""Runtime invariant checking for simulated systems.

:class:`SystemValidator` inspects a live
:class:`~repro.opsys.system.OperatingSystem` (and optionally its
controller) and raises :class:`InvariantViolation` when any structural
invariant is broken — the simulation-level analogue of a kernel's
``CONFIG_SCHED_DEBUG`` assertions.  It can be called once
(:meth:`check`) or attached as a periodic simulated process
(:meth:`attach`), which the integration tests do to catch corruption
*while* workloads run, not just afterwards.

Checked invariants:

* every queued/running thread appears exactly once across all run
  queues and running slots;
* managed READY/RUNNING threads sit only on allowed cores;
* core-pinned threads sit on their pinned core whenever it is allowed;
* run-queue bookkeeping matches thread states;
* memory-bank occupancy equals the number of placed pages;
* useful time never exceeds busy time on any core;
* when a controller is attached, its PrT model's ``nalloc`` equals the
  cpuset size and stays within bounds.
"""

from __future__ import annotations

from .errors import ReproError
from .opsys.system import OperatingSystem
from .opsys.thread import ThreadState
from .sim.process import ProcessHandle, spawn_process


class InvariantViolation(ReproError):
    """A structural invariant of the simulated system was broken."""


class SystemValidator:
    """Invariant checker over one operating-system instance."""

    def __init__(self, os: OperatingSystem, controller=None):
        self.os = os
        self.controller = controller
        self.checks_run = 0

    # ------------------------------------------------------------------

    def check(self) -> None:
        """Run every invariant check once; raises on the first failure."""
        self._check_queue_membership()
        self._check_placement_legality()
        self._check_memory_accounting()
        self._check_time_accounting()
        if self.controller is not None:
            self._check_controller_consistency()
        self.checks_run += 1

    def attach(self, interval: float = 0.05) -> ProcessHandle:
        """Run :meth:`check` every ``interval`` simulated seconds while
        threads are live."""

        def body():
            while self.os.scheduler.live_threads() > 0:
                self.check()
                yield interval
            self.check()

        return spawn_process(self.os.sim, body())

    # ------------------------------------------------------------------

    def _fail(self, message: str) -> None:
        raise InvariantViolation(
            f"t={self.os.now:.6f}: {message}")

    def _check_queue_membership(self) -> None:
        scheduler = self.os.scheduler
        seen: dict[int, int] = {}
        for core, queue in enumerate(scheduler._queues):
            for thread in queue:
                seen[thread.tid] = seen.get(thread.tid, 0) + 1
                if thread.state is not ThreadState.READY:
                    self._fail(f"{thread.name} queued on core {core} "
                               f"in state {thread.state.value}")
        for core, thread in enumerate(scheduler._running):
            if thread is None:
                continue
            seen[thread.tid] = seen.get(thread.tid, 0) + 1
            if thread.state is not ThreadState.RUNNING:
                self._fail(f"{thread.name} running on core {core} "
                           f"in state {thread.state.value}")
        for tid, count in seen.items():
            if count != 1:
                self._fail(f"thread {tid} appears {count} times in the "
                           f"scheduler structures")
        for thread in scheduler.threads:
            runnable = thread.state in (ThreadState.READY,
                                        ThreadState.RUNNING)
            if runnable and thread.tid not in seen:
                self._fail(f"{thread.name} is {thread.state.value} but "
                           f"absent from every queue")

    def _check_placement_legality(self) -> None:
        scheduler = self.os.scheduler
        cpuset = self.os.cpuset
        for core, thread in enumerate(scheduler._running):
            if thread is None:
                continue
            if thread.managed and not cpuset.is_allowed(core):
                # a released core may finish its current chunk; queued
                # threads however must never sit on it
                continue
            if (thread.pinned_core is not None
                    and cpuset.is_allowed(thread.pinned_core)
                    and thread.managed
                    and core != thread.pinned_core):
                self._fail(f"{thread.name} pinned to "
                           f"{thread.pinned_core} but running on {core}")
        for core, queue in enumerate(scheduler._queues):
            if not queue:
                continue
            for thread in queue:
                if thread.managed and not cpuset.is_allowed(core):
                    self._fail(f"{thread.name} queued on released "
                               f"core {core}")

    def _check_memory_accounting(self) -> None:
        memory = self.os.machine.memory
        histogram = memory.placement_histogram()
        if any(count < 0 for count in histogram):
            self._fail(f"negative bank occupancy: {histogram}")
        placed = memory.placed_total()
        if placed != sum(histogram):
            self._fail(f"home map holds {placed} pages but banks "
                       f"account {sum(histogram)}")

    def _check_time_accounting(self) -> None:
        counters = self.os.counters
        for core in self.os.topology.all_cores():
            busy = counters.get("busy_time", core)
            useful = counters.get("useful_time", core)
            if useful > busy + 1e-9:
                self._fail(f"core {core}: useful {useful} exceeds "
                           f"busy {busy}")
            if busy < 0 or useful < 0:
                self._fail(f"core {core}: negative time accounting")

    def _check_controller_consistency(self) -> None:
        controller = self.controller
        nalloc = controller.model.nalloc
        mask = len(self.os.cpuset)
        if nalloc != mask:
            self._fail(f"model nalloc {nalloc} != cpuset size {mask}")
        if not (controller.config.min_cores <= nalloc
                <= self.os.topology.n_cores):
            self._fail(f"nalloc {nalloc} out of bounds")
