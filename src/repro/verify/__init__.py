"""Static verification of the mechanism — checked, not just tested.

The paper's correctness argument rests on the 5-place / 8-transition PrT
net behaving well: the ``Checks`` token must always return, core tokens
must be conserved (``allocated + free == n_total``), and the guards on
``t0..t7`` must partition the metric range so no sample strands the
model.  Everything in this package proves those properties *offline*,
before a simulation runs:

* :mod:`repro.verify.structure` — numeric Pre/Post matrices, dead
  transitions, source/sink anomalies;
* :mod:`repro.verify.invariants` — exact P-/T-invariants (nullspace +
  Farkas) and the conservation/coverage checks built on them;
* :mod:`repro.verify.guards` — guard coverage over the metric domain and
  bounded reachability over the (metric x core count) state space;
* :mod:`repro.verify.lint` — the determinism lint over the source tree.

Entry points: :func:`verify_performance_model` for one model (used by
``ElasticController(..., verify_model=True)``),
:func:`verify_source_tree` for the lint, and the ``repro verify`` CLI
subcommand which wires both into CI.
"""

from __future__ import annotations

from pathlib import Path

from ..errors import (DeterminismLintError, GuardCoverageError,
                      InvariantViolationError, ReachabilityError,
                      VerificationError)
from .guards import check_guard_coverage, check_reachability, metric_samples
from .invariants import (check_invariants, invariant_supports, is_invariant,
                         nullspace, p_invariants, t_invariants)
from .lint import lint_file, lint_tree
from .report import Finding, VerificationReport
from .structure import NetStructure, check_structure

#: the conservation laws the paper's model is expected to satisfy, as
#: place weightings (checked when the net has the canonical five places)
EXPECTED_P_INVARIANTS = (
    ("monitoring-token conservation",
     {"Checks": 1, "Idle": 1, "Stable": 1, "Overload": 1}),
    ("core-token conservation",
     {"Idle": 1, "Overload": 1, "Provision": 1}),
)


def verify_performance_model(model, grid: int | None = None,
                             subject: str | None = None
                             ) -> VerificationReport:
    """Run every static model check against a performance model.

    ``model`` is any object with the surface described in
    :mod:`repro.verify.guards` — the shipped
    :class:`~repro.core.model.PerformanceModel` or a test fixture.
    """
    grid = grid if grid is not None else 101
    if subject is None:
        subject = (f"model(th_min={model.th_min}, th_max={model.th_max}, "
                   f"n_total={model.n_total}, n_min={model.n_min})")
    report = VerificationReport(subject=subject)
    structure = NetStructure.from_net(model.net)
    report.extend("structure",
                  check_structure(structure, {"Checks", "Provision"}))
    invariant_findings = check_invariants(structure)
    if set(("Checks", "Idle", "Stable", "Overload", "Provision")) \
            <= set(structure.places):
        for label, weights in EXPECTED_P_INVARIANTS:
            if not is_invariant(structure, weights):
                invariant_findings.append(Finding(
                    "p-invariant",
                    f"expected {label} invariant "
                    f"{'+'.join(sorted(weights))} = const does not "
                    f"hold: some firing changes the weighted token "
                    f"count"))
    report.extend("p-invariant",
                  [f for f in invariant_findings
                   if f.check == "p-invariant"])
    report.extend("t-invariant",
                  [f for f in invariant_findings
                   if f.check == "t-invariant"])
    report.extend("guard-coverage", check_guard_coverage(model, grid))
    report.extend("reachability", check_reachability(model, grid))
    return report


#: which VerificationError subclass a check's findings escalate to
_ERROR_OF_CHECK = {
    "structure": InvariantViolationError,
    "p-invariant": InvariantViolationError,
    "t-invariant": InvariantViolationError,
    "guard-coverage": GuardCoverageError,
    "reachability": ReachabilityError,
    "lint:wall-clock": DeterminismLintError,
    "lint:unseeded-random": DeterminismLintError,
    "lint:mutable-default": DeterminismLintError,
    "lint:float-equality": DeterminismLintError,
}


def raise_on_findings(report: VerificationReport) -> None:
    """Escalate a failed report to the matching VerificationError."""
    if report.ok:
        return
    findings = [f for f in report.sorted_findings()
                if f.severity == "error"]
    error_class = _ERROR_OF_CHECK.get(findings[0].check,
                                      VerificationError)
    raise error_class(
        f"{report.subject}: "
        + "; ".join(finding.render() for finding in findings))


def verify_source_tree(root: str | Path | None = None
                       ) -> VerificationReport:
    """Run the determinism lint; ``root`` defaults to the installed
    ``repro`` package."""
    if root is None:
        root = Path(__file__).resolve().parent.parent
    root = Path(root)
    report = VerificationReport(subject=f"source tree {root}")
    findings = lint_tree(root)
    for check in ("lint:wall-clock", "lint:unseeded-random",
                  "lint:mutable-default", "lint:float-equality"):
        report.extend(check,
                      [f for f in findings if f.check == check])
    return report


__all__ = [
    "Finding", "VerificationReport", "NetStructure",
    "check_structure", "check_invariants", "check_guard_coverage",
    "check_reachability", "metric_samples",
    "nullspace", "p_invariants", "t_invariants", "invariant_supports",
    "is_invariant", "lint_file", "lint_tree",
    "verify_performance_model", "verify_source_tree",
    "raise_on_findings", "EXPECTED_P_INVARIANTS",
]
