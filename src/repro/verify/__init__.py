"""Static verification of the mechanism — checked, not just tested.

The paper's correctness argument rests on the 5-place / 8-transition PrT
net behaving well: the ``Checks`` token must always return, core tokens
must be conserved (``allocated + free == n_total``), and the guards on
``t0..t7`` must partition the metric range so no sample strands the
model.  Everything in this package proves those properties *offline*,
before a simulation runs:

* :mod:`repro.verify.structure` — numeric Pre/Post matrices, dead
  transitions, source/sink anomalies;
* :mod:`repro.verify.invariants` — exact P-/T-invariants (nullspace +
  Farkas) and the conservation/coverage checks built on them;
* :mod:`repro.verify.guards` — guard coverage over the metric domain and
  bounded reachability over the (metric x core count) state space;
* :mod:`repro.verify.lint` — the determinism pattern rules;
* :mod:`repro.verify.flow` — per-function CFGs and forward abstract
  interpretation, the engine under the protocol analyzers;
* :mod:`repro.verify.rules` — the pluggable rule registry: the lint's
  pattern rules plus the lease-typestate, spawn-safety and
  set-iteration-ordering flow rules;
* :mod:`repro.verify.suppress` / :mod:`repro.verify.baseline` — the
  scoped ``# verify: allow=<rule-id>`` hatch and the grandfathering
  baseline, both audited (unused suppressions and stale baseline
  entries are themselves findings).

Entry points: :func:`verify_performance_model` for one model (used by
``ElasticController(..., verify_model=True)``),
:func:`verify_source_tree` for the full rule set over a tree,
:func:`verify_files` for a changed-files-only run (the pre-commit
hook), and the ``repro verify`` CLI subcommand which wires everything
into CI.
"""

from __future__ import annotations

from collections.abc import Iterable
from pathlib import Path

from ..errors import (DeterminismLintError, GuardCoverageError,
                      InvariantViolationError, ProtocolLintError,
                      ReachabilityError, VerificationError)
from .baseline import apply_baseline, load_baseline, write_baseline
from .flow import analyse_forward, build_cfg, iter_functions
from .guards import check_guard_coverage, check_reachability, metric_samples
from .invariants import (check_invariants, invariant_supports, is_invariant,
                         nullspace, p_invariants, t_invariants)
from .lint import lint_file, lint_tree
from .report import Finding, VerificationReport
from .rules import Rule, all_rules, rule_ids, run_file, run_tree
from .structure import NetStructure, check_structure

#: the conservation laws the paper's model is expected to satisfy, as
#: place weightings (checked when the net has the canonical five places)
EXPECTED_P_INVARIANTS = (
    ("monitoring-token conservation",
     {"Checks": 1, "Idle": 1, "Stable": 1, "Overload": 1}),
    ("core-token conservation",
     {"Idle": 1, "Overload": 1, "Provision": 1}),
)


def verify_performance_model(model, grid: int | None = None,
                             subject: str | None = None
                             ) -> VerificationReport:
    """Run every static model check against a performance model.

    ``model`` is any object with the surface described in
    :mod:`repro.verify.guards` — the shipped
    :class:`~repro.core.model.PerformanceModel` or a test fixture.
    """
    grid = grid if grid is not None else 101
    if subject is None:
        subject = (f"model(th_min={model.th_min}, th_max={model.th_max}, "
                   f"n_total={model.n_total}, n_min={model.n_min})")
    report = VerificationReport(subject=subject)
    structure = NetStructure.from_net(model.net)
    report.extend("structure",
                  check_structure(structure, {"Checks", "Provision"}))
    invariant_findings = check_invariants(structure)
    if set(("Checks", "Idle", "Stable", "Overload", "Provision")) \
            <= set(structure.places):
        for label, weights in EXPECTED_P_INVARIANTS:
            if not is_invariant(structure, weights):
                invariant_findings.append(Finding(
                    "p-invariant",
                    f"expected {label} invariant "
                    f"{'+'.join(sorted(weights))} = const does not "
                    f"hold: some firing changes the weighted token "
                    f"count"))
    report.extend("p-invariant",
                  [f for f in invariant_findings
                   if f.check == "p-invariant"])
    report.extend("t-invariant",
                  [f for f in invariant_findings
                   if f.check == "t-invariant"])
    report.extend("guard-coverage", check_guard_coverage(model, grid))
    report.extend("reachability", check_reachability(model, grid))
    return report


#: which VerificationError subclass a check's findings escalate to
_ERROR_OF_CHECK = {
    "structure": InvariantViolationError,
    "p-invariant": InvariantViolationError,
    "t-invariant": InvariantViolationError,
    "guard-coverage": GuardCoverageError,
    "reachability": ReachabilityError,
    "lint:wall-clock": DeterminismLintError,
    "lint:unseeded-random": DeterminismLintError,
    "lint:mutable-default": DeterminismLintError,
    "lint:float-equality": DeterminismLintError,
    "flow:lease-rollback": ProtocolLintError,
    "flow:lease-unpaired": ProtocolLintError,
    "flow:lease-outside-actuator": ProtocolLintError,
    "flow:spawn-unpicklable": ProtocolLintError,
    "flow:spawn-global-mutable": ProtocolLintError,
    "flow:set-iteration": ProtocolLintError,
}


def raise_on_findings(report: VerificationReport) -> None:
    """Escalate a failed report to the matching VerificationError."""
    if report.ok:
        return
    findings = [f for f in report.sorted_findings()
                if f.severity == "error"]
    error_class = _ERROR_OF_CHECK.get(findings[0].check,
                                      VerificationError)
    raise error_class(
        f"{report.subject}: "
        + "; ".join(finding.render() for finding in findings))


def _tree_report(subject: str, findings: list[Finding],
                 rules: Iterable[str] | None) -> VerificationReport:
    report = VerificationReport(subject=subject)
    ran = list(rules) if rules is not None else rule_ids()
    by_check: dict[str, list[Finding]] = {}
    for finding in findings:
        by_check.setdefault(finding.check, []).append(finding)
    for check in ran:
        report.extend(check, by_check.pop(check, []))
    for check in sorted(by_check):  # audit/parse findings
        report.extend(check, by_check[check])
    return report


def verify_source_tree(root: str | Path | None = None,
                       rules: Iterable[str] | None = None
                       ) -> VerificationReport:
    """Run every registered source rule (pattern + flow) over a tree.

    ``root`` defaults to the installed ``repro`` package; ``rules``
    restricts the run to the given rule ids.
    """
    if root is None:
        root = Path(__file__).resolve().parent.parent
    root = Path(root)
    return _tree_report(f"source tree {root}",
                        run_tree(root, rules=rules), rules)


def verify_files(paths: Iterable[str | Path],
                 root: str | Path | None = None,
                 rules: Iterable[str] | None = None
                 ) -> VerificationReport:
    """Run the source rules over specific files only (pre-commit)."""
    if root is None:
        root = Path(__file__).resolve().parent.parent
    root = Path(root)
    files = [Path(p) for p in paths]
    findings = run_tree(root, rules=rules, files=files)
    return _tree_report(f"{len(files)} file(s)", findings, rules)


__all__ = [
    "Finding", "VerificationReport", "NetStructure", "Rule",
    "check_structure", "check_invariants", "check_guard_coverage",
    "check_reachability", "metric_samples",
    "nullspace", "p_invariants", "t_invariants", "invariant_supports",
    "is_invariant", "lint_file", "lint_tree", "all_rules", "rule_ids",
    "run_file", "run_tree", "build_cfg", "analyse_forward",
    "iter_functions", "apply_baseline", "load_baseline",
    "write_baseline", "verify_performance_model", "verify_source_tree",
    "verify_files", "raise_on_findings", "EXPECTED_P_INVARIANTS",
]
