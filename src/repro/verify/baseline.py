"""Finding baselines: grandfather old findings, gate on new ones.

Turning a new analyzer on over a grown codebase produces a wall of
findings nobody can fix in one sitting.  The baseline workflow makes the
gate incremental anyway: ``repro verify --write-baseline FILE`` records
today's error findings, the file is committed, and from then on
``repro verify --baseline FILE`` demotes exactly those findings to
warnings — still visible, no longer failing — while anything *new*
fails CI immediately.  Entries are keyed on ``(check, path, message)``
and deliberately not on line numbers, so unrelated edits shifting a file
do not resurrect grandfathered findings; a baseline entry that no longer
matches anything is reported as ``baseline:stale-entry`` so the file
shrinks monotonically toward the empty list the acceptance bar wants.
"""

from __future__ import annotations

import json
from dataclasses import replace
from pathlib import Path

from ..errors import VerificationError
from .report import Finding


def finding_key(finding: Finding) -> tuple[str, str, str]:
    """The line-number-free identity a baseline entry pins."""
    return (finding.check, finding.path or finding.location,
            finding.message)


def load_baseline(path: Path) -> list[dict]:
    """Read a baseline file (a JSON list of entry objects)."""
    try:
        entries = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        raise VerificationError(
            f"cannot read baseline {path}: {exc}") from exc
    if not isinstance(entries, list):
        raise VerificationError(
            f"baseline {path} must be a JSON list of entries")
    return entries


def write_baseline(findings: list[Finding], path: Path) -> int:
    """Record every error finding; returns the entry count."""
    entries = [
        {"check": f.check, "path": f.path or f.location,
         "message": f.message}
        for f in sorted(findings, key=Finding.sort_key)
        if f.severity == "error"]
    Path(path).write_text(json.dumps(entries, indent=2) + "\n",
                          encoding="utf-8")
    return len(entries)


def apply_baseline(findings: list[Finding],
                   entries: list[dict],
                   baseline_name: str = "baseline") -> list[Finding]:
    """Demote grandfathered errors to warnings; report stale entries."""
    keys = {(entry.get("check", ""), entry.get("path", ""),
             entry.get("message", "")) for entry in entries}
    matched: set[tuple[str, str, str]] = set()
    result: list[Finding] = []
    for finding in findings:
        key = finding_key(finding)
        if finding.severity == "error" and key in keys:
            matched.add(key)
            result.append(replace(
                finding, severity="warning",
                message=f"[grandfathered] {finding.message}"))
        else:
            result.append(finding)
    for check, path, message in sorted(keys - matched):
        result.append(Finding(
            "baseline:stale-entry",
            f"{baseline_name} entry no longer matches any finding "
            f"({check}: {message})",
            location=path, severity="warning", path=path))
    return result
