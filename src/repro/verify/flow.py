"""Intraprocedural dataflow: per-function CFGs + forward fixpoints.

The protocol analyzers in :mod:`repro.verify.rules` need more than
pattern matching: whether a partially-acquired lease set can escape on an
exception, or whether a variable *may* hold a ``set`` by the time it is
iterated, are path properties.  This module provides the two pieces they
share:

* :func:`build_cfg` — a statement-level control-flow graph for one
  function body, with normal edges (sequencing, branches, loop back
  edges, ``break``/``continue``/``return``) and *exceptional* edges
  (from every statement the client's ``may_raise`` predicate selects, to
  the innermost enclosing ``except`` handlers, or to the synthetic
  ``raise_exit`` node when the exception escapes the function);
* :func:`analyse_forward` — a worklist fixpoint propagating abstract
  states forward over that graph.  The client supplies the lattice as
  three functions (``transfer`` for normal completion of a statement,
  ``exc_state`` for the state carried by an exceptional edge — by
  default the *entry* state, because an exception means the statement's
  effects did not happen — and ``join``).  For a finite lattice with a
  monotone join the iteration terminates; a hard iteration bound guards
  against client bugs.

Exceptional flow is deliberately coarse: an exception raised inside a
``try`` with handlers is routed to *every* handler (no exception-type
matching), and only statements the client marks may raise.  That is the
right trade-off for linting — over-approximate paths, under-approximate
raising sites — and it is what the reference-interpreter property tests
in ``tests/test_verify_flow.py`` pin down.
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterator
from dataclasses import dataclass, field
from typing import Any

from ..errors import VerificationError

#: edge kinds
NORMAL = "normal"
EXC = "exc"

#: statements that never get a node of their own (scope boundaries)
_NESTED_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)


@dataclass
class CFG:
    """A statement-level control-flow graph for one function.

    Nodes are integers; ``stmts`` maps each node to its AST payload
    (``None`` for the synthetic ``entry`` / ``exit`` / ``raise_exit``
    nodes and loop-head re-test nodes reuse the loop statement).  Edges
    carry a kind: :data:`NORMAL` or :data:`EXC`.
    """

    entry: int
    exit: int
    raise_exit: int
    stmts: dict[int, ast.AST | None] = field(default_factory=dict)
    succ: dict[int, list[tuple[int, str]]] = field(default_factory=dict)

    def nodes(self) -> list[int]:
        return sorted(self.stmts)

    def edges(self) -> Iterator[tuple[int, int, str]]:
        for source in sorted(self.succ):
            for target, kind in self.succ[source]:
                yield source, target, kind


def executed_parts(stmt: ast.AST | None) -> list[ast.AST]:
    """The sub-expressions actually evaluated *at* a CFG node.

    Compound statements become several CFG nodes; the node carrying the
    statement itself only evaluates its header (an ``if``'s test, a
    ``for``'s iterable, a ``with``'s context managers) — the bodies are
    separate nodes.  Transfer functions must scan only these parts.
    """
    if stmt is None or isinstance(stmt, (ast.ExceptHandler,
                                         *_NESTED_SCOPES)):
        return []
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter, stmt.target]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    if isinstance(stmt, ast.Raise):
        return [part for part in (stmt.exc, stmt.cause)
                if part is not None]
    return [stmt]


def shallow_walk(node: ast.AST) -> Iterator[ast.AST]:
    """``ast.walk`` that does not descend into nested scopes.

    Code inside a nested ``def`` / ``class`` / ``lambda`` does not run
    when the enclosing statement executes, so statement-level scans must
    not attribute it to the statement.  The scope node itself *is*
    yielded (a lambda argument is still an expression at this point).
    """
    yield node
    if isinstance(node, (*_NESTED_SCOPES, ast.Lambda)):
        return
    for child in ast.iter_child_nodes(node):
        yield from shallow_walk(child)


def default_may_raise(stmt: ast.AST) -> bool:
    """The default raising predicate: any call or explicit raise/assert."""
    if isinstance(stmt, (ast.Raise, ast.Assert)):
        return True
    for part in executed_parts(stmt):
        for node in shallow_walk(part):
            if isinstance(node, ast.Call):
                return True
    return False


class _Builder:
    """One build_cfg invocation's mutable state."""

    def __init__(self, may_raise: Callable[[ast.AST], bool]):
        self.may_raise = may_raise
        self.cfg = CFG(entry=0, exit=1, raise_exit=2,
                       stmts={0: None, 1: None, 2: None},
                       succ={0: [], 1: [], 2: []})
        self._next = 3
        #: stack of handler-entry node lists (innermost last); an
        #: exception goes to every handler of the innermost frame
        self._handlers: list[list[int]] = []

    def new_node(self, stmt: ast.AST | None) -> int:
        node = self._next
        self._next += 1
        self.cfg.stmts[node] = stmt
        self.cfg.succ[node] = []
        return node

    def edge(self, source: int, target: int, kind: str = NORMAL) -> None:
        pair = (target, kind)
        if pair not in self.cfg.succ[source]:
            self.cfg.succ[source].append(pair)

    def exc_targets(self) -> list[int]:
        if self._handlers:
            return self._handlers[-1]
        return [self.cfg.raise_exit]

    def statement(self, stmt: ast.AST) -> int:
        """One simple statement: a node, plus its exceptional edges."""
        node = self.new_node(stmt)
        if self.may_raise(stmt):
            for target in self.exc_targets():
                self.edge(node, target, EXC)
        return node

    # -- the recursive body walk ---------------------------------------

    def body(self, stmts: list[ast.stmt], preds: list[int],
             break_to: list[int] | None,
             continue_to: int | None) -> list[int]:
        """Wire a statement list after ``preds``; return the exits.

        ``preds`` are the dangling nodes whose normal flow enters the
        list; the return value is the dangling set after the last
        statement (empty when every path returned/raised/broke).
        """
        current = preds
        for stmt in stmts:
            if not current:
                break  # unreachable tail
            current = self.one(stmt, current, break_to, continue_to)
        return current

    def one(self, stmt: ast.stmt, preds: list[int],
            break_to: list[int] | None,
            continue_to: int | None) -> list[int]:
        if isinstance(stmt, _NESTED_SCOPES):
            # nested defs/classes execute as one (non-raising) binding
            node = self.new_node(stmt)
            self._link(preds, node)
            return [node]
        if isinstance(stmt, ast.Return):
            node = self.statement(stmt)
            self._link(preds, node)
            self.edge(node, self.cfg.exit)
            return []
        if isinstance(stmt, ast.Raise):
            node = self.new_node(stmt)
            self._link(preds, node)
            for target in self.exc_targets():
                self.edge(node, target, EXC)
            return []
        if isinstance(stmt, ast.Break):
            node = self.new_node(stmt)
            self._link(preds, node)
            if break_to is not None:
                break_to.append(node)
            return []
        if isinstance(stmt, ast.Continue):
            node = self.new_node(stmt)
            self._link(preds, node)
            if continue_to is not None:
                self.edge(node, continue_to)
            return []
        if isinstance(stmt, ast.If):
            node = self.statement(stmt)
            self._link(preds, node)
            then_exit = self.body(stmt.body, [node], break_to, continue_to)
            else_exit = self.body(stmt.orelse, [node], break_to,
                                  continue_to) if stmt.orelse else [node]
            return then_exit + else_exit
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            return self._loop(stmt, preds, break_to, continue_to)
        if isinstance(stmt, (ast.Try, *(
                (ast.TryStar,) if hasattr(ast, "TryStar") else ()))):
            return self._try(stmt, preds, break_to, continue_to)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            node = self.statement(stmt)  # the context-manager calls
            self._link(preds, node)
            return self.body(stmt.body, [node], break_to, continue_to)
        node = self.statement(stmt)
        self._link(preds, node)
        return [node]

    def _loop(self, stmt, preds, break_to, continue_to) -> list[int]:
        head = self.statement(stmt)  # test / iterator advance
        self._link(preds, head)
        breaks: list[int] = []
        body_exit = self.body(stmt.body, [head], breaks, head)
        self._link(body_exit, head)  # back edge
        after: list[int] = breaks
        if stmt.orelse:
            after = after + self.body(stmt.orelse, [head], break_to,
                                      continue_to)
        else:
            after = after + [head]  # zero-iteration / loop-done path
        return after

    def _try(self, stmt, preds, break_to, continue_to) -> list[int]:
        # handler entries are synthetic nodes carrying the ExceptHandler,
        # so clients can special-case rollback handlers in transfer
        handler_entries = [self.new_node(handler)
                           for handler in stmt.handlers]
        if handler_entries:
            self._handlers.append(handler_entries)
        try:
            body_exit = self.body(stmt.body, preds, break_to, continue_to)
        finally:
            if handler_entries:
                self._handlers.pop()
        exits: list[int] = []
        if stmt.orelse:
            exits += self.body(stmt.orelse, body_exit, break_to,
                               continue_to)
        else:
            exits += body_exit
        for entry, handler in zip(handler_entries, stmt.handlers):
            exits += self.body(handler.body, [entry], break_to,
                               continue_to)
        if stmt.finalbody:
            exits = self.body(stmt.finalbody, exits, break_to,
                              continue_to)
        return exits

    def _link(self, preds: list[int], target: int) -> None:
        for pred in preds:
            self.edge(pred, target)


def build_cfg(func: ast.FunctionDef | ast.AsyncFunctionDef,
              may_raise: Callable[[ast.AST], bool] | None = None) -> CFG:
    """Build the statement-level CFG of one function body."""
    builder = _Builder(may_raise or default_may_raise)
    exits = builder.body(list(func.body), [builder.cfg.entry], None, None)
    for node in exits:
        builder.edge(node, builder.cfg.exit)
    return builder.cfg


#: safety bound on fixpoint iterations (nodes * lattice height is the
#: honest bound; this is far above any realistic function)
MAX_STEPS = 100_000


def analyse_forward(cfg: CFG, init: Any,
                    transfer: Callable[[ast.AST | None, Any], Any],
                    join: Callable[[Any, Any], Any],
                    exc_state: Callable[[ast.AST | None, Any], Any]
                    | None = None) -> dict[int, Any]:
    """Forward abstract interpretation to fixpoint.

    Returns the state at the *entry* of every reachable node.  The exit
    state of the function is ``states[cfg.exit]``; the state carried by
    escaped exceptions is ``states[cfg.raise_exit]`` (absent when no
    exception can escape).

    ``transfer(stmt, state)`` maps a statement's entry state to its
    normal-completion state; ``exc_state(stmt, state)`` maps it to the
    state an exceptional edge carries (default: the entry state itself —
    the statement's effects did not happen).  ``join`` must be
    commutative, associative and idempotent, and the lattice must be
    finite for termination; states must support ``==``.
    """
    if exc_state is None:
        exc_state = lambda stmt, state: state  # noqa: E731
    states: dict[int, Any] = {cfg.entry: init}
    worklist = [cfg.entry]
    steps = 0
    while worklist:
        steps += 1
        if steps > MAX_STEPS:
            raise VerificationError(
                "dataflow fixpoint did not converge (non-monotone "
                "transfer or infinite lattice?)")
        node = worklist.pop()
        state = states[node]
        stmt = cfg.stmts.get(node)
        for target, kind in cfg.succ.get(node, ()):
            out = (transfer(stmt, state) if kind == NORMAL
                   else exc_state(stmt, state))
            if target in states:
                merged = join(states[target], out)
                if merged == states[target]:
                    continue
                states[target] = merged
            else:
                states[target] = out
            worklist.append(target)
    return states


def iter_functions(tree: ast.AST) -> Iterator[
        tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
    """Yield every (qualified name, function) in a module, methods too."""
    def walk(node: ast.AST, prefix: str) -> Iterator[
            tuple[str, ast.FunctionDef | ast.AsyncFunctionDef]]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                name = f"{prefix}{child.name}"
                yield name, child
                yield from walk(child, f"{name}.<locals>.")
            elif isinstance(child, ast.ClassDef):
                yield from walk(child, f"{prefix}{child.name}.")
            else:
                yield from walk(child, prefix)
    yield from walk(tree, "")
