"""Guard coverage and bounded reachability for the performance model.

The correctness of the paper's monitoring loop rests on two behavioural
properties that its guards must enforce:

* **coverage** — for every metric value ``u`` in the domain and every
  core count ``na``, *exactly one* transition out of ``Checks`` is
  enabled.  Zero means a gap (the sample strands in ``Checks``), two or
  more means an overlap (which transition fires depends on registration
  order — a silent priority nobody declared);
* **return + bounds** — from every reachable ``(u, na)`` state the
  ``Checks`` token comes back within a bounded number of firings, and
  the core-count token never leaves ``[n_min, n_total]``; together with
  ``free = n_total - allocated`` this is the core-conservation law
  ``allocated + free == n_total``.

Threshold guards are piecewise-constant between their breakpoints
(``th_min``/``th_max``), so probing every breakpoint, its two
one-sided neighbourhoods, every inter-breakpoint midpoint and a uniform
grid decides coverage exactly for the shipped model and catches any
gap/overlap wider than the grid pitch for user-supplied guards.

The model surface is duck-typed so test fixtures can hand in broken
nets: an object with ``net`` (a :class:`~repro.core.petrinet.PetriNet`
with ``Checks`` and ``Provision`` places), ``th_min``, ``th_max``,
``n_total``, ``n_min`` and a ``nalloc`` property; optional
``metric_domain`` and ``breakpoints`` refine the probed values.
"""

from __future__ import annotations

from collections import deque

from ..core.petrinet import PetriNet, Token
from .report import Finding

#: probe offset around each breakpoint (relative to its magnitude)
_EPS = 1e-9

#: uniform probes across the metric domain, on top of the critical values
DEFAULT_GRID = 101


def metric_samples(model, grid: int = DEFAULT_GRID) -> list[float]:
    """The probed metric values: breakpoints, their one-sided
    neighbourhoods, midpoints and a uniform grid over the domain."""
    span = model.th_max - model.th_min
    domain = getattr(model, "metric_domain", None)
    if domain is None:
        low = 0.0 if model.th_min >= 0 else model.th_min - span
        high = model.th_max + span
    else:
        low, high = domain
    breakpoints = sorted({float(b) for b in
                          (model.th_min, model.th_max,
                           *getattr(model, "breakpoints", ()))
                          if low <= b <= high})
    values = {low, high}
    for point in breakpoints:
        eps = max(_EPS, abs(point) * _EPS)
        values |= {point, point - eps, point + eps}
    edges = [low, *breakpoints, high]
    for left, right in zip(edges, edges[1:]):
        values.add((left + right) / 2.0)
    if grid > 1:
        step = (high - low) / (grid - 1)
        values |= {low + i * step for i in range(grid)}
    return sorted(v for v in values if low <= v <= high)


def entry_transitions(net: PetriNet) -> list[str]:
    """Transitions consuming from ``Checks`` (the classifiers)."""
    return [name for name in net.transition_names()
            if any(arc.place == "Checks"
                   for arc in net.transition(name).inputs)]


def _set_marking(net: PetriNet, marking: dict[str, list[Token]]) -> None:
    for name in net.place_names():
        place = net.place(name)
        place.clear()
        for token in marking.get(name, ()):
            place.put(token)


def _span(values: list[float]) -> str:
    low, high = min(values), max(values)
    if low == high:
        return f"u={low:g}"
    return f"u in [{low:g}, {high:g}] ({len(values)} probed values)"


def check_guard_coverage(model, grid: int = DEFAULT_GRID) -> list[Finding]:
    """Prove every metric value enables exactly one entry transition."""
    net: PetriNet = model.net
    saved = net.marking()
    entries = entry_transitions(net)
    findings: list[Finding] = []
    if not entries:
        findings.append(Finding(
            "guard-coverage",
            "no transition consumes from Checks: every sample strands"))
        _set_marking(net, saved)
        return findings
    gaps: dict[int, list[float]] = {}
    overlaps: dict[tuple[int, frozenset[str]], list[float]] = {}
    samples = metric_samples(model, grid)
    try:
        for nalloc in range(model.n_min, model.n_total + 1):
            for u in samples:
                _set_marking(net, {"Checks": [(u,)],
                                   "Provision": [(float(nalloc),)]})
                enabled = [t for t in entries if net.is_enabled(t)]
                if not enabled:
                    gaps.setdefault(nalloc, []).append(u)
                elif len(enabled) > 1:
                    key = (nalloc, frozenset(enabled))
                    overlaps.setdefault(key, []).append(u)
    finally:
        _set_marking(net, saved)
    for nalloc, values in sorted(gaps.items()):
        findings.append(Finding(
            "guard-coverage",
            f"gap: no entry transition is enabled for {_span(values)} "
            f"at nalloc={nalloc}; the metric token strands in Checks",
            location="Checks"))
    for (nalloc, names), values in sorted(
            overlaps.items(), key=lambda kv: (kv[0][0], sorted(kv[0][1]))):
        findings.append(Finding(
            "guard-coverage",
            f"overlap: transitions {sorted(names)} are simultaneously "
            f"enabled for {_span(values)} at nalloc={nalloc}; firing "
            f"order silently decides the state", location="Checks"))
    return findings


def check_reachability(model, grid: int = DEFAULT_GRID,
                       max_steps: int | None = None) -> list[Finding]:
    """Bounded reachability over the (metric sample x core count) space.

    From every reachable state, firing must return the ``Checks`` token
    within ``max_steps`` firings, keep exactly one core-count token
    inside ``[n_min, n_total]`` (``allocated + free == n_total``), move
    it by at most one core per tick, and eventually reach every core
    count between ``n_min`` and ``n_total``.
    """
    net: PetriNet = model.net
    saved = net.marking()
    saved_log = len(net.fired_log)
    samples = metric_samples(model, grid)
    if max_steps is None:
        max_steps = 4 * len(net.transition_names()) + 4
    findings: list[Finding] = []
    stuck: dict[int, list[float]] = {}
    broken: list[str] = []
    start = int(model.nalloc)
    if not model.n_min <= start <= model.n_total:
        findings.append(Finding(
            "reachability",
            f"initial core count {start} outside "
            f"[{model.n_min}, {model.n_total}]", location="Provision"))
        start = min(max(start, model.n_min), model.n_total)
    seen = {start}
    frontier = deque([start])
    try:
        while frontier:
            nalloc = frontier.popleft()
            for u in samples:
                _set_marking(net, {"Checks": [(u,)],
                                   "Provision": [(float(nalloc),)]})
                fired: list[str] = []
                while not fired or len(net.place("Checks")) == 0:
                    if len(fired) >= max_steps:
                        stuck.setdefault(nalloc, []).append(u)
                        break
                    name = net.step()
                    if name is None:
                        # an unconsumed fresh token is a guard gap,
                        # already reported by check_guard_coverage
                        if fired:
                            stuck.setdefault(nalloc, []).append(u)
                        break
                    fired.append(name)
                else:
                    provision = net.place("Provision").tokens
                    checks = net.place("Checks").tokens
                    others = sum(
                        len(net.place(p)) for p in net.place_names()
                        if p not in ("Checks", "Provision"))
                    if (len(checks) != 1 or len(provision) != 1
                            or others):
                        broken.append(
                            f"after {fired} from (u={u:g}, "
                            f"nalloc={nalloc}) the marking holds "
                            f"{len(checks)} Checks, {len(provision)} "
                            f"Provision and {others} other tokens "
                            f"(expected exactly 1+1+0)")
                        continue
                    after = int(provision[0][0])
                    free = model.n_total - after
                    if not model.n_min <= after <= model.n_total:
                        broken.append(
                            f"firing {fired} from (u={u:g}, "
                            f"nalloc={nalloc}) left nalloc={after}, "
                            f"free={free}: core conservation "
                            f"allocated + free == n_total broken "
                            f"outside [{model.n_min}, {model.n_total}]")
                    elif abs(after - nalloc) > 1:
                        broken.append(
                            f"firing {fired} from (u={u:g}, "
                            f"nalloc={nalloc}) jumped to "
                            f"nalloc={after}: more than one core "
                            f"per tick")
                    elif after not in seen:
                        seen.add(after)
                        frontier.append(after)
    finally:
        _set_marking(net, saved)
        del net.fired_log[saved_log:]
    for nalloc, values in sorted(stuck.items()):
        findings.append(Finding(
            "reachability",
            f"the Checks token does not return within {max_steps} "
            f"firings for {_span(values)} at nalloc={nalloc}: the "
            f"model deadlocks mid-cycle", location="Checks"))
    for message in broken[:8]:
        findings.append(Finding("reachability", message,
                                location="Provision"))
    if len(broken) > 8:
        findings.append(Finding(
            "reachability",
            f"... {len(broken) - 8} further conservation violations "
            f"suppressed", location="Provision"))
    missing = sorted(set(range(model.n_min, model.n_total + 1)) - seen)
    if missing and not stuck and not broken:
        findings.append(Finding(
            "reachability",
            f"core counts {missing} are unreachable from "
            f"nalloc={start}: the model strands between "
            f"min_cores={model.n_min} and n_total={model.n_total}",
            location="Provision"))
    return findings
