"""P- and T-invariants of the net, computed exactly over the integers.

A **P-invariant** is a vector ``y >= 0`` with ``y^T C = 0`` (``C`` the
incidence matrix): the ``y``-weighted token count is constant under any
firing.  A **T-invariant** is ``x >= 0`` with ``C x = 0``: firing each
transition ``x[t]`` times reproduces the marking — the net's repeatable
cycles.  For the paper's performance model (Figs 8-11) the expected
invariants are

* ``Checks + Idle + Stable + Overload = 1`` — the monitoring token is
  conserved: it is always in exactly one of the four control places;
* ``Idle + Overload + Provision = 1`` — the core-count token is either
  parked in ``Provision`` or travelling through ``Idle``/``Overload``;
* the five firing cycles ``{t0,t4}``, ``{t0,t7}``, ``{t1,t5}``,
  ``{t1,t6}``, ``{t2,t3}`` — every tick is one entry/exit pair.

Two computations are provided: an exact rational **nullspace basis**
(arbitrary sign, scaled to primitive integer vectors) and the canonical
**minimal semi-positive invariants** via the Farkas algorithm, which is
what the coverage checks use: a place covered by a semi-positive
P-invariant is structurally bounded and its tokens conserved; a
transition covered by a semi-positive T-invariant can take part in a
repeatable cycle.
"""

from __future__ import annotations

from fractions import Fraction
from math import gcd

import numpy as np

from .report import Finding
from .structure import NetStructure

_Vector = tuple[int, ...]


def _primitive(vector: list[Fraction]) -> _Vector:
    """Scale a rational vector to coprime integers, first nonzero > 0."""
    denominator_lcm = 1
    for value in vector:
        if value:
            denominator_lcm = (denominator_lcm * value.denominator
                               // gcd(denominator_lcm, value.denominator))
    ints = [int(value * denominator_lcm) for value in vector]
    divisor = 0
    for value in ints:
        divisor = gcd(divisor, abs(value))
    if divisor > 1:
        ints = [value // divisor for value in ints]
    for value in ints:
        if value:
            if value < 0:
                ints = [-v for v in ints]
            break
    return tuple(ints)


def nullspace(matrix: np.ndarray) -> list[_Vector]:
    """Integer basis of ``{x : matrix @ x = 0}`` by exact elimination."""
    n_rows, n_cols = matrix.shape
    rows = [[Fraction(int(v)) for v in matrix[i]] for i in range(n_rows)]
    pivot_of_col: dict[int, int] = {}
    rank = 0
    for col in range(n_cols):
        pivot_row = next(
            (r for r in range(rank, n_rows) if rows[r][col]), None)
        if pivot_row is None:
            continue
        rows[rank], rows[pivot_row] = rows[pivot_row], rows[rank]
        pivot = rows[rank][col]
        rows[rank] = [value / pivot for value in rows[rank]]
        for r in range(n_rows):
            if r != rank and rows[r][col]:
                factor = rows[r][col]
                rows[r] = [a - factor * b
                           for a, b in zip(rows[r], rows[rank])]
        pivot_of_col[col] = rank
        rank += 1
    basis = []
    free_cols = [c for c in range(n_cols) if c not in pivot_of_col]
    for free in free_cols:
        vector = [Fraction(0)] * n_cols
        vector[free] = Fraction(1)
        for col, row in pivot_of_col.items():
            vector[col] = -rows[row][free]
        basis.append(_primitive(vector))
    return basis


def _farkas(matrix: np.ndarray) -> list[_Vector]:
    """Minimal semi-positive solutions of ``y^T matrix = 0``, ``y >= 0``.

    Classic Farkas construction: start from ``[matrix | I]`` and
    eliminate the matrix columns one by one, keeping only non-negative
    row combinations; the identity part of the surviving rows are the
    semi-positive invariants.  Non-minimal supports are filtered out.
    """
    n_rows, n_cols = matrix.shape
    table = [[int(matrix[i, j]) for j in range(n_cols)]
             + [1 if k == i else 0 for k in range(n_rows)]
             for i in range(n_rows)]
    for col in range(n_cols):
        kept = [row for row in table if row[col] == 0]
        positive = [row for row in table if row[col] > 0]
        negative = [row for row in table if row[col] < 0]
        for row_pos in positive:
            for row_neg in negative:
                scale_pos, scale_neg = -row_neg[col], row_pos[col]
                combined = [scale_pos * a + scale_neg * b
                            for a, b in zip(row_pos, row_neg)]
                divisor = 0
                for value in combined:
                    divisor = gcd(divisor, abs(value))
                if divisor > 1:
                    combined = [value // divisor for value in combined]
                kept.append(combined)
        table = kept
    invariants = {tuple(row[n_cols:]) for row in table
                  if any(row[n_cols:])}
    minimal = []
    for candidate in sorted(invariants):
        support = {i for i, v in enumerate(candidate) if v}
        if not any(
                {i for i, v in enumerate(other) if v} < support
                for other in invariants if other != candidate):
            minimal.append(candidate)
    return minimal


def p_invariants(structure: NetStructure) -> list[_Vector]:
    """Minimal semi-positive P-invariants (weights over places)."""
    return _farkas(structure.incidence)


def t_invariants(structure: NetStructure) -> list[_Vector]:
    """Minimal semi-positive T-invariants (counts over transitions)."""
    return _farkas(structure.incidence.T)


def invariant_supports(invariants: list[_Vector],
                       names: tuple[str, ...]) -> list[frozenset[str]]:
    """The named supports of a list of invariant vectors."""
    return [frozenset(names[i] for i, v in enumerate(vector) if v)
            for vector in invariants]


def is_invariant(structure: NetStructure, weights: dict[str, int]) -> bool:
    """Whether a specific place weighting is conserved by every firing."""
    vector = np.array([weights.get(place, 0)
                       for place in structure.places], dtype=np.int64)
    return not (vector @ structure.incidence).any()


def check_invariants(structure: NetStructure) -> list[Finding]:
    """Coverage checks: conservation for places, cyclability for
    transitions."""
    findings: list[Finding] = []
    p_cover: set[str] = set()
    for support in invariant_supports(p_invariants(structure),
                                      structure.places):
        p_cover |= support
    for place in structure.places:
        if place not in p_cover:
            findings.append(Finding(
                "p-invariant",
                "place is not covered by any semi-positive P-invariant: "
                "no conservation law holds for its tokens, so a token "
                "deposited there can be lost or accumulate without bound",
                location=place))
    t_cover: set[str] = set()
    for support in invariant_supports(t_invariants(structure),
                                      structure.transitions):
        t_cover |= support
    for transition in structure.transitions:
        if transition not in t_cover:
            findings.append(Finding(
                "t-invariant",
                "transition is not covered by any semi-positive "
                "T-invariant: it cannot take part in any repeatable "
                "firing cycle, so firing it permanently shifts the "
                "marking", location=transition))
    return findings
