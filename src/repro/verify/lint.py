"""Determinism lint: an ``ast`` pass over the package source.

The simulation's headline guarantee — same seed, same trace — holds only
if nothing in the package smuggles in ambient nondeterminism.  Nothing
enforced that until now.  This pass parses every ``.py`` file under a
root (by default the installed ``repro`` package) and flags:

* ``lint:wall-clock`` — reading the host clock (``time.time``,
  ``datetime.now`` ...).  Inside the strict zones (``core/``, ``sim/``,
  ``opsys/``) *any* clock read is flagged, including monotonic ones;
  outside them only absolute wall-clock reads are (``perf_counter``
  duration measurements in the experiment harnesses are legitimate);
* ``lint:unseeded-random`` — the global ``random`` module functions, the
  legacy ``numpy.random`` global functions, and ``Random()`` /
  ``default_rng()`` / ``RandomState()`` constructed without a seed;
* ``lint:mutable-default`` — ``def f(x=[])`` and friends: state shared
  across calls;
* ``lint:float-equality`` — ``==`` / ``!=`` against a float literal in
  the strict zones, where threshold comparisons must be orderings.

These four *pattern* rules register into the
:mod:`repro.verify.rules` registry alongside the flow analyzers, so the
driver, the suppression comments (``# verify: allow=<rule-id>``; see
:mod:`repro.verify.suppress`) and the reporting order are shared.
:func:`lint_file` / :func:`lint_tree` remain the narrow entry points
that run only these rules.
"""

from __future__ import annotations

import ast
from pathlib import Path

from .report import Finding
from .rules import STRICT_ZONES, FileContext, checker, rule

#: the determinism rules this module implements
LINT_RULE_IDS = ("lint:wall-clock", "lint:unseeded-random",
                 "lint:mutable-default", "lint:float-equality")

rule("lint:wall-clock",
     "host clock read in simulated/deterministic code",
     example="stamp = time.time()",
     remedy="use the simulator's clock (os.now); duration measurement "
            "with perf_counter is legal outside the strict zones")
rule("lint:unseeded-random",
     "randomness without an explicit seed",
     example="random.choice(items)",
     remedy="pass a seeded random.Random / default_rng(seed) instance")
rule("lint:mutable-default",
     "mutable default argument shared across calls",
     example="def collect(into=[]): ...",
     remedy="default to None and allocate inside the function")
rule("lint:float-equality",
     "== / != against a float literal in a strict zone",
     example="if load == 0.5: ...",
     remedy="compare with an ordering or math.isclose")

#: time.<attr> reads that are wall-clock everywhere
_WALL_CLOCK = {"time", "time_ns", "ctime", "localtime", "gmtime",
               "asctime", "strftime"}

#: time.<attr> reads flagged only inside the strict zones
_MONOTONIC = {"monotonic", "monotonic_ns", "perf_counter",
              "perf_counter_ns", "process_time", "process_time_ns"}

#: datetime constructors that read the clock
_DATETIME_NOW = {"now", "utcnow", "today", "fromtimestamp"}

#: random-module functions backed by the hidden global generator
_GLOBAL_RANDOM = {"random", "randint", "randrange", "uniform",
                  "choice", "choices", "shuffle", "sample", "gauss",
                  "normalvariate", "expovariate", "betavariate",
                  "triangular", "vonmisesvariate", "paretovariate",
                  "weibullvariate", "lognormvariate", "getrandbits",
                  "randbytes", "seed"}

#: numpy.random legacy global functions (module-level hidden state)
_NUMPY_GLOBAL = {"rand", "randn", "randint", "random", "random_sample",
                 "choice", "shuffle", "permutation", "uniform", "normal",
                 "standard_normal", "exponential", "poisson", "binomial",
                 "beta", "gamma", "seed", "sample", "ranf"}

#: constructors that need an explicit seed argument
_SEEDED_CTORS = {"Random", "default_rng", "RandomState", "SeedSequence",
                 "Generator"}


def _attr_chain(node: ast.expr) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]``; empty when not a pure chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return []


class _FileLinter(ast.NodeVisitor):
    """Collects findings for one parsed module."""

    def __init__(self, path: Path, relative: str, strict: bool,
                 source_lines: list[str]):
        self.path = path
        self.relative = relative
        self.strict = strict
        self.lines = source_lines
        self.findings: list[Finding] = []
        #: local aliases of the random / numpy.random modules
        self.random_aliases = {"random"}
        self.numpy_aliases: set[str] = set()
        self.numpy_random_aliases: set[str] = set()
        self.time_aliases = {"time"}
        self.datetime_modules = {"datetime"}

    # -- imports establish which names mean what -----------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            if alias.name == "random":
                self.random_aliases.add(local)
            elif alias.name in ("numpy", "numpy.random"):
                if alias.name == "numpy.random" and alias.asname:
                    self.numpy_random_aliases.add(local)
                else:
                    self.numpy_aliases.add(local)
            elif alias.name == "time":
                self.time_aliases.add(local)
            elif alias.name == "datetime":
                self.datetime_modules.add(local)
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        for alias in node.names:
            local = alias.asname or alias.name
            if node.module == "numpy" and alias.name == "random":
                self.numpy_random_aliases.add(local)
            elif node.module == "time" and alias.name in (
                    _WALL_CLOCK | _MONOTONIC):
                self._flag_clock(node, alias.name, f"time.{alias.name}")
            elif node.module == "random" and alias.name in _GLOBAL_RANDOM:
                self._report(node, "lint:unseeded-random",
                             f"'from random import {alias.name}' uses "
                             f"the hidden global generator; pass a "
                             f"seeded random.Random instance instead")
        self.generic_visit(node)

    # -- findings ------------------------------------------------------

    def _report(self, node: ast.AST, check: str, message: str) -> None:
        self.findings.append(Finding.at(
            check, message, self.relative, getattr(node, "lineno", 0),
            getattr(node, "col_offset", -1) + 1))

    def _flag_clock(self, node: ast.AST, func: str, dotted: str) -> None:
        if func in _WALL_CLOCK or func in _DATETIME_NOW:
            self._report(node, "lint:wall-clock",
                         f"{dotted}() reads the host wall clock; "
                         f"simulated components must use the "
                         f"simulator's clock")
        elif self.strict and func in _MONOTONIC:
            self._report(node, "lint:wall-clock",
                         f"{dotted}() reads a host clock inside a "
                         f"reproducibility-critical zone")

    # -- calls ---------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = _attr_chain(node.func)
        if len(chain) >= 2:
            root, leaf = chain[0], chain[-1]
            middle = chain[1:-1]
            if root in self.time_aliases and len(chain) == 2:
                self._flag_clock(node, leaf, f"{root}.{leaf}")
            elif (root in self.datetime_modules
                  and leaf in _DATETIME_NOW and len(chain) <= 3):
                self._flag_clock(node, leaf, ".".join(chain))
            elif (root in self.random_aliases and len(chain) == 2
                  and leaf in _GLOBAL_RANDOM):
                self._report(node, "lint:unseeded-random",
                             f"{root}.{leaf}() uses the module-global "
                             f"generator; use a seeded random.Random")
            elif ((root in self.numpy_aliases and middle == ["random"]
                   or root in self.numpy_random_aliases
                   and len(chain) == 2)
                  and leaf in _NUMPY_GLOBAL):
                self._report(node, "lint:unseeded-random",
                             f"{'.'.join(chain)}() uses numpy's legacy "
                             f"global state; use "
                             f"numpy.random.default_rng(seed)")
            if leaf in _SEEDED_CTORS and not node.args and not any(
                    kw.arg in ("seed", "x") for kw in node.keywords):
                if (root in self.random_aliases
                        or root in self.numpy_aliases
                        or root in self.numpy_random_aliases):
                    self._report(node, "lint:unseeded-random",
                                 f"{'.'.join(chain)}() without a seed "
                                 f"draws entropy from the OS; pass an "
                                 f"explicit seed")
        elif len(chain) == 1 and chain[0] in _SEEDED_CTORS:
            if not node.args and not any(
                    kw.arg in ("seed", "x") for kw in node.keywords):
                self._report(node, "lint:unseeded-random",
                             f"{chain[0]}() without a seed draws "
                             f"entropy from the OS; pass an explicit "
                             f"seed")
        self.generic_visit(node)

    # -- defaults and comparisons --------------------------------------

    def _check_defaults(self, node) -> None:
        defaults = list(node.args.defaults) + [
            d for d in node.args.kw_defaults if d is not None]
        for default in defaults:
            mutable = isinstance(default, (ast.List, ast.Dict, ast.Set))
            if (isinstance(default, ast.Call)
                    and isinstance(default.func, ast.Name)
                    and default.func.id in ("list", "dict", "set",
                                            "bytearray")):
                mutable = True
            if mutable:
                name = getattr(node, "name", "<lambda>")
                self._report(default, "lint:mutable-default",
                             f"mutable default argument in {name}(): "
                             f"the object is shared across calls")

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        self._check_defaults(node)
        self.generic_visit(node)

    def visit_Compare(self, node: ast.Compare) -> None:
        if self.strict:
            for op, right in zip(node.ops, node.comparators):
                if not isinstance(op, (ast.Eq, ast.NotEq)):
                    continue
                symbol = "==" if isinstance(op, ast.Eq) else "!="
                for side in (node.left, right):
                    if (isinstance(side, ast.Constant)
                            and isinstance(side.value, float)):
                        self._report(
                            node, "lint:float-equality",
                            f"direct {symbol} against float literal "
                            f"{side.value!r}; accumulated rounding "
                            f"makes this unstable — compare with an "
                            f"ordering or math.isclose")
                        break
        self.generic_visit(node)


@checker(*LINT_RULE_IDS)
def check_determinism(ctx: FileContext) -> list[Finding]:
    """The registry entry point: run every pattern rule over one file."""
    linter = _FileLinter(ctx.path, ctx.relative, ctx.strict, ctx.lines)
    linter.visit(ctx.tree)
    return linter.findings


def lint_file(path: Path, relative: str | None = None,
              strict: bool | None = None) -> list[Finding]:
    """Run only the determinism rules over one file.

    ``strict`` defaults to zone membership (:data:`STRICT_ZONES` in the
    relative path).  Suppression comments apply; the suppression-audit
    warnings are included in the result.
    """
    from .rules import run_file
    return run_file(Path(path), relative, strict, rules=LINT_RULE_IDS)


def lint_tree(root: Path) -> list[Finding]:
    """Run the determinism rules over every ``*.py`` under ``root``."""
    from .rules import run_tree
    return run_tree(Path(root), rules=LINT_RULE_IDS)


__all__ = ["LINT_RULE_IDS", "STRICT_ZONES", "lint_file", "lint_tree",
           "check_determinism"]
