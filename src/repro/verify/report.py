"""Findings and reports produced by the static-verification layer.

Every analysis in :mod:`repro.verify` returns :class:`Finding` objects
tagged with the *check* that produced them (``"guard-coverage"``,
``"p-invariant"``, ``"lint:wall-clock"`` ...).  A
:class:`VerificationReport` aggregates findings across checks, renders
them for humans and serialises them to the machine-readable JSON the
``repro verify --json`` CLI and the CI job consume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: checks in the order the driver runs them (used to sort reports)
CHECK_ORDER = (
    "structure", "p-invariant", "t-invariant", "guard-coverage",
    "reachability", "lint:wall-clock", "lint:unseeded-random",
    "lint:mutable-default", "lint:float-equality",
    "flow:lease-rollback", "flow:lease-unpaired",
    "flow:lease-outside-actuator", "flow:spawn-unpicklable",
    "flow:spawn-global-mutable", "flow:set-iteration",
    "lint:blanket-allow", "lint:unused-suppression",
)


@dataclass(frozen=True)
class Finding:
    """One violated property.

    Attributes
    ----------
    check:
        Which analysis produced the finding (see :data:`CHECK_ORDER`);
        for source rules this is the rule id from the rule registry.
    message:
        Human-readable statement of the violated property.
    location:
        Where: ``file:line:col`` for source findings, a place/transition
        name or a marking description for model findings; empty when
        global.
    severity:
        ``"error"`` (fails verification) or ``"warning"`` (reported,
        does not fail).
    path / line / col:
        Structured position for source findings (``col`` is 1-based, as
        editors count; 0 means "no column").  Model findings leave all
        three empty/zero, which sorts them ahead of source findings.
    """

    check: str
    message: str
    location: str = ""
    severity: str = "error"
    path: str = ""
    line: int = 0
    col: int = 0

    @classmethod
    def at(cls, check: str, message: str, path: str, line: int,
           col: int = 0, severity: str = "error") -> "Finding":
        """A source finding with a structured position."""
        suffix = f":{col}" if col else ""
        return cls(check, message, location=f"{path}:{line}{suffix}",
                   severity=severity, path=path, line=line, col=col)

    def sort_key(self) -> tuple:
        """The stable order: severity, path, line, col, rule id.

        Errors sort before warnings; model findings (no path) sort by
        the canonical :data:`CHECK_ORDER` rank; source findings sort
        positionally so ``--json`` output diffs cleanly across runs.
        """
        try:
            rank = CHECK_ORDER.index(self.check)
        except ValueError:
            rank = len(CHECK_ORDER)
        return (0 if self.severity == "error" else 1, self.path,
                self.line, self.col, rank, self.check, self.message)

    def render(self) -> str:
        """One display line, e.g. ``guard-coverage: gap at u=15 (...)``."""
        where = f" [{self.location}]" if self.location else ""
        return f"{self.check}: {self.message}{where}"

    def as_dict(self) -> dict[str, object]:
        """JSON-ready mapping."""
        payload: dict[str, object] = {
            "check": self.check, "severity": self.severity,
            "message": self.message, "location": self.location}
        if self.path:
            payload["path"] = self.path
            payload["line"] = self.line
            payload["col"] = self.col
        return payload


@dataclass
class VerificationReport:
    """Aggregated outcome of one verification run."""

    subject: str
    checks_run: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether no error-severity finding was produced."""
        return not any(f.severity == "error" for f in self.findings)

    def extend(self, check: str, findings: list[Finding]) -> None:
        """Record that ``check`` ran and absorb its findings."""
        if check not in self.checks_run:
            self.checks_run.append(check)
        self.findings.extend(findings)

    def merge(self, other: VerificationReport) -> None:
        """Absorb another report (used to combine model + lint runs)."""
        for check in other.checks_run:
            if check not in self.checks_run:
                self.checks_run.append(check)
        self.findings.extend(other.findings)

    def sorted_findings(self) -> list[Finding]:
        """Findings in the stable order of :meth:`Finding.sort_key`."""
        return sorted(self.findings, key=Finding.sort_key)

    def render(self) -> str:
        """Multi-line human-readable summary."""
        lines = [f"verify {self.subject}: "
                 f"{'ok' if self.ok else 'FAILED'} "
                 f"({len(self.checks_run)} checks, "
                 f"{len(self.findings)} findings)"]
        for name in self.checks_run:
            n = sum(1 for f in self.findings if f.check == name)
            lines.append(f"  {name}: {'ok' if n == 0 else f'{n} findings'}")
        for finding in self.sorted_findings():
            lines.append(f"  !! {finding.render()}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-ready mapping (the ``--json`` schema)."""
        return {
            "subject": self.subject,
            "ok": self.ok,
            "checks": list(self.checks_run),
            "findings": [f.as_dict() for f in self.sorted_findings()],
        }

    def to_json(self) -> str:
        """Serialise for ``repro verify --json``."""
        return json.dumps(self.as_dict(), indent=2)
