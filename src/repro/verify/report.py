"""Findings and reports produced by the static-verification layer.

Every analysis in :mod:`repro.verify` returns :class:`Finding` objects
tagged with the *check* that produced them (``"guard-coverage"``,
``"p-invariant"``, ``"lint:wall-clock"`` ...).  A
:class:`VerificationReport` aggregates findings across checks, renders
them for humans and serialises them to the machine-readable JSON the
``repro verify --json`` CLI and the CI job consume.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: checks in the order the driver runs them (used to sort reports)
CHECK_ORDER = (
    "structure", "p-invariant", "t-invariant", "guard-coverage",
    "reachability", "lint:wall-clock", "lint:unseeded-random",
    "lint:mutable-default", "lint:float-equality",
)


@dataclass(frozen=True)
class Finding:
    """One violated property.

    Attributes
    ----------
    check:
        Which analysis produced the finding (see :data:`CHECK_ORDER`).
    message:
        Human-readable statement of the violated property.
    location:
        Where: a ``file:line`` for lint findings, a place/transition name
        or a marking description for model findings; empty when global.
    severity:
        ``"error"`` (fails verification) or ``"warning"`` (reported,
        does not fail).
    """

    check: str
    message: str
    location: str = ""
    severity: str = "error"

    def render(self) -> str:
        """One display line, e.g. ``guard-coverage: gap at u=15 (...)``."""
        where = f" [{self.location}]" if self.location else ""
        return f"{self.check}: {self.message}{where}"

    def as_dict(self) -> dict[str, str]:
        """JSON-ready mapping."""
        return {"check": self.check, "severity": self.severity,
                "message": self.message, "location": self.location}


@dataclass
class VerificationReport:
    """Aggregated outcome of one verification run."""

    subject: str
    checks_run: list[str] = field(default_factory=list)
    findings: list[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """Whether no error-severity finding was produced."""
        return not any(f.severity == "error" for f in self.findings)

    def extend(self, check: str, findings: list[Finding]) -> None:
        """Record that ``check`` ran and absorb its findings."""
        if check not in self.checks_run:
            self.checks_run.append(check)
        self.findings.extend(findings)

    def merge(self, other: VerificationReport) -> None:
        """Absorb another report (used to combine model + lint runs)."""
        for check in other.checks_run:
            if check not in self.checks_run:
                self.checks_run.append(check)
        self.findings.extend(other.findings)

    def sorted_findings(self) -> list[Finding]:
        """Findings in :data:`CHECK_ORDER`, errors before warnings."""
        def key(finding: Finding) -> tuple[int, int, str]:
            try:
                rank = CHECK_ORDER.index(finding.check)
            except ValueError:
                rank = len(CHECK_ORDER)
            return (0 if finding.severity == "error" else 1, rank,
                    finding.location)
        return sorted(self.findings, key=key)

    def render(self) -> str:
        """Multi-line human-readable summary."""
        lines = [f"verify {self.subject}: "
                 f"{'ok' if self.ok else 'FAILED'} "
                 f"({len(self.checks_run)} checks, "
                 f"{len(self.findings)} findings)"]
        for name in self.checks_run:
            n = sum(1 for f in self.findings if f.check == name)
            lines.append(f"  {name}: {'ok' if n == 0 else f'{n} findings'}")
        for finding in self.sorted_findings():
            lines.append(f"  !! {finding.render()}")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        """JSON-ready mapping (the ``--json`` schema)."""
        return {
            "subject": self.subject,
            "ok": self.ok,
            "checks": list(self.checks_run),
            "findings": [f.as_dict() for f in self.sorted_findings()],
        }

    def to_json(self) -> str:
        """Serialise for ``repro verify --json``."""
        return json.dumps(self.as_dict(), indent=2)
