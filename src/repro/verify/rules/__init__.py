"""The rule registry: every source rule, pattern or flow, in one table.

A *rule* is metadata (:class:`Rule`: id, summary, severity, zones, an
example and a remedy for the docs); a *checker* is a function running
one or more rules over one parsed file (:class:`FileContext` in, list of
:class:`~repro.verify.report.Finding` out).  The legacy determinism lint
(:mod:`repro.verify.lint`) and the protocol analyzers
(:mod:`~repro.verify.rules.lease`, :mod:`~repro.verify.rules.spawn`,
:mod:`~repro.verify.rules.ordering`) all register here, so the driver —
:func:`run_file` / :func:`run_tree`, behind ``repro verify`` — is one
loop, suppression handling (:mod:`repro.verify.suppress`) is applied
exactly once, and a new rule is a module that calls :func:`rule` and
:func:`checker` at import time (see ``docs/static_analysis.md``,
"writing a new rule").
"""

from __future__ import annotations

import ast
from collections.abc import Callable, Iterable
from dataclasses import dataclass, field
from pathlib import Path

from ..report import Finding
from ..suppress import apply_suppressions, scan_suppressions

#: subtrees where the reproducibility-critical rules apply
STRICT_ZONES = ("core", "sim", "opsys")

#: subtrees whose object graphs cross the spawn/snapshot boundary
SPAWN_ZONES = ("sim", "opsys", "runner")


@dataclass(frozen=True)
class Rule:
    """One registered rule's metadata (the catalog entry)."""

    id: str
    summary: str
    severity: str = "error"
    #: path components gating the rule ("" entry = applies everywhere)
    zones: tuple[str, ...] = ()
    example: str = ""
    remedy: str = ""


@dataclass
class FileContext:
    """Everything a checker may inspect about one file."""

    path: Path
    relative: str
    source: str
    lines: list[str]
    tree: ast.Module
    #: whether the file sits in a reproducibility-critical zone
    strict: bool

    def in_zone(self, zones: Iterable[str]) -> bool:
        parts = Path(self.relative).parts
        return any(zone in parts for zone in zones)


Checker = Callable[[FileContext], list[Finding]]

#: rule id -> metadata
RULES: dict[str, Rule] = {}
#: every registered checker with the rule ids it may emit
CHECKERS: list[tuple[tuple[str, ...], Checker]] = []


def rule(id: str, summary: str, severity: str = "error",
         zones: tuple[str, ...] = (), example: str = "",
         remedy: str = "") -> Rule:
    """Register (or re-register, idempotently) one rule's metadata."""
    entry = Rule(id, summary, severity, zones, example, remedy)
    RULES[id] = entry
    return entry


def checker(*rule_ids: str) -> Callable[[Checker], Checker]:
    """Decorator registering a checker for the rules it implements."""
    def wrap(fn: Checker) -> Checker:
        CHECKERS.append((rule_ids, fn))
        return fn
    return wrap


_loaded = False


def ensure_loaded() -> None:
    """Import every rule module exactly once (registration side-effect)."""
    global _loaded
    if _loaded:
        return
    _loaded = True
    from .. import lint  # noqa: F401  (registers the determinism lint)
    from . import lease, ordering, spawn  # noqa: F401


def all_rules() -> list[Rule]:
    """Every registered rule, sorted by id (the catalog)."""
    ensure_loaded()
    return [RULES[rule_id] for rule_id in sorted(RULES)]


def rule_ids() -> list[str]:
    ensure_loaded()
    return sorted(RULES)


@dataclass
class _ParseFailure:
    finding: Finding


def _parse(path: Path, relative: str,
           strict: bool | None) -> FileContext | _ParseFailure:
    source = path.read_text(encoding="utf-8")
    if strict is None:
        parts = Path(relative).parts
        strict = any(zone in parts for zone in STRICT_ZONES)
    try:
        tree = ast.parse(source, filename=str(path))
    except SyntaxError as exc:
        return _ParseFailure(Finding.at(
            "parse-error", f"file does not parse: {exc.msg}",
            relative, exc.lineno or 0, exc.offset or 0))
    return FileContext(path=path, relative=relative, source=source,
                       lines=source.splitlines(), tree=tree,
                       strict=strict)


def run_file(path: Path, relative: str | None = None,
             strict: bool | None = None,
             rules: Iterable[str] | None = None) -> list[Finding]:
    """Run registered rules over one file; suppressions applied.

    ``rules`` restricts the run to the given rule ids (``None`` = all).
    The returned findings are in the stable (path, line, col, rule)
    order and include the suppression-audit warnings.
    """
    ensure_loaded()
    relative = relative if relative is not None else path.name
    context = _parse(Path(path), relative, strict)
    if isinstance(context, _ParseFailure):
        return [context.finding]
    enabled = set(rules) if rules is not None else None
    findings: list[Finding] = []
    for ids, check in CHECKERS:
        if enabled is not None and not enabled.intersection(ids):
            continue
        produced = check(context)
        if enabled is not None:
            produced = [f for f in produced if f.check in enabled]
        findings.extend(produced)
    suppressions = scan_suppressions(context.lines)
    findings = apply_suppressions(findings, suppressions, relative,
                                  enabled=enabled)
    return sorted(findings, key=Finding.sort_key)


def run_tree(root: Path, rules: Iterable[str] | None = None,
             files: Iterable[Path] | None = None) -> list[Finding]:
    """Run rules over every ``*.py`` under ``root`` (or just ``files``).

    Locations are root-relative; output is in the stable order.
    """
    root = Path(root)
    if files is None:
        paths = sorted(root.rglob("*.py"))
    else:
        paths = [Path(f) for f in files]
    findings: list[Finding] = []
    for path in paths:
        try:
            relative = path.relative_to(root).as_posix()
        except ValueError:
            relative = path.as_posix()
        findings.extend(run_file(path, relative, rules=rules))
    return sorted(findings, key=Finding.sort_key)


# the rules the driver itself emits (suppression audit + parse failures)
rule("lint:blanket-allow",
     "blanket '# verify: allow' instead of the scoped form",
     severity="warning",
     example="x = time.time()  # verify: allow",
     remedy="name the rules: '# verify: allow=lint:wall-clock'")
rule("lint:unused-suppression",
     "allow comment that silences nothing",
     severity="warning",
     example="x = 1  # verify: allow=lint:wall-clock",
     remedy="delete the stale comment")
rule("parse-error", "file does not parse",
     remedy="fix the syntax error")


__all__ = [
    "Rule", "FileContext", "RULES", "CHECKERS", "STRICT_ZONES",
    "SPAWN_ZONES", "rule", "checker", "all_rules", "rule_ids",
    "run_file", "run_tree", "ensure_loaded",
]
