"""Lease typestate: the acquire/release protocol, checked statically.

Cores move between tenants only through
:class:`~repro.opsys.inventory.CoreInventory` transitions; the PrT-net
invariants PR 1 proves hold only if the code driving the inventory obeys
the protocol.  Three rules enforce it:

``flow:lease-outside-actuator`` (pattern)
    Inventory mutations (``.acquire`` / ``.release`` / ``.seed`` on an
    inventory receiver) and cpuset mutations (``.allow`` /
    ``.disallow`` / ``.set_mask`` on a cpuset receiver) are only legal
    in the modules that *are* the mechanism: the inventory itself, the
    cpuset itself and the :class:`~repro.control.stages.LeaseActuator`.
    Anywhere else — an experiment reaching into ``os.inventory``, a
    planner editing a mask — bypasses tenant arbitration.

``flow:lease-rollback`` (flow)
    In a function that performs *multi-step* acquisition (several
    ``acquire`` sites, or an ``acquire`` inside a loop), an exception
    escaping the function while at least one core may already be held
    leaks a partial acquisition: the tenant's model re-syncs, but the
    ledger keeps cores no code path will return.  A handler whose body
    contains a ``release`` call counts as a rollback handler and clears
    the abstract state.

``flow:lease-unpaired`` (flow)
    In a function containing both ``acquire`` and ``release`` sites,
    the normal exits must agree: if one path leaves with a net-positive
    held count while another leaves balanced, some branch forgot its
    release (the classic early-``return`` teardown bug).

The abstract state is the set of possible net-held counts, saturated at
two: ``{0}``, ``{0,1}``, ... ``{0,1,2+}`` — a finite lattice, so the
forward fixpoint of :mod:`repro.verify.flow` terminates.  Receivers are
matched by name: a dotted chain containing ``inventory`` (or exactly
``inv``) for lease calls, ``cpuset`` for mask calls.  That is a lint
heuristic, not alias analysis — and it is exactly what makes the rule
cheap enough to gate CI on.
"""

from __future__ import annotations

import ast
from pathlib import Path

from ..flow import (analyse_forward, build_cfg, executed_parts,
                    iter_functions, shallow_walk)
from ..report import Finding
from . import FileContext, checker, rule

rule("flow:lease-outside-actuator",
     "inventory/cpuset mutation outside the lease mechanism",
     example="os.inventory.acquire('db', 3)  # in an experiment",
     remedy="route the change through a LeaseActuator (or a "
            "DryRunActuator) so tenant arbitration applies")
rule("flow:lease-rollback",
     "partial multi-core acquisition can escape on an exception "
     "without rollback",
     example="for c in cores: inventory.acquire(t, c)  # 2nd raises",
     remedy="wrap the loop in try/except, release the already-acquired "
            "cores in the handler, re-raise")
rule("flow:lease-unpaired",
     "acquire without a matching release on some normal path",
     example="if fast: return  # skips inventory.release below",
     remedy="release on every exit (try/finally), or scope-allow with "
            "a justification if the function transfers ownership")

#: files that ARE the mechanism: inventory mutations are their job
_INVENTORY_HOME = ("opsys/inventory.py", "control/stages.py")
#: files allowed to edit cpuset masks directly
_CPUSET_HOME = ("opsys/cpuset.py", "opsys/inventory.py")

_INVENTORY_METHODS = {"acquire", "release", "seed"}
_CPUSET_METHODS = {"allow", "disallow", "set_mask"}

#: saturation point of the held-count lattice
_MANY = 2


def _receiver_chain(node: ast.expr) -> list[str]:
    """``a.b.c`` -> ``["a", "b", "c"]``; empty when not a pure chain."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return parts[::-1]
    return []


def _is_inventory_receiver(chain: list[str]) -> bool:
    return any("inventory" in part or part == "inv" for part in chain)


def _is_cpuset_receiver(chain: list[str]) -> bool:
    return any("cpuset" in part for part in chain)


def classify_call(call: ast.Call) -> str | None:
    """``"acquire"`` / ``"release"`` / ``"seed"`` / ``"cpuset"`` / None."""
    if not isinstance(call.func, ast.Attribute):
        return None
    method = call.func.attr
    chain = _receiver_chain(call.func.value)
    if not chain:
        return None
    if method in _INVENTORY_METHODS and _is_inventory_receiver(chain):
        return method
    if method in _CPUSET_METHODS and _is_cpuset_receiver(chain):
        return "cpuset"
    return None


def _lease_calls(stmt: ast.AST | None) -> list[tuple[str, ast.Call]]:
    """Every matched lease/cpuset call executed at this CFG node."""
    found: list[tuple[str, ast.Call]] = []
    for part in executed_parts(stmt):
        for node in shallow_walk(part):
            if isinstance(node, ast.Call):
                kind = classify_call(node)
                if kind is not None:
                    found.append((kind, node))
    return found


# ----------------------------------------------------------------------
# pattern rule: mutations outside the mechanism
# ----------------------------------------------------------------------

@checker("flow:lease-outside-actuator")
def check_confinement(ctx: FileContext) -> list[Finding]:
    relative = Path(ctx.relative).as_posix()
    inventory_ok = any(relative.endswith(home)
                       for home in _INVENTORY_HOME)
    cpuset_ok = any(relative.endswith(home) for home in _CPUSET_HOME)
    findings: list[Finding] = []
    for node in ast.walk(ctx.tree):
        if not isinstance(node, ast.Call):
            continue
        kind = classify_call(node)
        if kind is None:
            continue
        if kind == "cpuset" and not cpuset_ok:
            findings.append(Finding.at(
                "flow:lease-outside-actuator",
                f"direct cpuset mutation "
                f"'{ast.unparse(node.func)}' outside the lease "
                f"mechanism bypasses tenant-mask arbitration",
                ctx.relative, node.lineno, node.col_offset + 1))
        elif kind != "cpuset" and not inventory_ok:
            findings.append(Finding.at(
                "flow:lease-outside-actuator",
                f"direct inventory mutation "
                f"'{ast.unparse(node.func)}' outside a LeaseActuator "
                f"bypasses tenant arbitration",
                ctx.relative, node.lineno, node.col_offset + 1))
    return findings


# ----------------------------------------------------------------------
# flow rules: typestate over the held-count lattice
# ----------------------------------------------------------------------

def _shift(state: frozenset[int], delta: int) -> frozenset[int]:
    return frozenset(min(max(count + delta, 0), _MANY)
                     for count in state)


def _transfer(stmt: ast.AST | None,
              state: frozenset[int]) -> frozenset[int]:
    if isinstance(stmt, ast.ExceptHandler):
        # a handler whose body releases is a rollback handler: it is
        # trusted to return every partially-acquired core
        if _handler_rolls_back(stmt):
            return frozenset({0})
        return state
    for kind, _ in _lease_calls(stmt):
        if kind == "acquire":
            state = _shift(state, +1)
        elif kind == "release":
            state = _shift(state, -1)
        # "seed" replaces the whole lease set atomically; "cpuset"
        # mutations do not change the held count
    return state


def _handler_rolls_back(handler: ast.ExceptHandler) -> bool:
    for stmt in handler.body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Call) \
                    and classify_call(node) == "release":
                return True
    return False


def exit_states(func: ast.FunctionDef | ast.AsyncFunctionDef
                ) -> tuple[frozenset[int], frozenset[int] | None]:
    """(normal-exit states, escaped-exception states or ``None``).

    The public seam the property tests drive: the abstract held counts
    the fixpoint computes for one function, with no reporting heuristics
    applied.
    """
    cfg = build_cfg(func)
    states = analyse_forward(cfg, frozenset({0}), _transfer,
                             lambda a, b: a | b)
    return (states.get(cfg.exit, frozenset()),
            states.get(cfg.raise_exit))


def _acquire_sites(func: ast.AST) -> list[ast.Call]:
    sites = []
    for node in ast.walk(func):
        if isinstance(node, ast.Call) \
                and classify_call(node) == "acquire":
            sites.append(node)
    return sites


def _has_normal_release(func: ast.AST) -> bool:
    """A ``release`` site outside every except handler.

    Releases inside a handler are rollback compensation, not
    normal-path pairing — a function whose only releases roll back
    (the remedy ``flow:lease-rollback`` prescribes) must not trip the
    unpaired rule for following that advice.
    """
    rollback: set[int] = set()
    for node in ast.walk(func):
        if isinstance(node, ast.ExceptHandler):
            for stmt in node.body:
                for inner in ast.walk(stmt):
                    if isinstance(inner, ast.Call) \
                            and classify_call(inner) == "release":
                        rollback.add(id(inner))
    return any(isinstance(node, ast.Call)
               and classify_call(node) == "release"
               and id(node) not in rollback
               for node in ast.walk(func))


def _acquire_in_loop(func: ast.FunctionDef | ast.AsyncFunctionDef
                     ) -> bool:
    for node in ast.walk(func):
        if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
            if any(isinstance(inner, ast.Call)
                   and classify_call(inner) == "acquire"
                   for stmt in node.body for inner in ast.walk(stmt)):
                return True
    return False


@checker("flow:lease-rollback", "flow:lease-unpaired")
def check_typestate(ctx: FileContext) -> list[Finding]:
    findings: list[Finding] = []
    for name, func in iter_functions(ctx.tree):
        acquires = _acquire_sites(func)
        if not acquires:
            continue
        multi_step = len(acquires) > 1 or _acquire_in_loop(func)
        cfg = build_cfg(func)
        states = analyse_forward(cfg, frozenset({0}), _transfer,
                                 lambda a, b: a | b)
        if multi_step:
            findings.extend(_rollback_findings(ctx, name, cfg, states))
        if _has_normal_release(func):
            normal = states.get(cfg.exit, frozenset())
            if 0 in normal and any(count > 0 for count in normal):
                findings.append(Finding.at(
                    "flow:lease-unpaired",
                    f"{name}() releases on some paths but can exit "
                    f"holding {max(normal)}+ unreleased acquisition(s) "
                    f"on another",
                    ctx.relative, func.lineno, func.col_offset + 1))
    return findings


def _rollback_findings(ctx: FileContext, name: str, cfg,
                       states) -> list[Finding]:
    """Flag the first raising statement that escapes with held leases.

    Several statements usually qualify at once (every call in the
    acquisition loop); one finding per function, at the earliest such
    site, keeps the report actionable.
    """
    sites: list[tuple[int, int, int]] = []
    for node, stmt in cfg.stmts.items():
        if node not in states or stmt is None:
            continue
        escapes = any(target == cfg.raise_exit and kind == "exc"
                      for target, kind in cfg.succ.get(node, ()))
        if not escapes:
            continue
        held = [count for count in states[node] if count > 0]
        if held:
            sites.append((getattr(stmt, "lineno", 0),
                          getattr(stmt, "col_offset", -1) + 1,
                          max(held)))
    if not sites:
        return []
    line, col, held_max = min(sites)
    return [Finding.at(
        "flow:lease-rollback",
        f"an exception here escapes {name}() while up to {held_max}+ "
        f"core(s) of a multi-step acquisition are held; no rollback "
        f"handler releases them",
        ctx.relative, line, col)]
