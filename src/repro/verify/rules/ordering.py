"""Ordering nondeterminism: set iteration order must never reach a trace.

The golden-trace tests pin *dynamically* that the same seed yields the
same bytes; iteration over a ``set``/``frozenset`` is the classic way to
lose that property while every test still passes on one interpreter
build (CPython hashes small ints stably, so the bug ships and detonates
on the next platform).  ``flow:set-iteration`` makes the guarantee
static inside the strict zones (``core/``, ``sim/``, ``opsys/``): any
expression that *may* hold a set — tracked per function by forward
dataflow over assignments, augmented ops, set literals/constructors, the
inventory/cpuset accessors that return ``frozenset`` (``allowed``,
``mask_of``, ``free_cores``, ``unavailable_to``, ``own``, ``foreign``)
and ``self.<attr>`` fields any method of the class assigns a set to —
must not flow into an order-sensitive sink:

* a ``for`` loop or an ordered comprehension (list/dict/generator —
  a set comprehension over a set is still unordered and stays legal);
* ``list()`` / ``tuple()`` / ``iter()`` / ``enumerate()``;
* ``.join()`` / ``.extend()`` arguments.

Order-insensitive consumers (``len``, ``min``/``max`` with a total
order, ``sorted``, ``any``/``all``, membership tests, set algebra) pass
untouched — and ``sorted(s)`` is the canonical fix, which is why the
rule never fires on its own remedy.
"""

from __future__ import annotations

import ast

from ..flow import (analyse_forward, build_cfg, executed_parts,
                    iter_functions, shallow_walk)
from ..report import Finding
from . import STRICT_ZONES, FileContext, checker, rule

rule("flow:set-iteration",
     "set iteration order flows into an order-sensitive construct",
     zones=STRICT_ZONES,
     example="for core in self.mask_of(tenant): ...",
     remedy="iterate sorted(...) (or keep a sorted tuple alongside the "
            "set, as CpuSet does)")

#: repo methods documented to return a set/frozenset
_SET_RETURNING = {"allowed", "mask_of", "free_cores", "unavailable_to",
                  "own", "foreign"}
#: set methods returning another set
_SET_ALGEBRA = {"union", "difference", "intersection",
                "symmetric_difference", "copy"}
#: calls whose output order mirrors the argument's iteration order
_ORDERED_CALLS = {"list", "tuple", "iter", "enumerate"}
_ORDERED_METHODS = {"join", "extend"}
_SET_OPS = (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)


def _key(expr: ast.expr) -> str | None:
    """A trackable name: ``x`` or a short dotted ``self.attr`` chain."""
    parts: list[str] = []
    node = expr
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name) or len(parts) > 2:
        return None
    parts.append(node.id)
    return ".".join(parts[::-1])


def _is_set_annotation(annotation: ast.expr | None) -> bool:
    if annotation is None:
        return False
    node = annotation
    if isinstance(node, ast.Subscript):
        node = node.value
    return isinstance(node, ast.Name) and node.id in ("set", "frozenset")


def is_set_expr(expr: ast.expr | None,
                state: frozenset[str]) -> bool:
    """Whether ``expr`` may evaluate to a set under ``state``."""
    if expr is None:
        return False
    if isinstance(expr, (ast.Set, ast.SetComp)):
        return True
    if isinstance(expr, (ast.Name, ast.Attribute)):
        key = _key(expr)
        return key is not None and key in state
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Name) and func.id in ("set", "frozenset"):
            return True
        if isinstance(func, ast.Attribute):
            if func.attr in _SET_RETURNING:
                return True
            if func.attr in _SET_ALGEBRA \
                    and is_set_expr(func.value, state):
                return True
        return False
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, _SET_OPS):
        return is_set_expr(expr.left, state) \
            or is_set_expr(expr.right, state)
    if isinstance(expr, ast.IfExp):
        return is_set_expr(expr.body, state) \
            or is_set_expr(expr.orelse, state)
    return False


def _assign_keys(target: ast.expr) -> list[str]:
    if isinstance(target, (ast.Tuple, ast.List)):
        return [key for element in target.elts
                for key in _assign_keys(element)]
    key = _key(target)
    return [key] if key is not None else []


def _transfer(stmt: ast.AST | None,
              state: frozenset[str]) -> frozenset[str]:
    if stmt is None or isinstance(stmt, ast.ExceptHandler):
        return state
    if isinstance(stmt, ast.Assign):
        is_set = is_set_expr(stmt.value, state)
        for target in stmt.targets:
            for key in _assign_keys(target):
                state = state | {key} if is_set else state - {key}
        return state
    if isinstance(stmt, ast.AnnAssign):
        key = _key(stmt.target)
        if key is not None:
            is_set = (_is_set_annotation(stmt.annotation)
                      or is_set_expr(stmt.value, state))
            state = state | {key} if is_set else state - {key}
        return state
    if isinstance(stmt, ast.AugAssign):
        key = _key(stmt.target)
        if key is not None and isinstance(stmt.op, _SET_OPS) \
                and is_set_expr(stmt.value, state):
            return state | {key}
        return state
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        # the loop variable holds *elements* of the iterable, not sets
        removed = frozenset(_assign_keys(stmt.target))
        return state - removed
    return state


def _initial_state(func: ast.FunctionDef | ast.AsyncFunctionDef,
                   attrs: frozenset[str]) -> frozenset[str]:
    args = func.args
    names = [*args.posonlyargs, *args.args, *args.kwonlyargs]
    if args.vararg:
        names.append(args.vararg)
    annotated = frozenset(
        arg.arg for arg in names if _is_set_annotation(arg.annotation))
    return annotated | attrs


def class_set_attrs(klass: ast.ClassDef) -> frozenset[str]:
    """``self.<attr>`` keys any method of ``klass`` assigns a set to."""
    attrs: set[str] = set()
    for node in klass.body:
        if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            continue
        cfg = build_cfg(node)
        states = analyse_forward(cfg, frozenset(), _transfer,
                                 lambda a, b: a | b)
        for keys in states.values():
            attrs.update(key for key in keys if key.startswith("self."))
    return frozenset(attrs)


def _sink_findings(ctx: FileContext, stmt: ast.AST | None,
                   state: frozenset[str]) -> list[Finding]:
    findings: list[Finding] = []

    def flag(node: ast.AST, how: str) -> None:
        findings.append(Finding.at(
            "flow:set-iteration",
            f"{how} depends on set iteration order; wrap the set in "
            f"sorted(...)",
            ctx.relative, node.lineno, node.col_offset + 1))

    if isinstance(stmt, (ast.For, ast.AsyncFor)) \
            and is_set_expr(stmt.iter, state):
        flag(stmt.iter, "'for' loop over a set")
    for part in executed_parts(stmt):
        for node in shallow_walk(part):
            if isinstance(node, (ast.ListComp, ast.DictComp,
                                 ast.GeneratorExp)):
                for generator in node.generators:
                    if is_set_expr(generator.iter, state):
                        flag(generator.iter,
                             "ordered comprehension over a set")
            elif isinstance(node, ast.Call):
                func = node.func
                if isinstance(func, ast.Name) \
                        and func.id in _ORDERED_CALLS \
                        and node.args \
                        and is_set_expr(node.args[0], state):
                    flag(node, f"{func.id}() over a set")
                elif isinstance(func, ast.Attribute) \
                        and func.attr in _ORDERED_METHODS \
                        and node.args \
                        and is_set_expr(node.args[0], state):
                    flag(node, f".{func.attr}() over a set")
    return findings


@checker("flow:set-iteration")
def check_ordering(ctx: FileContext) -> list[Finding]:
    if not ctx.strict:
        return []
    attrs_by_class: dict[ast.AST, frozenset[str]] = {}
    for node in ast.walk(ctx.tree):
        if isinstance(node, ast.ClassDef):
            attrs_by_class[node] = class_set_attrs(node)
    owner: dict[ast.AST, frozenset[str]] = {}
    for klass, attrs in attrs_by_class.items():
        for node in klass.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                owner[node] = attrs
    findings: list[Finding] = []
    for _, func in iter_functions(ctx.tree):
        cfg = build_cfg(func)
        initial = _initial_state(func, owner.get(func, frozenset()))
        states = analyse_forward(cfg, initial, _transfer,
                                 lambda a, b: a | b)
        for node, stmt in cfg.stmts.items():
            if node in states and stmt is not None:
                findings.extend(
                    _sink_findings(ctx, stmt, states[node]))
    return findings
