"""Spawn-safety: objects crossing the process/snapshot boundary must pickle.

Two machines move whole object graphs between processes: the
:mod:`repro.runner` spawn pool (tasks and their results pickle to
workers) and :meth:`repro.sim.state.SimState.capture` (the entire warmed
simulation graph — event heap callbacks, cpuset listener lists, thread
``on_exit`` hooks — pickles into the snapshot payload).  A lambda or a
function defined inside another function cannot be pickled by reference,
so storing one anywhere in those graphs is a time bomb that only
detonates when a warm-start or ``--parallel`` run first captures it —
the exact bug class PR 5 had to hunt by hand.  Two rules make it
static:

``flow:spawn-unpicklable``
    Inside the spawn zones (``sim/``, ``opsys/``, ``runner/``): a
    lambda or nested function stored into an object attribute, or
    passed to a graph-persisting sink (``subscribe``, ``schedule``,
    ``reschedule``, ``capture``, ``spawn_thread``,
    ``register_global_state``, or any ``on_exit=``/``callback=``/
    ``listener=`` keyword), or bound to a module-level name (pickle
    resolves functions by qualified name; ``<lambda>`` has none).
    Transient uses — a ``key=lambda`` in ``sorted``/``min``/``max`` —
    never enter a persisted graph and are not flagged.

``flow:spawn-global-mutable``
    A module-level mutable (list/dict/set literal or constructor bound
    to a non-CONSTANT name) in ``sim/`` or ``opsys/`` lives outside
    every object graph, so a snapshot silently forks *around* it and a
    restored run sees the parent's state.  Such state must either be
    named like a constant (``_REGISTRY``-style, declaring "shared by
    design") or be registered through
    :func:`repro.sim.state.register_global_state` so capture/restore
    round-trips it.
"""

from __future__ import annotations

import ast
from collections.abc import Iterator

from ..report import Finding
from . import SPAWN_ZONES, FileContext, checker, rule

rule("flow:spawn-unpicklable",
     "lambda/nested function reaches a pickled object graph",
     zones=SPAWN_ZONES,
     example="self.cpuset.subscribe(lambda a, r: counter.inc())",
     remedy="use a module-level class with __call__ (picklable by "
            "qualified name) instead of the closure")
rule("flow:spawn-global-mutable",
     "unregistered module-level mutable in a snapshot zone",
     zones=("sim", "opsys"),
     example="_pending = []  # at module scope in opsys/",
     remedy="register it via register_global_state(...), or rename it "
            "to CONSTANT_CASE if it is shared by design")

#: method names whose callable arguments persist in an object graph
_SINK_METHODS = {"subscribe", "schedule", "reschedule", "capture",
                 "spawn_thread"}
#: bare function names with the same property
_SINK_FUNCTIONS = {"register_global_state"}
#: keyword names that store a callback wherever they appear
_SINK_KWARGS = {"on_exit", "callback", "listener"}

#: constructors producing module-level mutable state
_MUTABLE_CTORS = {"list", "dict", "set", "bytearray", "defaultdict",
                  "deque", "OrderedDict", "Counter"}

_SCOPES = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda,
           ast.ClassDef)


def _scope_nodes(scope: ast.AST) -> Iterator[ast.AST]:
    """Every AST node executed in ``scope`` itself (nested scopes cut)."""
    for child in ast.iter_child_nodes(scope):
        if isinstance(child, _SCOPES):
            continue
        yield child
        yield from _scope_nodes(child)


def _scopes(tree: ast.Module) -> Iterator[tuple[ast.AST, set[str]]]:
    """(scope, names of functions local to that scope) pairs.

    Module-level ``def``s pickle by qualified name and are excluded;
    functions nested inside another function do not.
    """
    yield tree, set()

    def walk(node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield child
            walk_children = not isinstance(child, ast.Lambda)
            if walk_children:
                yield from walk(child)

    for func in walk(tree):
        local = {child.name for child in ast.walk(func)
                 if isinstance(child, (ast.FunctionDef,
                                       ast.AsyncFunctionDef))
                 and child is not func}
        yield func, local


def _offender(node: ast.expr, local_funcs: set[str]) -> str | None:
    """Why this argument/value cannot pickle, or ``None``."""
    if isinstance(node, ast.Lambda):
        return "a lambda"
    if isinstance(node, ast.Name) and node.id in local_funcs:
        return f"the nested function {node.id!r}"
    return None


@checker("flow:spawn-unpicklable")
def check_unpicklable(ctx: FileContext) -> list[Finding]:
    if not ctx.in_zone(SPAWN_ZONES):
        return []
    findings: list[Finding] = []

    def flag(node: ast.AST, what: str, where: str) -> None:
        findings.append(Finding.at(
            "flow:spawn-unpicklable",
            f"{what} {where} cannot pickle across the spawn/snapshot "
            f"boundary; use a module-level class with __call__",
            ctx.relative, node.lineno, node.col_offset + 1))

    for scope, local_funcs in _scopes(ctx.tree):
        at_module = isinstance(scope, ast.Module)
        for node in _scope_nodes(scope):
            if isinstance(node, ast.Assign):
                why = _offender(node.value, local_funcs)
                if why is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Attribute):
                        flag(node.value, why,
                             f"stored into attribute "
                             f"'{ast.unparse(target)}'")
                    elif at_module and isinstance(target, ast.Name):
                        flag(node.value, why,
                             f"bound to module-level name "
                             f"{target.id!r}")
            elif isinstance(node, ast.Call):
                sink = None
                if isinstance(node.func, ast.Attribute) \
                        and node.func.attr in _SINK_METHODS:
                    sink = node.func.attr
                elif isinstance(node.func, ast.Name) \
                        and node.func.id in _SINK_FUNCTIONS:
                    sink = node.func.id
                if sink is not None:
                    for arg in node.args:
                        why = _offender(arg, local_funcs)
                        if why is not None:
                            flag(arg, why, f"passed to {sink}()")
                for keyword in node.keywords:
                    if keyword.arg in _SINK_KWARGS:
                        why = _offender(keyword.value, local_funcs)
                        if why is not None:
                            flag(keyword.value, why,
                                 f"passed as {keyword.arg}=")
    return findings


@checker("flow:spawn-global-mutable")
def check_global_mutable(ctx: FileContext) -> list[Finding]:
    if not ctx.in_zone(("sim", "opsys")):
        return []
    findings: list[Finding] = []
    for stmt in ctx.tree.body:
        value: ast.expr | None
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            targets, value = [stmt.target], stmt.value
        else:
            continue
        mutable = isinstance(value, (ast.List, ast.Dict, ast.Set)) or (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in _MUTABLE_CTORS)
        if not mutable:
            continue
        for target in targets:
            if not isinstance(target, ast.Name):
                continue
            name = target.id
            if name.upper() == name:  # CONSTANT_CASE: shared by design
                continue
            if name.startswith("__") and name.endswith("__"):
                continue  # __all__ and friends are module metadata
            findings.append(Finding.at(
                "flow:spawn-global-mutable",
                f"module-level mutable {name!r} lives outside every "
                f"snapshot graph; register it via "
                f"register_global_state or rename to CONSTANT_CASE",
                ctx.relative, stmt.lineno, stmt.col_offset + 1))
    return findings
