"""Numeric net structure: token-count Pre/Post matrices and basic checks.

:meth:`PetriNet.incidence` renders the *symbolic* matrices of the paper's
Figs 8-11 (arc labels like ``"u"`` / ``"na"``).  The analyses need the
*numeric* token-count view: ``Pre[p, t]`` / ``Post[p, t]`` count how many
tokens transition ``t`` consumes from / produces into place ``p``, and
``C = Post - Pre`` is the incidence matrix over which P/T-invariants are
computed.  Every arc of a PrT net moves exactly one (valued) token, so
the counts are the number of arcs.

Structural checks here need no guard reasoning:

* transitions with no input or no output arcs (sources/sinks break any
  conservation argument);
* transitions that are *structurally dead* under the cycle-entry marking
  (some input place can never be marked, so the guard never even gets
  evaluated);
* places no transition ever marks and the entry marking leaves empty.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.petrinet import PetriNet
from .report import Finding


@dataclass(frozen=True)
class NetStructure:
    """The token-count structure of a net.

    ``pre``/``post`` are ``(n_places, n_transitions)`` integer arrays in
    the order of ``places`` / ``transitions``.
    """

    places: tuple[str, ...]
    transitions: tuple[str, ...]
    pre: np.ndarray
    post: np.ndarray

    @property
    def incidence(self) -> np.ndarray:
        """``C = Post - Pre``: net token flow per (place, transition)."""
        return self.post - self.pre

    def place_index(self, name: str) -> int:
        """Row of ``name`` in the matrices."""
        return self.places.index(name)

    def transition_index(self, name: str) -> int:
        """Column of ``name`` in the matrices."""
        return self.transitions.index(name)

    @classmethod
    def from_net(cls, net: PetriNet) -> NetStructure:
        """Count arcs of ``net`` into numeric matrices."""
        places = tuple(net.place_names())
        transitions = tuple(net.transition_names())
        pre = np.zeros((len(places), len(transitions)), dtype=np.int64)
        post = np.zeros_like(pre)
        for j, tname in enumerate(transitions):
            transition = net.transition(tname)
            for arc in transition.inputs:
                pre[places.index(arc.place), j] += 1
            for arc in transition.outputs:
                post[places.index(arc.place), j] += 1
        return cls(places=places, transitions=transitions,
                   pre=pre, post=post)


def markable_places(structure: NetStructure,
                    entry_marking: set[str]) -> set[str]:
    """Fixpoint of places that can ever hold a token.

    Starts from the places marked at cycle entry and adds the outputs of
    every transition whose inputs are all markable, ignoring guards (an
    over-approximation: if a place is not markable here, it is not
    markable under any guard semantics either).
    """
    markable = {p for p in entry_marking if p in structure.places}
    changed = True
    while changed:
        changed = False
        for j, _ in enumerate(structure.transitions):
            ins = {structure.places[i]
                   for i in np.nonzero(structure.pre[:, j])[0]}
            if ins <= markable:
                outs = {structure.places[i]
                        for i in np.nonzero(structure.post[:, j])[0]}
                if not outs <= markable:
                    markable |= outs
                    changed = True
    return markable


def check_structure(structure: NetStructure,
                    entry_marking: set[str]) -> list[Finding]:
    """Run every structural check; return the findings."""
    findings: list[Finding] = []
    for j, tname in enumerate(structure.transitions):
        if not structure.pre[:, j].any():
            findings.append(Finding(
                "structure", "transition has no input arc: it could fire "
                "unboundedly and creates tokens from nothing",
                location=tname))
        if not structure.post[:, j].any():
            findings.append(Finding(
                "structure", "transition has no output arc: every firing "
                "destroys a token", location=tname))

    markable = markable_places(structure, entry_marking)
    for j, tname in enumerate(structure.transitions):
        ins = {structure.places[i]
               for i in np.nonzero(structure.pre[:, j])[0]}
        missing = sorted(ins - markable)
        if missing:
            findings.append(Finding(
                "structure",
                f"transition is structurally dead: input place(s) "
                f"{missing} can never be marked from the entry marking "
                f"{sorted(entry_marking)}", location=tname))
    for place in structure.places:
        if place not in markable:
            findings.append(Finding(
                "structure",
                f"place can never hold a token from the entry marking "
                f"{sorted(entry_marking)}", location=place,
                severity="warning"))
    return findings
