"""Suppression comments: the scoped ``# verify: allow=<rule-id>`` hatch.

A finding is silenced by a comment on the line it is reported at:

* ``# verify: allow=<rule-id>[,<rule-id>...]`` — the scoped form;
  suppresses only the named rules on that line;
* ``# verify: allow`` — the legacy blanket form; still accepted (it
  suppresses everything on the line) but reported as
  ``lint:blanket-allow`` so it can be migrated to the scoped form.

Suppression is applied *centrally*, after every rule has run, which is
what makes the hatch auditable: a scoped allow that silences nothing is
itself reported (``lint:unused-suppression``), so stale hatches cannot
accumulate as invisible holes in the gate.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from .report import Finding

#: the allow comment, anchored to the end of the line
_ALLOW_RE = re.compile(
    r"#\s*verify:\s*allow(?:=(?P<ids>[A-Za-z0-9_:\-]+"
    r"(?:\s*,\s*[A-Za-z0-9_:\-]+)*))?\s*$")


@dataclass
class Suppression:
    """One allow comment in one file."""

    line: int
    #: rule ids named by the scoped form; empty tuple = blanket
    rule_ids: tuple[str, ...]
    #: ids (or "*" for blanket) that silenced at least one finding
    used: set[str] = field(default_factory=set)

    @property
    def blanket(self) -> bool:
        return not self.rule_ids

    def matches(self, check: str) -> bool:
        return self.blanket or check in self.rule_ids


def scan_suppressions(source_lines: list[str]) -> dict[int, Suppression]:
    """Find every allow comment; keyed by 1-based line number."""
    found: dict[int, Suppression] = {}
    for number, text in enumerate(source_lines, start=1):
        match = _ALLOW_RE.search(text)
        if match is None:
            continue
        ids = match.group("ids")
        rule_ids = (tuple(part.strip() for part in ids.split(","))
                    if ids else ())
        found[number] = Suppression(line=number, rule_ids=rule_ids)
    return found


def apply_suppressions(findings: list[Finding],
                       suppressions: dict[int, Suppression],
                       path: str,
                       enabled: set[str] | None = None) -> list[Finding]:
    """Filter ``findings`` through the file's allow comments.

    Returns the surviving findings plus the audit findings the hatch
    itself generates: one ``lint:blanket-allow`` warning per blanket
    comment and one ``lint:unused-suppression`` warning per allow (or
    per scoped rule id) that silenced nothing.  When only a subset of
    rules ran (``enabled``), unused warnings are limited to allows for
    rules that actually ran — an allow for a rule outside the subset is
    not stale, it just was not exercised.
    """
    kept: list[Finding] = []
    for finding in findings:
        suppression = suppressions.get(finding.line)
        if suppression is not None and suppression.matches(finding.check):
            suppression.used.add(
                finding.check if not suppression.blanket else "*")
            continue
        kept.append(finding)
    for suppression in suppressions.values():
        if suppression.blanket:
            kept.append(Finding.at(
                "lint:blanket-allow",
                "blanket '# verify: allow' suppresses every rule on the "
                "line; scope it: '# verify: allow=<rule-id>'",
                path, suppression.line, severity="warning"))
            if not suppression.used and enabled is None:
                kept.append(Finding.at(
                    "lint:unused-suppression",
                    "allow comment matches no finding",
                    path, suppression.line, severity="warning"))
            continue
        for rule_id in suppression.rule_ids:
            if enabled is not None and rule_id not in enabled:
                continue
            if rule_id not in suppression.used:
                kept.append(Finding.at(
                    "lint:unused-suppression",
                    f"allow for {rule_id!r} matches no finding on this "
                    f"line",
                    path, suppression.line, severity="warning"))
    return kept
