"""Workloads: TPC-H, the hand-coded Q6 microbenchmark, phase drivers."""

from .microbench import MicrobenchResult, run_q6_kernel
from .phases import mixed_phases_stream, stable_phases_schedule
from .selectivity import selectivity_query

__all__ = [
    "run_q6_kernel",
    "MicrobenchResult",
    "stable_phases_schedule",
    "mixed_phases_stream",
    "selectivity_query",
]
