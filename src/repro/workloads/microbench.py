"""The hand-coded C version of TPC-H Q6 (paper §II-B).

The paper compares MonetDB's Volcano execution of Q6 against a pthreads C
program that scans only the four referenced columns with explicit thread
affinity.  Here the kernel is a set of plain work items over the lineitem
BAT pages — one slice per thread, no staged plan, no intermediates — with a
much lower cycles-per-byte cost than the interpreted engine (the paper's
"near-to-limit performance" baseline).

Affinity modes follow the paper: ``os`` leaves placement to the scheduler,
``dense`` pins every thread onto one node, ``sparse`` spreads the pins
round-robin across nodes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..db.catalog import Table
from ..errors import WorkloadError
from ..opsys.system import OperatingSystem
from ..opsys.thread import SimThread
from ..opsys.workitem import ListWorkSource, WorkItem

#: columns the hand-coded kernel streams (Fig 3's C code)
Q6_COLUMNS = ("l_quantity", "l_extendedprice", "l_discount", "l_shipdate")

#: tight compiled loop: far cheaper per byte than the interpreted engine
C_CYCLES_PER_BYTE = 0.8

AFFINITIES = ("os", "dense", "sparse")


@dataclass
class MicrobenchResult:
    """Outcome of one microbenchmark run."""

    n_clients: int
    repetitions: int
    makespan: float
    queries_completed: int

    @property
    def throughput(self) -> float:
        """Completed kernel executions per second."""
        if self.makespan <= 0:
            return 0.0
        return self.queries_completed / self.makespan


class _Client:
    """One closed-loop client executing the kernel ``repetitions`` times."""

    def __init__(self, bench: "Q6Microbench", client_id: int):
        self.bench = bench
        self.client_id = client_id
        self.remaining = bench.repetitions
        self.live_threads = 0

    def start_run(self) -> None:
        self.remaining -= 1
        bench = self.bench
        n = bench.threads_per_client
        self.live_threads = n
        for t in range(n):
            pages: list[int] = []
            for column in Q6_COLUMNS:
                pages.extend(bench.table.bat(column).page_slice(t, n))
            cycles = (len(pages) * bench.os.machine.memory.page_bytes
                      * C_CYCLES_PER_BYTE)
            source = ListWorkSource([WorkItem(
                "c.q6_scan", reads=pages, cycles=cycles,
                query_name="q6_c")])
            bench.os.spawn_thread(
                source, name=f"c{self.client_id}.t{t}",
                process_id=self.client_id,
                pinned_core=bench.pin_for(t),
                on_exit=self._thread_done)

    def _thread_done(self, thread: SimThread) -> None:
        self.live_threads -= 1
        if self.live_threads == 0:
            self.bench.completed += 1
            if self.remaining > 0:
                self.start_run()


class Q6Microbench:
    """Driver for the C-kernel runs of Fig 4."""

    def __init__(self, os: OperatingSystem, lineitem: Table,
                 n_clients: int, repetitions: int = 1,
                 threads_per_client: int = 4, affinity: str = "os"):
        if affinity not in AFFINITIES:
            raise WorkloadError(f"unknown affinity {affinity!r}")
        if n_clients < 1 or repetitions < 1 or threads_per_client < 1:
            raise WorkloadError("clients/reps/threads must be >= 1")
        for column in Q6_COLUMNS:
            if column not in lineitem:
                raise WorkloadError(f"lineitem lacks column {column!r}")
        self.os = os
        self.table = lineitem
        self.n_clients = n_clients
        self.repetitions = repetitions
        self.threads_per_client = threads_per_client
        self.affinity = affinity
        self.completed = 0

    def pin_for(self, thread_index: int) -> int | None:
        """Pinned core for a thread under the configured affinity."""
        topo = self.os.topology
        if self.affinity == "dense":
            cores = topo.cores_of_node(0)
            return cores[thread_index % len(cores)]
        if self.affinity == "sparse":
            node = thread_index % topo.n_sockets
            local = (thread_index // topo.n_sockets) \
                % topo.cores_per_socket
            return topo.core(node, local)
        return None

    def run(self) -> MicrobenchResult:
        """Run all clients to completion and report."""
        start = self.os.now
        for client_id in range(self.n_clients):
            _Client(self, client_id).start_run()
        self.os.run_until_idle()
        return MicrobenchResult(
            n_clients=self.n_clients,
            repetitions=self.repetitions,
            makespan=self.os.now - start,
            queries_completed=self.completed,
        )


def run_q6_kernel(os: OperatingSystem, lineitem: Table, n_clients: int,
                  repetitions: int = 1, threads_per_client: int = 4,
                  affinity: str = "os") -> MicrobenchResult:
    """Convenience wrapper: build and run a :class:`Q6Microbench`."""
    bench = Q6Microbench(os, lineitem, n_clients, repetitions,
                         threads_per_client, affinity)
    return bench.run()
