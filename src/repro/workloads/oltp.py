"""A small OLTP-style point-query workload (paper's future work, §VII).

The paper closes by proposing to "study extensions to DBMS schedulers to
take benefit from under-utilized cores to concurrent applications (e.g.,
mixed OLAP/OLTP)".  This module provides the OLTP half of that study: a
co-located application issuing *point queries* — single-key lookups over
the orders table with a tiny footprint and one worker each — so the
mixed-workload experiment can measure how much of the machine the elastic
mechanism leaves to it.

Point queries are parameterised by key so each execution profiles its own
(small) plan; keys come from a seeded generator for reproducibility.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from ..db.operators import IndexLookup, Join, PlanNode
from ..errors import WorkloadError


def point_lookup(order_key: int) -> PlanNode:
    """A primary-key lookup on orders joined to its lineitems.

    The classic OLTP shape: fetch one order row and its handful of line
    items, through simulated index descents on both tables — a few pages
    touched, one worker, sub-millisecond."""
    if order_key < 1:
        raise WorkloadError("order keys start at 1")
    order = IndexLookup("orders", "o_orderkey", order_key,
                        keep=["o_orderkey", "o_custkey", "o_totalprice"])
    items = IndexLookup("lineitem", "l_orderkey", order_key,
                        keep=["l_orderkey", "l_quantity",
                              "l_extendedprice"])
    return Join(items, order, ["l_orderkey"], ["o_orderkey"],
                how="inner",
                keep_left=["l_quantity", "l_extendedprice"],
                keep_right=["o_custkey", "o_totalprice"])


def point_query_names(n_queries: int, n_orders: int,
                      seed: int = 97) -> list[tuple[str, int]]:
    """Deterministic (name, key) pairs for ``n_queries`` point lookups."""
    if n_queries < 1 or n_orders < 1:
        raise WorkloadError("need at least one query and one order")
    rng = random.Random(seed)
    pairs = []
    for i in range(n_queries):
        key = rng.randint(1, n_orders)
        pairs.append((f"oltp_lookup_{i}", key))
    return pairs


def register_point_queries(engine, n_distinct: int = 16,
                           seed: int = 97) -> list[str]:
    """Register ``n_distinct`` point-lookup plans on ``engine``.

    Returns the registered names.  Distinct plans (rather than one
    re-parameterised plan) keep the engine's profile cache meaningful —
    each name profiles once and is then cheap to resubmit, which is how
    prepared statements behave.
    """
    n_orders = engine.catalog.table("orders").n_rows
    names = []
    for name, key in point_query_names(n_distinct, n_orders, seed):
        engine.register_query(name, point_lookup(key))
        names.append(name)
    return names


def oltp_stream(names: list[str], queries_per_client: int,
                seed: int = 53) -> Callable[[int], list[str]]:
    """Closed-loop stream factory drawing uniformly from ``names``."""
    if not names:
        raise WorkloadError("no registered point queries")
    if queries_per_client < 1:
        raise WorkloadError("queries_per_client must be >= 1")

    def factory(client_id: int) -> list[str]:
        rng = random.Random(seed * 99_991 + client_id)
        return [rng.choice(names) for _ in range(queries_per_client)]

    return factory
