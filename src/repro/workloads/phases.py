"""Phase-structured TPC-H workloads (paper §V-C).

* **Stable phases** — "each phase is the concurrent execution of each query
  at a time by N users": all clients run q1 once, then all run q2, ...
  Phase boundaries are where the load dips and the mechanism breathes.
* **Mixed phases** — every client continuously draws a *random* query from
  the 22, de-synchronising the load; used for the per-query speedup and
  HT/IMC comparison of Fig 19.
"""

from __future__ import annotations

import random
from collections.abc import Callable

from ..errors import WorkloadError
from .tpch.queries import QUERY_NAMES


def stable_phases_schedule(queries: list[str] | None = None) -> list[str]:
    """The phase order of the stable-phases workload (one query each)."""
    schedule = list(queries) if queries is not None else list(QUERY_NAMES)
    if not schedule:
        raise WorkloadError("schedule cannot be empty")
    return schedule


def mixed_phases_stream(queries_per_client: int, seed: int = 7,
                        queries: list[str] | None = None,
                        ) -> Callable[[int], list[str]]:
    """Stream factory for the mixed-phases workload.

    Every client gets its own deterministic random sequence of
    ``queries_per_client`` names drawn uniformly from the query set; the
    same ``(seed, client)`` pair always yields the same sequence.
    """
    if queries_per_client < 1:
        raise WorkloadError("queries_per_client must be >= 1")
    pool = list(queries) if queries is not None else list(QUERY_NAMES)
    if not pool:
        raise WorkloadError("query pool cannot be empty")

    def factory(client_id: int) -> list[str]:
        rng = random.Random(seed * 1_000_003 + client_id)
        return [rng.choice(pool) for _ in range(queries_per_client)]

    return factory
