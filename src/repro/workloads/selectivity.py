"""Selectivity-sweep workload for the L3-miss study (paper §V-A2, Fig 15).

The paper measures memory-intensive column scans that fetch different
fractions of the data.  ``l_quantity`` is uniform on [1, 50], so a
predicate ``l_quantity <= 50 * fraction`` selects almost exactly that
fraction of the column; the selected rows are materialised (the paper's
point is that beyond ~64 % the result no longer fits the L3).
"""

from __future__ import annotations

from ..db.expressions import Col, le
from ..db.operators import Aggregate, Filter, PlanNode, Scan
from ..errors import WorkloadError

#: the paper's Fig 15 x-axis
SELECTIVITY_LEVELS = (0.02, 0.04, 0.08, 0.16, 0.32, 0.64, 1.00)


def selectivity_query(fraction: float) -> PlanNode:
    """A thetasubselect over ``l_quantity`` selecting ``fraction`` rows."""
    if not 0.0 < fraction <= 1.0:
        raise WorkloadError("fraction must be in (0, 1]")
    threshold = 50.0 * fraction
    selected = Filter(Scan("lineitem"),
                      le(Col("l_quantity"), threshold),
                      keep=["l_quantity", "l_extendedprice"])
    selected.mal_name = "algebra.thetasubselect"
    return Aggregate(selected, [],
                     {"total": ("sum", Col("l_extendedprice"))})


def selectivity_name(fraction: float) -> str:
    """Registered query name for one sweep level (``sel_32pct``)."""
    return f"sel_{int(round(fraction * 100))}pct"
