"""Synthetic TPC-H: schema constants, data generator and the 22 queries.

Data is generated at a small real scale (for fast oracle execution) while
the *simulated* footprint is scaled to the paper's 1 GB database through
``byte_scale`` — see :mod:`repro.db.bat`.
"""

from .datagen import TpchDataset, generate
from .params import build_variants
from .queries import QUERY_NAMES, build_queries
from .schema import SCALE_FACTOR_ROWS, date_index

__all__ = [
    "generate",
    "TpchDataset",
    "build_queries",
    "build_variants",
    "QUERY_NAMES",
    "date_index",
    "SCALE_FACTOR_ROWS",
]
