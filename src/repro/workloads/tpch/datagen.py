"""Synthetic TPC-H data generator (the dbgen stand-in).

Generates all eight tables at an arbitrary *real* scale factor with the
column shapes and value distributions the 22 queries select on, while the
*simulated* footprint is scaled to a target scale factor (the paper's 1 GB
database) through ``byte_scale``.

Deviations from dbgen, chosen deliberately and documented in DESIGN.md:
strings are dictionary codes, dates are day indexes, free-text LIKE targets
are boolean flag columns with dbgen-equivalent selectivities, and key
distributions are uniform rather than dbgen's seeded permutations.  Query
*selectivities* — the quantity the simulation cares about — match the
official parameters closely.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ...db.catalog import Catalog, Table
from ...errors import WorkloadError
from .schema import (MAX_ORDER_DATE, NATION_REGION, SCALE_FACTOR_ROWS,
                     date_index)

#: generation-time flag-column selectivities (dbgen word-list equivalents)
P_NAME_GREEN = 0.054          # p_name LIKE '%green%'
P_COMMENT_SPECIAL = 0.01      # o_comment LIKE '%special%requests%'
P_COMMENT_COMPLAINTS = 0.005  # s_comment LIKE '%Customer%Complaints%'


@dataclass
class TpchDataset:
    """All eight generated tables (raw columns) plus scaling metadata.

    :class:`~repro.db.catalog.Table` objects carry machine-bound page
    state, so :meth:`catalog` mints fresh tables every call — one dataset
    can back many simulated machines.
    """

    scale: float
    sim_scale: float
    seed: int
    columns: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)

    @property
    def byte_scale(self) -> float:
        """Simulated bytes per real byte."""
        return self.sim_scale / self.scale

    def table(self, name: str) -> Table:
        """A fresh, unbound Table over one generated relation."""
        if name not in self.columns:
            raise WorkloadError(f"unknown table {name!r}")
        return Table(name, self.columns[name], self.byte_scale)

    def catalog(self) -> Catalog:
        """A fresh catalog over fresh tables."""
        catalog = Catalog()
        for name in self.columns:
            catalog.add(self.table(name))
        return catalog


def _rows(table: str, scale: float) -> int:
    base = SCALE_FACTOR_ROWS[table]
    if table in ("region", "nation"):
        return base
    return max(int(base * scale), 32)


def generate(scale: float = 0.01, sim_scale: float = 1.0,
             seed: int = 42) -> TpchDataset:
    """Generate a dataset.

    Parameters
    ----------
    scale:
        Real scale factor of the numpy data (0.01 -> ~60 k lineitems).
    sim_scale:
        Scale factor the *simulated machine* sees (1.0 -> the paper's 1 GB).
    seed:
        Generator seed; identical seeds yield identical datasets.
    """
    if scale <= 0 or sim_scale <= 0:
        raise WorkloadError("scale factors must be positive")
    rng = np.random.default_rng(seed)
    dataset = TpchDataset(scale=scale, sim_scale=sim_scale, seed=seed)
    byte_scale = dataset.byte_scale

    n_supp = _rows("supplier", scale)
    n_cust = _rows("customer", scale)
    n_part = _rows("part", scale)
    n_orders = _rows("orders", scale)

    def add(name: str, columns: dict[str, np.ndarray]) -> None:
        Table(name, columns, byte_scale)  # validates shape consistency
        dataset.columns[name] = columns

    # ------------------------------------------------------------- region
    add("region", {
        "r_regionkey": np.arange(5, dtype=np.int64),
        "r_name": np.arange(5, dtype=np.int64),
    })

    # ------------------------------------------------------------- nation
    add("nation", {
        "n_nationkey": np.arange(25, dtype=np.int64),
        "n_name": np.arange(25, dtype=np.int64),
        "n_regionkey": np.asarray(NATION_REGION, dtype=np.int64),
    })

    # ----------------------------------------------------------- supplier
    add("supplier", {
        "s_suppkey": np.arange(1, n_supp + 1, dtype=np.int64),
        "s_nationkey": rng.integers(0, 25, n_supp),
        "s_acctbal": rng.uniform(-999.99, 9999.99, n_supp).round(2),
        "s_comment_complaints":
            (rng.random(n_supp) < P_COMMENT_COMPLAINTS).astype(np.int64),
    })

    # ----------------------------------------------------------- customer
    cust_nation = rng.integers(0, 25, n_cust)
    add("customer", {
        "c_custkey": np.arange(1, n_cust + 1, dtype=np.int64),
        "c_nationkey": cust_nation,
        "c_acctbal": rng.uniform(-999.99, 9999.99, n_cust).round(2),
        "c_mktsegment": rng.integers(0, 5, n_cust),
        "c_phone_cc": cust_nation + 10,
    })

    # --------------------------------------------------------------- part
    partkeys = np.arange(1, n_part + 1, dtype=np.int64)
    retail = (90000 + (partkeys % 20001) / 10.0
              + 100.0 * (partkeys % 1000)) / 100.0
    add("part", {
        "p_partkey": partkeys,
        "p_brand": rng.integers(0, 25, n_part),
        "p_type": rng.integers(0, 150, n_part),
        "p_size": rng.integers(1, 51, n_part),
        "p_container": rng.integers(0, 40, n_part),
        "p_retailprice": retail,
        "p_name_green": (rng.random(n_part) < P_NAME_GREEN)
            .astype(np.int64),
    })

    # ----------------------------------------------------------- partsupp
    ps_partkey = np.repeat(partkeys, 4)
    ps_suppkey = rng.integers(1, n_supp + 1, 4 * n_part)
    add("partsupp", {
        "ps_partkey": ps_partkey,
        "ps_suppkey": ps_suppkey,
        "ps_availqty": rng.integers(1, 10_000, 4 * n_part),
        "ps_supplycost": rng.uniform(1.0, 1000.0, 4 * n_part).round(2),
    })

    # ------------------------------------------------------------- orders
    last_day = date_index(MAX_ORDER_DATE)
    o_orderdate = rng.integers(0, last_day - 121, n_orders)
    # dbgen never assigns orders to custkeys divisible by 3 (Q22 relies
    # on a third of customers having no orders)
    o_custkey = rng.integers(1, n_cust + 1, n_orders)
    o_custkey = np.where(o_custkey % 3 == 0,
                         np.maximum(o_custkey - 1, 1), o_custkey)
    add("orders", {
        "o_orderkey": np.arange(1, n_orders + 1, dtype=np.int64),
        "o_custkey": o_custkey,
        "o_orderstatus": rng.integers(0, 3, n_orders),
        "o_totalprice": rng.uniform(800.0, 450_000.0, n_orders).round(2),
        "o_orderdate": o_orderdate,
        "o_orderpriority": rng.integers(0, 5, n_orders),
        "o_shippriority": np.zeros(n_orders, dtype=np.int64),
        "o_comment_special":
            (rng.random(n_orders) < P_COMMENT_SPECIAL).astype(np.int64),
    })

    # ----------------------------------------------------------- lineitem
    lines_per_order = rng.integers(1, 8, n_orders)
    l_orderkey = np.repeat(
        dataset.columns["orders"]["o_orderkey"], lines_per_order)
    n_lines = len(l_orderkey)
    l_partkey = rng.integers(1, n_part + 1, n_lines)
    # pick one of the part's four partsupp suppliers so the (partkey,
    # suppkey) join of Q9 always matches
    supplier_slot = rng.integers(0, 4, n_lines)
    l_suppkey = ps_suppkey[(l_partkey - 1) * 4 + supplier_slot]
    order_date = np.repeat(o_orderdate, lines_per_order)
    l_shipdate = order_date + rng.integers(1, 122, n_lines)
    l_commitdate = order_date + rng.integers(30, 91, n_lines)
    l_receiptdate = l_shipdate + rng.integers(1, 31, n_lines)
    l_quantity = rng.integers(1, 51, n_lines).astype(np.float64)
    l_extendedprice = (l_quantity * retail[l_partkey - 1]).round(2)
    cutoff = date_index("1995-06-17")
    shipped_late = l_shipdate > cutoff
    l_linestatus = np.where(shipped_late, 1, 0).astype(np.int64)  # O / F
    received_early = l_receiptdate <= cutoff
    returned = rng.random(n_lines) < 0.5
    # A=0, N=1, R=2: early receipts split A/R, late ones are N
    l_returnflag = np.where(received_early,
                            np.where(returned, 2, 0), 1).astype(np.int64)
    line_number = np.concatenate(
        [np.arange(1, k + 1) for k in lines_per_order]) \
        if n_orders else np.zeros(0, dtype=np.int64)
    add("lineitem", {
        "l_orderkey": l_orderkey,
        "l_partkey": l_partkey,
        "l_suppkey": l_suppkey,
        "l_linenumber": line_number.astype(np.int64),
        "l_quantity": l_quantity,
        "l_extendedprice": l_extendedprice,
        "l_discount": rng.integers(0, 11, n_lines) / 100.0,
        "l_tax": rng.integers(0, 9, n_lines) / 100.0,
        "l_returnflag": l_returnflag,
        "l_linestatus": l_linestatus,
        "l_shipdate": l_shipdate,
        "l_commitdate": l_commitdate,
        "l_receiptdate": l_receiptdate,
        "l_shipinstruct": rng.integers(0, 4, n_lines),
        "l_shipmode": rng.integers(0, 7, n_lines),
    })

    return dataset
